//! Umbrella crate for the logical-attestation reproduction (Sirer et
//! al., SOSP 2011). It owns the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`) and re-exports the
//! component crates under one roof.

#![forbid(unsafe_code)]

pub use nexus_analyzers as analyzers;
pub use nexus_apps as apps;
pub use nexus_core as core;
pub use nexus_kernel as kernel;
pub use nexus_nal as nal;
pub use nexus_storage as storage;
pub use nexus_tpm as tpm;
