//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate
//! provides a compatible *surface* — `Serialize`/`Deserialize` traits
//! plus same-named derive macros — over a much simpler design: types
//! convert to and from a self-describing [`Value`] tree, and
//! `serde_json` (the sibling stand-in) renders that tree as JSON.
//! Only this workspace produces and consumes the encoded data, so
//! wire-format compatibility with upstream serde is a non-goal;
//! round-tripping within the workspace is the contract, and the
//! derive macros generate the same encoding shapes serde_json uses
//! (externally tagged enums, objects for named fields).

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;

/// A self-describing tree of serialized data.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer beyond `i64` range.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Key-value pairs in insertion order. Keys need not be strings;
    /// non-string keys render as arrays of pairs in JSON.
    Map(Vec<(Value, Value)>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(Value, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence items, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Construct an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialize from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- helpers used by derive-generated code ----

/// Split an externally tagged enum value into (variant name, payload).
pub fn enum_parts(v: &Value) -> Result<(&str, &Value), Error> {
    match v {
        Value::Map(entries) if entries.len() == 1 => {
            let (k, payload) = &entries[0];
            let tag = k
                .as_str()
                .ok_or_else(|| Error::msg("enum tag must be a string"))?;
            Ok((tag, payload))
        }
        _ => Err(Error::msg("expected single-entry map for enum variant")),
    }
}

/// Fetch a struct field by name from a map value.
pub fn field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, Error> {
    let m = v
        .as_map()
        .ok_or_else(|| Error::msg(format!("expected map with field `{name}`")))?;
    m.iter()
        .find(|(k, _)| k.as_str() == Some(name))
        .map(|(_, v)| v)
        .ok_or_else(|| Error::msg(format!("missing field `{name}`")))
}

/// Fetch the items of a sequence of exactly `n` elements.
pub fn seq_items(v: &Value, n: usize) -> Result<&[Value], Error> {
    let s = v
        .as_seq()
        .ok_or_else(|| Error::msg(format!("expected sequence of {n}")))?;
    if s.len() != n {
        return Err(Error::msg(format!(
            "expected {n} elements, got {}",
            s.len()
        )));
    }
    Ok(s)
}

// ---- primitive impls ----

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if let Ok(i) = i64::try_from(v) {
                    Value::I64(i)
                } else {
                    Value::U64(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::I64(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::msg("integer out of range")),
                    Value::U64(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::msg("integer out of range")),
                    _ => Err(Error::msg(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::I64(i) => Ok(*i as $t),
                    Value::U64(u) => Ok(*u as $t),
                    _ => Err(Error::msg("expected number")),
                }
            }
        }
    )*};
}

float_impl!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::msg("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-char string")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::msg("expected null")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::msg("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| Error::msg("wrong array length"))
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::msg("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::msg("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    Value::Map(entries.map(|(k, v)| (k.to_value(), v.to_value())).collect())
}

fn map_from_value<K: Deserialize, V: Deserialize, M: FromIterator<(K, V)>>(
    v: &Value,
) -> Result<M, Error> {
    match v {
        Value::Map(entries) => entries
            .iter()
            .map(|(k, v)| Ok((K::from_value(k)?, V::from_value(v)?)))
            .collect(),
        // Maps with non-string keys round-trip through JSON as
        // sequences of [key, value] pairs.
        Value::Seq(items) => items
            .iter()
            .map(|pair| {
                let kv = seq_items(pair, 2)?;
                Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
            })
            .collect(),
        _ => Err(Error::msg("expected map")),
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_from_value(v)
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_from_value(v)
    }
}

macro_rules! tuple_impl {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const N: usize = 0 $(+ { let _ = stringify!($t); 1 })+;
                let items = seq_items(v, N)?;
                Ok(($($t::from_value(&items[$i])?,)+))
            }
        }
    )*};
}

tuple_impl! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
