//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of the parking_lot API the workspace uses,
//! implemented over `std::sync` primitives. Semantics match
//! parking_lot where it matters to callers: `lock()`/`read()`/
//! `write()` return guards directly (no `Result`), and a poisoned
//! lock is treated as still usable rather than propagating panics.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// Mutual exclusion primitive (no poisoning surface).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock (no poisoning surface).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared RAII guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive RAII guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
    }
}
