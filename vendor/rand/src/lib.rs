//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset the workspace uses: [`RngCore`],
//! [`SeedableRng`], [`rngs::StdRng`], and [`thread_rng`]. The
//! generator is xoshiro256++ — statistically strong and fast, though
//! (like the simulation around it) not an audited CSPRNG.

#![forbid(unsafe_code)]

/// Core random-number-generation methods.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// RNGs constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with splitmix64.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ generator with a 32-byte seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn mix(mut s: [u64; 4]) -> [u64; 4] {
            // Avoid the all-zero state, which xoshiro cannot leave.
            if s == [0; 4] {
                s = [0xdead_beef, 1, 2, 3];
            }
            s
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            StdRng { s: Self::mix(s) }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s: Self::mix(s) }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Process-global generator seeded from the wall clock.
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// A generator seeded from the wall clock and a process-wide counter.
pub fn thread_rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5eed);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    rngs::ThreadRng(<rngs::StdRng as SeedableRng>::seed_from_u64(
        nanos ^ n.rotate_left(32) ^ (std::process::id() as u64) << 17,
    ))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }
}
