//! Offline stand-in for the `aes` crate: the marker type and the
//! `cipher` traits the workspace imports. The actual keystream is
//! produced by the sibling `ctr` stand-in (SHA-256 in counter mode
//! rather than real AES — same interface, same xor-stream structure).

#![forbid(unsafe_code)]

/// Marker for AES-256 (the only cipher the workspace instantiates).
#[derive(Debug, Clone, Copy)]
pub struct Aes256;

/// The subset of the `cipher` crate's traits used by callers.
pub mod cipher {
    /// Construction from a key and an IV/nonce.
    pub trait KeyIvInit: Sized {
        /// Build the cipher from a 256-bit key and 128-bit IV.
        fn new(key: &[u8; 32], iv: &[u8; 16]) -> Self;
    }

    /// XOR a keystream over a buffer in place.
    pub trait StreamCipher {
        /// Apply the keystream to `buf` (encrypts or decrypts).
        fn apply_keystream(&mut self, buf: &mut [u8]);
    }
}
