//! Offline stand-in for the `ctr` crate: a counter-mode stream
//! cipher whose block function is SHA-256(key ‖ iv ‖ counter) instead
//! of AES. Structurally identical to real CTR mode — deterministic
//! keystream from (key, iv), xor-applied, position-tracking across
//! calls — which is all the sealed-storage and SSR code relies on.

#![forbid(unsafe_code)]

use aes::cipher::{KeyIvInit, StreamCipher};
use sha2::{Digest as _, Sha256};
use std::marker::PhantomData;

/// Counter-mode stream over block cipher `C` (big-endian 64-bit
/// counter in the real crate; here `C` only selects the marker type).
#[derive(Debug, Clone)]
pub struct Ctr64BE<C> {
    key: [u8; 32],
    iv: [u8; 16],
    /// Absolute keystream byte offset (streaming across calls).
    offset: u64,
    _cipher: PhantomData<C>,
}

impl<C> Ctr64BE<C> {
    fn keystream_block(&self, block_index: u64) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(b"ctr64be-stub-v1");
        h.update(self.key);
        h.update(self.iv);
        h.update(block_index.to_be_bytes());
        h.finalize()
    }
}

impl<C> KeyIvInit for Ctr64BE<C> {
    fn new(key: &[u8; 32], iv: &[u8; 16]) -> Self {
        Ctr64BE {
            key: *key,
            iv: *iv,
            offset: 0,
            _cipher: PhantomData,
        }
    }
}

impl<C> StreamCipher for Ctr64BE<C> {
    fn apply_keystream(&mut self, buf: &mut [u8]) {
        let mut index = self.offset / 32;
        let mut block = self.keystream_block(index);
        for byte in buf.iter_mut() {
            let current = self.offset / 32;
            if current != index {
                index = current;
                block = self.keystream_block(index);
            }
            *byte ^= block[(self.offset % 32) as usize];
            self.offset += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type C = Ctr64BE<aes::Aes256>;

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let key = [1u8; 32];
        let iv = [2u8; 16];
        let mut data = b"attack at dawn".to_vec();
        let original = data.clone();
        C::new(&key, &iv).apply_keystream(&mut data);
        assert_ne!(data, original);
        C::new(&key, &iv).apply_keystream(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let key = [3u8; 32];
        let iv = [4u8; 16];
        let mut oneshot = vec![0u8; 100];
        C::new(&key, &iv).apply_keystream(&mut oneshot);
        let mut streamed = vec![0u8; 100];
        let mut c = C::new(&key, &iv);
        c.apply_keystream(&mut streamed[..37]);
        c.apply_keystream(&mut streamed[37..]);
        assert_eq!(oneshot, streamed);
    }

    #[test]
    fn different_iv_different_stream() {
        let key = [5u8; 32];
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        C::new(&key, &[0u8; 16]).apply_keystream(&mut a);
        C::new(&key, &[1u8; 16]).apply_keystream(&mut b);
        assert_ne!(a, b);
    }
}
