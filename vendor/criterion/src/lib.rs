//! Offline stand-in for `criterion`: the subset of the API the
//! workspace's benches use, backed by a simple warmup-then-measure
//! timer. No statistics engine, plots, or baselines — each benchmark
//! prints its mean time per iteration.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter.
    pub fn new(function_id: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// Build an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Runs closures and measures them.
pub struct Bencher {
    measurement_time: Duration,
    mean_ns: Option<f64>,
}

impl Bencher {
    /// Time `routine`; the measured mean is recorded for the group's
    /// completion line.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and calibration: find an iteration count that fills
        // roughly the measurement window.
        let start = Instant::now();
        black_box(routine());
        let one = start.elapsed().max(Duration::from_nanos(1));
        let target = self.measurement_time.max(Duration::from_millis(10));
        let iters = (target.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean_ns = Some(start.elapsed().as_nanos() as f64 / iters as f64);
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    measurement_time: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (accepted for API compatibility; the
    /// stand-in measures one calibrated batch).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run a benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut routine: R,
    ) -> &mut Self {
        let mut b = Bencher {
            measurement_time: self.measurement_time,
            mean_ns: None,
        };
        routine(&mut b);
        match b.mean_ns {
            Some(ns) => println!("bench {}/{id}: {ns:.1} ns/iter", self.name),
            None => println!("bench {}/{id}: completed (no measurement)", self.name),
        }
        self
    }

    /// Run a benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Finish the group (no-op in the stand-in).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: Duration::from_millis(200),
            _criterion: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: impl Display, routine: R) {
        self.benchmark_group("bench").bench_function(id, routine);
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
