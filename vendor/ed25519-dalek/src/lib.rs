//! Offline stand-in for `ed25519-dalek`.
//!
//! No curve arithmetic: a "public key" is a 32-byte value derived
//! from the signing seed by SHA-256, and a "signature" over a message
//! is SHA-256 keyed by that value. Everything the simulation relies
//! on holds — signatures are deterministic, bound to (key, message),
//! detect any tampering, and keys round-trip through their byte
//! encodings — but, unlike real Ed25519, anyone holding the public
//! key bytes could forge (verification recomputes the tag from
//! public material). The threat models exercised by the workspace's
//! tests (bit flips, wrong keys, replayed state) never do.

#![forbid(unsafe_code)]

use sha2::{Digest as _, Sha256};

/// Length of a public key encoding.
pub const PUBLIC_KEY_LENGTH: usize = 32;
/// Length of a signature encoding.
pub const SIGNATURE_LENGTH: usize = 64;

/// Error type for malformed keys/signatures and failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureError;

impl std::fmt::Display for SignatureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "signature error")
    }
}

impl std::error::Error for SignatureError {}

/// A signature (64 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signature([u8; SIGNATURE_LENGTH]);

impl Signature {
    /// Parse from a byte slice; must be exactly 64 bytes.
    pub fn from_slice(bytes: &[u8]) -> Result<Signature, SignatureError> {
        <[u8; SIGNATURE_LENGTH]>::try_from(bytes)
            .map(Signature)
            .map_err(|_| SignatureError)
    }

    /// The raw signature bytes.
    pub fn to_bytes(&self) -> [u8; SIGNATURE_LENGTH] {
        self.0
    }
}

/// Objects that can sign messages.
pub trait Signer {
    /// Sign `msg`.
    fn sign(&self, msg: &[u8]) -> Signature;
}

/// Objects that can verify signatures.
pub trait Verifier {
    /// Verify `signature` over `msg`.
    fn verify(&self, msg: &[u8], signature: &Signature) -> Result<(), SignatureError>;
}

fn tag(key: &[u8; 32], msg: &[u8]) -> [u8; SIGNATURE_LENGTH] {
    let mut h = Sha256::new();
    h.update(b"ed25519-stub-sign-v1");
    h.update(key);
    h.update((msg.len() as u64).to_le_bytes());
    h.update(msg);
    let first = h.finalize();
    let second = Sha256::digest(first);
    let mut out = [0u8; SIGNATURE_LENGTH];
    out[..32].copy_from_slice(&first);
    out[32..].copy_from_slice(&second);
    out
}

/// A verifying (public) key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerifyingKey([u8; PUBLIC_KEY_LENGTH]);

impl VerifyingKey {
    /// Parse from its 32-byte encoding.
    pub fn from_bytes(bytes: &[u8; PUBLIC_KEY_LENGTH]) -> Result<VerifyingKey, SignatureError> {
        Ok(VerifyingKey(*bytes))
    }

    /// The 32-byte encoding.
    pub fn to_bytes(&self) -> [u8; PUBLIC_KEY_LENGTH] {
        self.0
    }

    /// Borrow the 32-byte encoding.
    pub fn as_bytes(&self) -> &[u8; PUBLIC_KEY_LENGTH] {
        &self.0
    }
}

impl Verifier for VerifyingKey {
    fn verify(&self, msg: &[u8], signature: &Signature) -> Result<(), SignatureError> {
        if tag(&self.0, msg) == signature.0 {
            Ok(())
        } else {
            Err(SignatureError)
        }
    }
}

/// A signing (secret) key.
#[derive(Debug, Clone)]
pub struct SigningKey {
    seed: [u8; 32],
    public: [u8; PUBLIC_KEY_LENGTH],
}

impl SigningKey {
    /// Derive a key pair deterministically from a 32-byte seed.
    pub fn from_bytes(seed: &[u8; 32]) -> SigningKey {
        let mut h = Sha256::new();
        h.update(b"ed25519-stub-pub-v1");
        h.update(seed);
        SigningKey {
            seed: *seed,
            public: h.finalize(),
        }
    }

    /// Generate a fresh key pair from the given RNG.
    pub fn generate<R: rand::RngCore>(rng: &mut R) -> SigningKey {
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        SigningKey::from_bytes(&seed)
    }

    /// The seed bytes.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.seed
    }

    /// The corresponding public key.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey(self.public)
    }
}

impl Signer for SigningKey {
    fn sign(&self, msg: &[u8]) -> Signature {
        Signature(tag(&self.public, msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let sk = SigningKey::from_bytes(&[7u8; 32]);
        let sig = sk.sign(b"hello");
        assert!(sk.verifying_key().verify(b"hello", &sig).is_ok());
        assert!(sk.verifying_key().verify(b"hellO", &sig).is_err());
    }

    #[test]
    fn keys_roundtrip_through_bytes() {
        let sk = SigningKey::from_bytes(&[9u8; 32]);
        let vk = VerifyingKey::from_bytes(&sk.verifying_key().to_bytes()).unwrap();
        let sig = Signature::from_slice(&sk.sign(b"m").to_bytes()).unwrap();
        assert!(vk.verify(b"m", &sig).is_ok());
    }

    #[test]
    fn distinct_keys_do_not_cross_verify() {
        let a = SigningKey::from_bytes(&[1u8; 32]);
        let b = SigningKey::from_bytes(&[2u8; 32]);
        let sig = a.sign(b"msg");
        assert!(b.verifying_key().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn tampered_signature_rejected() {
        let sk = SigningKey::from_bytes(&[3u8; 32]);
        let mut bytes = sk.sign(b"msg").to_bytes();
        bytes[0] ^= 1;
        let sig = Signature::from_slice(&bytes).unwrap();
        assert!(sk.verifying_key().verify(b"msg", &sig).is_err());
    }
}
