//! Offline stand-in for `serde_derive`.
//!
//! `syn`/`quote` are unavailable (no crates.io access), so the item
//! is parsed directly from the `proc_macro` token stream and the impl
//! is emitted as source text. Supported shapes — everything this
//! workspace derives on — are non-generic structs (named, tuple,
//! unit) and enums whose variants are unit, tuple, or struct-like.
//! Serde attributes (`#[serde(...)]`) and generics are rejected with
//! a compile error rather than silently mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derive the local `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derive the local `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---- token-stream parsing ----

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);
    let kw = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive stand-in does not support generic type `{name}`");
    }
    match kw.as_str() {
        "struct" => {
            let fields = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unexpected struct body for `{name}`: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for `{name}`, got {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("cannot derive on `{other}` items"),
    }
}

fn skip_attrs_and_vis(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                match toks.next() {
                    Some(TokenTree::Group(g)) => {
                        let text = g.stream().to_string();
                        if text.starts_with("serde") {
                            panic!("derive stand-in does not support #[serde(...)] attributes");
                        }
                    }
                    other => panic!("malformed attribute: {other:?}"),
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                toks.next();
                if matches!(
                    toks.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    toks.next();
                }
            }
            _ => return,
        }
    }
}

/// Parse `a: T, b: U, ...` field lists, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut toks = stream.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        match toks.next() {
            None => break,
            Some(TokenTree::Ident(i)) => {
                names.push(i.to_string());
                match toks.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("expected `:` after field name, got {other:?}"),
                }
                skip_type_until_comma(&mut toks);
            }
            other => panic!("expected field name, got {other:?}"),
        }
    }
    names
}

/// Consume type tokens up to (and including) the next top-level `,`.
/// Angle brackets are plain punctuation in token streams, so nesting
/// depth is tracked by hand.
fn skip_type_until_comma(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut depth = 0usize;
    for tok in toks.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => return,
                _ => {}
            }
        }
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut toks = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attrs_and_vis(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        count += 1;
        skip_type_until_comma(&mut toks);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected variant name, got {other:?}"),
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                toks.next();
                Fields::Named(parse_named_fields(inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                toks.next();
                Fields::Tuple(count_tuple_fields(inner))
            }
            _ => Fields::Unit,
        };
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("derive stand-in does not support explicit discriminants");
        }
        match toks.next() {
            None => {
                variants.push(Variant { name, fields });
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(Variant { name, fields });
            }
            other => panic!("expected `,` after variant, got {other:?}"),
        }
    }
    variants
}

// ---- code generation ----

fn str_value(s: &str) -> String {
    format!("::serde::Value::Str(::std::string::String::from({s:?}))")
}

/// `(pattern bindings, serialized payload)` for a variant's fields.
fn variant_payload(fields: &Fields) -> (String, String) {
    match fields {
        Fields::Unit => (String::new(), String::new()),
        Fields::Tuple(1) => (
            "(x0)".to_string(),
            "::serde::Serialize::to_value(x0)".to_string(),
        ),
        Fields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
            let items: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            (
                format!("({})", binds.join(", ")),
                format!("::serde::Value::Seq(::std::vec![{}])", items.join(", ")),
            )
        }
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| format!("({}, ::serde::Serialize::to_value({f}))", str_value(f)))
                .collect();
            (
                format!("{{ {} }}", names.join(", ")),
                format!("::serde::Value::Map(::std::vec![{}])", entries.join(", ")),
            )
        }
    }
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                }
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "({}, ::serde::Serialize::to_value(&self.{f}))",
                                str_value(f)
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
                }
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let (pat, payload) = variant_payload(&v.fields);
                    let vname = &v.name;
                    if matches!(v.fields, Fields::Unit) {
                        format!("{name}::{vname} => {},", str_value(vname))
                    } else {
                        format!(
                            "{name}::{vname}{pat} => ::serde::Value::Map(::std::vec![({}, {payload})]),",
                            str_value(vname)
                        )
                    }
                })
                .collect();
            (name, format!("match self {{ {} }}", arms.join("\n")))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// Construction expression for fields read out of `src`.
fn fields_from_value(type_path: &str, fields: &Fields, src: &str) -> String {
    match fields {
        Fields::Unit => type_path.to_string(),
        Fields::Tuple(1) => format!("{type_path}(::serde::Deserialize::from_value({src})?)"),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "{{ let items = ::serde::seq_items({src}, {n})?; {type_path}({}) }}",
                items.join(", ")
            )
        }
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(::serde::field({src}, {f:?})?)?")
                })
                .collect();
            format!("{type_path} {{ {} }}", inits.join(", "))
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => (
            name,
            format!(
                "::std::result::Result::Ok({})",
                fields_from_value(name, fields, "v")
            ),
        ),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!(
                        "{:?} => ::std::result::Result::Ok({name}::{}),",
                        v.name, v.name
                    )
                })
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!(
                        "{:?} => ::std::result::Result::Ok({}),",
                        v.name,
                        fields_from_value(&format!("{name}::{}", v.name), &v.fields, "payload")
                    )
                })
                .collect();
            let body = format!(
                "if let ::serde::Value::Str(s) = v {{\n\
                   return match s.as_str() {{\n\
                     {}\n\
                     _ => ::std::result::Result::Err(::serde::Error::msg(\
                         ::std::format!(\"unknown variant `{{s}}` of {name}\"))),\n\
                   }};\n\
                 }}\n\
                 let (tag, payload) = ::serde::enum_parts(v)?;\n\
                 let _ = payload;\n\
                 match tag {{\n\
                   {}\n\
                   _ => ::std::result::Result::Err(::serde::Error::msg(\
                       ::std::format!(\"unknown variant `{{tag}}` of {name}\"))),\n\
                 }}",
                unit_arms.join("\n"),
                payload_arms.join("\n"),
            );
            (name, body)
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
