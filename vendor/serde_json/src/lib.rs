//! Offline stand-in for `serde_json`: renders the local
//! [`serde::Value`] tree as JSON text and parses it back.
//!
//! Maps whose keys are all strings render as JSON objects; maps with
//! non-string keys render as arrays of `[key, value]` pairs (the
//! container impls in `serde` accept both on the way back in). Only
//! this workspace reads what it writes, so upstream-serde wire
//! compatibility is a non-goal.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

/// Encoding/decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialize into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serialize to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    from_str(s)
}

// ---- rendering ----

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.iter().all(|(k, _)| matches!(k, Value::Str(_))) {
                out.push('{');
                for (i, (k, val)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render(k, out);
                    out.push(':');
                    render(val, out);
                }
                out.push('}');
            } else {
                out.push('[');
                for (i, (k, val)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('[');
                    render(k, out);
                    out.push(',');
                    render(val, out);
                    out.push(']');
                }
                out.push(']');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, text: &str) -> bool {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((Value::Str(key), val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|e| Error(e.to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by the
                            // renderer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("bad \\u code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn scalar_roundtrip() {
        let s = to_string(&42u64).unwrap();
        assert_eq!(s, "42");
        assert_eq!(from_str::<u64>(&s).unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<u64>(&u64::MAX.to_string()).unwrap(), u64::MAX);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line\n\"quoted\"\tand \\ control:\u{1}".to_string();
        let s = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), original);
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Option<u32>>>(&s).unwrap(), v);

        let mut m = HashMap::new();
        m.insert("a".to_string(), vec![1u8, 2]);
        let s = to_string(&m).unwrap();
        assert_eq!(from_str::<HashMap<String, Vec<u8>>>(&s).unwrap(), m);
    }

    #[test]
    fn non_string_keys_roundtrip_as_pairs() {
        let mut m = HashMap::new();
        m.insert(7u64, "seven".to_string());
        m.insert(11, "eleven".to_string());
        let s = to_string(&m).unwrap();
        assert_eq!(from_str::<HashMap<u64, String>>(&s).unwrap(), m);
    }

    #[test]
    fn fixed_arrays_roundtrip() {
        let a = [1u8, 2, 3, 4];
        let s = to_string(&a).unwrap();
        assert_eq!(from_str::<[u8; 4]>(&s).unwrap(), a);
        assert!(from_str::<[u8; 3]>(&s).is_err());
    }
}
