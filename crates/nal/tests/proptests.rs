//! Property-based tests for NAL: parser round-trips, normalization,
//! and prover/checker agreement on randomly generated inputs.

use nexus_nal::check::{check, normalize, Assumptions};
use nexus_nal::{parse, prove, CmpOp, Formula, Principal, Proof, ProverConfig, Term};
use proptest::prelude::*;

const KEYWORDS: &[&str] = &[
    "says", "speaksfor", "on", "and", "or", "not", "implies", "true", "false", "key",
];

fn arb_ident() -> impl Strategy<Value = String> {
    "[a-z][a-zA-Z0-9_]{0,6}".prop_filter("identifiers must not be keywords", |s| {
        !KEYWORDS.contains(&s.as_str())
    })
}

fn arb_principal() -> impl Strategy<Value = Principal> {
    let base = prop_oneof![
        arb_ident().prop_map(Principal::Name),
        "[0-9a-f]{8}".prop_map(Principal::Key),
    ];
    (base, proptest::collection::vec(arb_ident(), 0..3)).prop_map(|(b, comps)| {
        comps.into_iter().fold(b, |p, c| p.sub(c))
    })
}

fn arb_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(Term::Int),
        "[a-zA-Z0-9 _/.-]{0,12}".prop_map(Term::Str),
        arb_ident().prop_map(Term::Sym),
        // Bare named principals collapse to symbols in concrete
        // syntax (Term::canon), so generate only structured ones here.
        arb_principal().prop_map(|p| match p {
            Principal::Name(n) => Term::Sym(n),
            other => Term::Prin(other),
        }),
    ];
    leaf.prop_recursive(2, 8, 3, |inner| {
        (arb_ident(), proptest::collection::vec(inner, 0..3))
            .prop_map(|(f, args)| Term::App(f, args))
    })
}

fn arb_cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Ge),
        Just(CmpOp::Gt),
    ]
}

fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        (arb_ident(), proptest::collection::vec(arb_term(), 0..3))
            .prop_map(|(n, args)| Formula::Pred(n, args)),
        (arb_cmp_op(), arb_term(), arb_term())
            .prop_map(|(op, a, b)| Formula::Cmp(op, a, b)),
        (arb_principal(), arb_principal()).prop_map(|(a, b)| Formula::speaksfor(a, b)),
        (
            arb_principal(),
            arb_principal(),
            proptest::collection::btree_set("[A-Z][a-zA-Z]{0,5}", 1..3)
        )
            .prop_map(|(a, b, s)| Formula::SpeaksFor {
                from: a,
                to: b,
                scope: Some(s)
            }),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (arb_principal(), inner.clone())
                .prop_map(|(p, f)| Formula::Says(p, Box::new(f))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            inner.prop_map(|a| a.not()),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The pretty-printer and parser are mutually inverse.
    #[test]
    fn parser_roundtrip(f in arb_formula()) {
        let printed = f.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse {printed:?}: {e}"));
        prop_assert_eq!(f, reparsed);
    }

    /// Normalization is idempotent and preserves `equivalent`.
    #[test]
    fn normalize_idempotent(f in arb_formula()) {
        let n1 = normalize(&f);
        let n2 = normalize(&n1);
        prop_assert_eq!(&n1, &n2);
        prop_assert!(f.equivalent(&f));
    }

    /// Whatever the prover returns, the checker accepts with the same
    /// conclusion (prover soundness relative to the checker).
    #[test]
    fn prover_is_sound(
        creds in proptest::collection::vec(arb_formula(), 0..6),
        goal in arb_formula(),
    ) {
        if let Some(proof) = prove(&goal, &creds, ProverConfig::default()) {
            let asm = Assumptions::from_iter(creds.iter());
            let concl = check(&proof, &asm).expect("prover emitted invalid proof");
            prop_assert_eq!(normalize(&concl), normalize(&goal));
        }
    }

    /// A goal that is itself a supplied credential is always provable.
    #[test]
    fn credentials_prove_themselves(f in arb_formula()) {
        if f.is_ground() {
            let creds = vec![f.clone()];
            let proof = prove(&f, &creds, ProverConfig::default());
            prop_assert!(proof.is_some());
        }
    }

    /// Proof serialization round-trips through JSON.
    #[test]
    fn proof_serde_roundtrip(f in arb_formula()) {
        let p = Proof::assume(f);
        let json = serde_json::to_string(&p).unwrap();
        let back: Proof = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(p, back);
    }

    /// Substitution never reintroduces variables on ground formulas.
    #[test]
    fn ground_formulas_stay_ground(f in arb_formula()) {
        prop_assert!(f.is_ground());
        let s = nexus_nal::Subst::new().bind("X", Term::Int(1));
        prop_assert!(s.apply(&f).is_ground());
    }
}
