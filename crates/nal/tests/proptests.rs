//! Property-based tests for NAL: parser round-trips, normalization,
//! and prover/checker agreement on randomly generated inputs.
//!
//! The build environment has no crates.io access, so instead of the
//! `proptest` crate these properties run over a seeded, hand-rolled
//! generator (splitmix64). Coverage is the same shape — hundreds of
//! structurally random formulas per property — and failures print the
//! offending seed/case for reproduction, minimized by halve-and-retry
//! shrinking on the generation depth (see [`check_shrunk`]).

use nexus_nal::check::{check, normalize, Assumptions};
use nexus_nal::{parse, prove, CmpOp, Formula, Principal, Proof, ProverConfig, Term};
use std::collections::BTreeSet;

const CASES: u64 = 256;

const KEYWORDS: &[&str] = &[
    "says",
    "speaksfor",
    "on",
    "and",
    "or",
    "not",
    "implies",
    "true",
    "false",
    "key",
];

/// Deterministic splitmix64 stream: each test gets reproducible but
/// structurally varied inputs.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn ident(&mut self) -> String {
        loop {
            let first = (b'a' + self.below(26) as u8) as char;
            let len = self.below(6) as usize;
            let mut s = String::new();
            s.push(first);
            for _ in 0..len {
                const TAIL: &[u8] =
                    b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
                s.push(TAIL[self.below(TAIL.len() as u64) as usize] as char);
            }
            if !KEYWORDS.contains(&s.as_str()) {
                return s;
            }
        }
    }

    fn hex_key(&mut self) -> String {
        (0..8)
            .map(|_| {
                const HEX: &[u8] = b"0123456789abcdef";
                HEX[self.below(16) as usize] as char
            })
            .collect()
    }

    fn str_lit(&mut self) -> String {
        const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _/.-";
        let len = self.below(12) as usize;
        (0..len)
            .map(|_| CHARS[self.below(CHARS.len() as u64) as usize] as char)
            .collect()
    }

    fn principal(&mut self) -> Principal {
        let base = if self.below(4) == 0 {
            Principal::Key(self.hex_key())
        } else {
            Principal::Name(self.ident())
        };
        let comps = self.below(3);
        (0..comps).fold(base, |p, _| p.sub(self.ident()))
    }

    fn term(&mut self, depth: u64) -> Term {
        if depth > 0 && self.below(4) == 0 {
            let args = (0..self.below(3)).map(|_| self.term(depth - 1)).collect();
            return Term::App(self.ident(), args);
        }
        match self.below(4) {
            0 => Term::Int(self.below(2000) as i64 - 1000),
            1 => Term::Str(self.str_lit()),
            2 => Term::Sym(self.ident()),
            _ => {
                // Bare named principals collapse to symbols in
                // concrete syntax (Term::canon), so generate only
                // structured ones here.
                match self.principal() {
                    Principal::Name(n) => Term::Sym(n),
                    other => Term::Prin(other),
                }
            }
        }
    }

    fn cmp_op(&mut self) -> CmpOp {
        match self.below(6) {
            0 => CmpOp::Lt,
            1 => CmpOp::Le,
            2 => CmpOp::Eq,
            3 => CmpOp::Ne,
            4 => CmpOp::Ge,
            _ => CmpOp::Gt,
        }
    }

    fn leaf(&mut self) -> Formula {
        match self.below(6) {
            0 => Formula::True,
            1 => Formula::False,
            2 => {
                let args = (0..self.below(3)).map(|_| self.term(2)).collect();
                Formula::Pred(self.ident(), args)
            }
            3 => Formula::Cmp(self.cmp_op(), self.term(1), self.term(1)),
            4 => Formula::speaksfor(self.principal(), self.principal()),
            _ => {
                let scope: BTreeSet<String> = (0..1 + self.below(2))
                    .map(|_| {
                        let mut s = self.ident();
                        // Scope entries in the paper are capitalized
                        // subject names.
                        s[..1].make_ascii_uppercase();
                        s
                    })
                    .collect();
                Formula::SpeaksFor {
                    from: self.principal(),
                    to: self.principal(),
                    scope: Some(scope),
                }
            }
        }
    }

    fn formula(&mut self, depth: u64) -> Formula {
        if depth == 0 || self.below(3) == 0 {
            return self.leaf();
        }
        match self.below(5) {
            0 => Formula::Says(self.principal(), Box::new(self.formula(depth - 1))),
            1 => self.formula(depth - 1).and(self.formula(depth - 1)),
            2 => self.formula(depth - 1).or(self.formula(depth - 1)),
            3 => self.formula(depth - 1).implies(self.formula(depth - 1)),
            _ => self.formula(depth - 1).not(),
        }
    }
}

/// Minimal shrinking for the hand-rolled generator (ROADMAP item):
/// when a property fails at the full generation depth, retry the same
/// seed at halved depths (`d/2`, `d/4`, …) and report the *smallest*
/// depth that still fails — smaller depth ⇒ structurally smaller
/// formula ⇒ a friendlier reproduction. The panic message carries the
/// seed and the minimal failing depth so the case can be replayed.
fn check_shrunk(case: u64, max_depth: u64, prop: impl Fn(u64, u64) -> Result<(), String>) {
    let Err(original) = prop(case, max_depth) else {
        return;
    };
    let mut min_depth = max_depth;
    let mut min_failure = original;
    let mut depth = max_depth / 2;
    // Halve-and-retry: keep shrinking while the property still fails;
    // the first passing depth means the previous one was minimal.
    while let Err(failure) = prop(case, depth) {
        min_depth = depth;
        min_failure = failure;
        if depth == 0 {
            break;
        }
        depth /= 2;
    }
    panic!("case {case} failed (minimal depth {min_depth} of {max_depth}): {min_failure}");
}

/// The pretty-printer and parser are mutually inverse.
#[test]
fn parser_roundtrip() {
    for case in 0..CASES {
        check_shrunk(case, 4, |seed, depth| {
            let f = Gen::new(seed).formula(depth);
            let printed = f.to_string();
            let reparsed =
                parse(&printed).map_err(|e| format!("failed to reparse {printed:?}: {e}"))?;
            (f == reparsed)
                .then_some(())
                .ok_or_else(|| format!("roundtrip changed {printed}"))
        });
    }
}

/// Normalization is idempotent and preserves `equivalent`.
#[test]
fn normalize_idempotent() {
    for case in 0..CASES {
        check_shrunk(case ^ 0x1111, 4, |seed, depth| {
            let f = Gen::new(seed).formula(depth);
            let n1 = normalize(&f);
            let n2 = normalize(&n1);
            if n1 != n2 {
                return Err(format!("normalize not idempotent on {f}"));
            }
            f.equivalent(&f)
                .then_some(())
                .ok_or_else(|| format!("{f} not equivalent to itself"))
        });
    }
}

/// Whatever the prover returns, the checker accepts with the same
/// conclusion (prover soundness relative to the checker).
#[test]
fn prover_is_sound() {
    for case in 0..CASES {
        check_shrunk(case ^ 0x2222, 3, |seed, depth| {
            let mut g = Gen::new(seed);
            let creds: Vec<Formula> = (0..g.below(6)).map(|_| g.formula(depth)).collect();
            let goal = g.formula(depth);
            if let Some(proof) = prove(&goal, &creds, ProverConfig::default()) {
                let asm = Assumptions::from_iter(creds.iter());
                let concl =
                    check(&proof, &asm).map_err(|e| format!("invalid proof emitted: {e:?}"))?;
                if normalize(&concl) != normalize(&goal) {
                    return Err(format!("proved {concl} instead of {goal}"));
                }
            }
            Ok(())
        });
    }
}

/// A goal that is itself a supplied credential is always provable.
#[test]
fn credentials_prove_themselves() {
    for case in 0..CASES {
        check_shrunk(case ^ 0x3333, 3, |seed, depth| {
            let f = Gen::new(seed).formula(depth);
            if f.is_ground() {
                let creds = vec![f.clone()];
                if prove(&f, &creds, ProverConfig::default()).is_none() {
                    return Err(format!("could not prove own credential {f}"));
                }
            }
            Ok(())
        });
    }
}

/// Proof serialization round-trips through JSON.
#[test]
fn proof_serde_roundtrip() {
    for case in 0..CASES {
        check_shrunk(case ^ 0x4444, 4, |seed, depth| {
            let f = Gen::new(seed).formula(depth);
            let p = Proof::assume(f);
            let json = serde_json::to_string(&p).map_err(|e| e.to_string())?;
            let back: Proof = serde_json::from_str(&json).map_err(|e| e.to_string())?;
            (p == back)
                .then_some(())
                .ok_or_else(|| "serde roundtrip changed proof".to_string())
        });
    }
}

/// Substitution never reintroduces variables on ground formulas.
#[test]
fn ground_formulas_stay_ground() {
    for case in 0..CASES {
        check_shrunk(case ^ 0x5555, 4, |seed, depth| {
            let f = Gen::new(seed).formula(depth);
            if !f.is_ground() {
                return Err(format!("generator produced non-ground {f}"));
            }
            let s = nexus_nal::Subst::new().bind("X", Term::Int(1));
            s.apply(&f)
                .is_ground()
                .then_some(())
                .ok_or_else(|| format!("substitution un-grounded {f}"))
        });
    }
}

/// The shrinker itself: a property that fails exactly above a depth
/// threshold must be reported at the smallest still-failing depth.
#[test]
fn shrinking_reports_minimal_depth() {
    let caught = std::panic::catch_unwind(|| {
        check_shrunk(7, 8, |_seed, depth| {
            if depth >= 2 {
                Err(format!("too deep: {depth}"))
            } else {
                Ok(())
            }
        });
    });
    let msg = *caught
        .expect_err("property fails at depth 8, harness must panic")
        .downcast::<String>()
        .expect("panic payload is the formatted message");
    assert!(
        msg.contains("minimal depth 2 of 8"),
        "halve-and-retry must land on depth 2 (8→4→2→1 passes), got: {msg}"
    );
}
