//! Terms: the first-order objects NAL predicates range over.
//!
//! The Nexus imposes no semantic restrictions on terms (§2.2): labeling
//! functions introduce their own predicates and symbols, and principals
//! that import a label are presumed to understand its vocabulary.

use crate::principal::Principal;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A NAL term.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Term {
    /// Integer literal (also used for dates encoded as `yyyymmdd` and
    /// for counters, quotas, etc.).
    Int(i64),
    /// String literal.
    Str(String),
    /// Uninterpreted symbol, e.g. `PGM`, `Mar19`, `Filesystem`,
    /// `/proc/ipd/12`. Symbols compare by name only.
    Sym(String),
    /// Goal variable (`$X`), instantiated by the guard.
    Var(String),
    /// A principal used in term position (so predicates can talk about
    /// principals, e.g. `hasPath(/proc/ipd/12, Filesystem)` where the
    /// arguments name processes).
    Prin(Principal),
    /// Function application, e.g. `hash(PGM)` or `quota(alice)`.
    App(String, Vec<Term>),
}

impl Term {
    /// Integer literal.
    pub fn int(i: i64) -> Self {
        Term::Int(i)
    }

    /// String literal.
    pub fn str(s: impl Into<String>) -> Self {
        Term::Str(s.into())
    }

    /// Uninterpreted symbol.
    pub fn sym(s: impl Into<String>) -> Self {
        Term::Sym(s.into())
    }

    /// Goal variable.
    pub fn var(v: impl Into<String>) -> Self {
        Term::Var(v.into())
    }

    /// Function application.
    pub fn app(f: impl Into<String>, args: Vec<Term>) -> Self {
        Term::App(f.into(), args)
    }

    /// True if the term contains no variables (in term or principal
    /// position).
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Int(_) | Term::Str(_) | Term::Sym(_) => true,
            Term::Var(_) => false,
            Term::Prin(p) => !p.has_var(),
            Term::App(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// True if the term is a literal comparable by evaluation
    /// (integers and strings have a defined order; symbols do not).
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Int(_) | Term::Str(_))
    }

    /// Collect variable names into `out`.
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Term::Var(v) => out.push(v.clone()),
            Term::Prin(p) => p.collect_vars(out),
            Term::App(_, args) => args.iter().for_each(|t| t.collect_vars(out)),
            _ => {}
        }
    }

    /// Canonical form: an atomic *named* principal in term position is
    /// indistinguishable from a symbol in the concrete syntax
    /// (`hasPath(/proc/ipd/12, Filesystem)` names processes with plain
    /// identifiers), so `Prin(Name(n))` collapses to `Sym(n)`. The
    /// checker normalizes terms with this before matching.
    pub fn canon(&self) -> Term {
        match self {
            Term::Prin(Principal::Name(n)) => Term::Sym(n.clone()),
            Term::App(f, args) => Term::App(f.clone(), args.iter().map(Term::canon).collect()),
            other => other.clone(),
        }
    }

    /// The "subject name" of a term: the identifier a scoped
    /// (`speaksfor … on`) delegation matches against. For symbols and
    /// applications this is the head name; other terms have none.
    pub fn subject_name(&self) -> Option<&str> {
        match self {
            Term::Sym(s) => Some(s),
            Term::App(f, _) => Some(f),
            Term::Prin(Principal::Name(n)) => Some(n),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Int(i) => write!(f, "{i}"),
            Term::Str(s) => write!(f, "{s:?}"),
            Term::Sym(s) => write!(f, "{s}"),
            Term::Var(v) => write!(f, "${v}"),
            Term::Prin(p) => write!(f, "{p}"),
            Term::App(func, args) => {
                write!(f, "{func}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl From<i64> for Term {
    fn from(i: i64) -> Self {
        Term::Int(i)
    }
}

impl From<Principal> for Term {
    fn from(p: Principal) -> Self {
        Term::Prin(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round() {
        assert_eq!(Term::int(42).to_string(), "42");
        assert_eq!(Term::str("hi").to_string(), "\"hi\"");
        assert_eq!(Term::sym("TimeNow").to_string(), "TimeNow");
        assert_eq!(Term::var("X").to_string(), "$X");
        assert_eq!(
            Term::app("hash", vec![Term::sym("PGM")]).to_string(),
            "hash(PGM)"
        );
    }

    #[test]
    fn groundness() {
        assert!(Term::int(1).is_ground());
        assert!(!Term::var("X").is_ground());
        assert!(!Term::app("f", vec![Term::var("X")]).is_ground());
        assert!(Term::app("f", vec![Term::int(1), Term::sym("a")]).is_ground());
        assert!(!Term::Prin(Principal::var("P")).is_ground());
    }

    #[test]
    fn literals_vs_symbols() {
        assert!(Term::int(3).is_literal());
        assert!(Term::str("x").is_literal());
        assert!(!Term::sym("Mar19").is_literal());
    }

    #[test]
    fn subject_names() {
        assert_eq!(Term::sym("TimeNow").subject_name(), Some("TimeNow"));
        assert_eq!(
            Term::app("quota", vec![Term::sym("alice")]).subject_name(),
            Some("quota")
        );
        assert_eq!(Term::int(5).subject_name(), None);
    }

    #[test]
    fn var_collection() {
        let t = Term::app("f", vec![Term::var("X"), Term::Prin(Principal::var("Y"))]);
        let mut vars = Vec::new();
        t.collect_vars(&mut vars);
        assert_eq!(vars, vec!["X", "Y"]);
    }
}
