//! Tokenizer for NAL concrete syntax.

use crate::error::ParseError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier: `NTP`, `isTypeSafe`, `alice`.
    Ident(String),
    /// Path-like identifier: `/proc/ipd/12`, `/dir/file`.
    Path(String),
    /// Goal variable: `$X`.
    Var(String),
    /// Key principal: `key:ab12cd`.
    Key(String),
    /// Integer literal.
    Int(i64),
    /// String literal (double-quoted, backslash escapes).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `says`
    Says,
    /// `speaksfor`
    SpeaksFor,
    /// `on`
    On,
    /// `and` / `∧` / `/\`
    And,
    /// `or` / `∨` / `\/`
    Or,
    /// `not` / `¬`
    Not,
    /// `->` / `=>` / `implies` / `⇒`
    Implies,
    /// `true`
    True,
    /// `false`
    False,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=` / `==`
    Eq,
    /// `!=`
    Ne,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

/// A token with its byte offset (for error reporting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset where the token starts.
    pub offset: usize,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-'
}

/// True for characters that may appear in a path segment.
fn is_path_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-' || c == '/' || c == '.'
}

/// Tokenize a NAL input string.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    // Byte offsets: we track char indices; for ASCII-dominated input
    // they coincide with byte offsets closely enough for messages.
    let mut i = 0usize;
    let n = bytes.len();
    while i < n {
        let c = bytes[i];
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                out.push(Spanned {
                    token: Token::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                out.push(Spanned {
                    token: Token::RParen,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                out.push(Spanned {
                    token: Token::Comma,
                    offset: start,
                });
                i += 1;
            }
            '.' => {
                out.push(Spanned {
                    token: Token::Dot,
                    offset: start,
                });
                i += 1;
            }
            '∧' => {
                out.push(Spanned {
                    token: Token::And,
                    offset: start,
                });
                i += 1;
            }
            '∨' => {
                out.push(Spanned {
                    token: Token::Or,
                    offset: start,
                });
                i += 1;
            }
            '¬' => {
                out.push(Spanned {
                    token: Token::Not,
                    offset: start,
                });
                i += 1;
            }
            '⇒' | '→' => {
                out.push(Spanned {
                    token: Token::Implies,
                    offset: start,
                });
                i += 1;
            }
            '<' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    out.push(Spanned {
                        token: Token::Le,
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        token: Token::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    out.push(Spanned {
                        token: Token::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        token: Token::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < n && bytes[i + 1] == '>' {
                    out.push(Spanned {
                        token: Token::Implies,
                        offset: start,
                    });
                    i += 2;
                } else if i + 1 < n && bytes[i + 1] == '=' {
                    out.push(Spanned {
                        token: Token::Eq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        token: Token::Eq,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    out.push(Spanned {
                        token: Token::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new(start, "unexpected '!'"));
                }
            }
            '-' => {
                if i + 1 < n && bytes[i + 1] == '>' {
                    out.push(Spanned {
                        token: Token::Implies,
                        offset: start,
                    });
                    i += 2;
                } else if i + 1 < n && bytes[i + 1].is_ascii_digit() {
                    let mut j = i + 1;
                    while j < n && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                    let text: String = bytes[i..j].iter().collect();
                    let v = text
                        .parse::<i64>()
                        .map_err(|e| ParseError::new(start, format!("bad integer: {e}")))?;
                    out.push(Spanned {
                        token: Token::Int(v),
                        offset: start,
                    });
                    i = j;
                } else {
                    return Err(ParseError::new(start, "unexpected '-'"));
                }
            }
            '/' => {
                // `/\` is conjunction; otherwise a path.
                if i + 1 < n && bytes[i + 1] == '\\' {
                    out.push(Spanned {
                        token: Token::And,
                        offset: start,
                    });
                    i += 2;
                } else {
                    let mut j = i;
                    while j < n && is_path_char(bytes[j]) {
                        j += 1;
                    }
                    // Trailing dots belong to subprincipal syntax, not
                    // the path itself (e.g. `FS./dir/file.part` keeps
                    // the dot; but `path.` followed by non-path is a
                    // Dot token). We keep dots inside the path: Nexus
                    // paths are opaque strings.
                    let text: String = bytes[i..j].iter().collect();
                    out.push(Spanned {
                        token: Token::Path(text),
                        offset: start,
                    });
                    i = j;
                }
            }
            '\\' => {
                if i + 1 < n && bytes[i + 1] == '/' {
                    out.push(Spanned {
                        token: Token::Or,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new(start, "unexpected '\\'"));
                }
            }
            '$' => {
                let mut j = i + 1;
                while j < n && is_ident_continue(bytes[j]) {
                    j += 1;
                }
                if j == i + 1 {
                    return Err(ParseError::new(start, "empty variable name after '$'"));
                }
                let text: String = bytes[i + 1..j].iter().collect();
                out.push(Spanned {
                    token: Token::Var(text),
                    offset: start,
                });
                i = j;
            }
            '"' => {
                let mut j = i + 1;
                let mut s = String::new();
                let mut closed = false;
                while j < n {
                    match bytes[j] {
                        '"' => {
                            closed = true;
                            j += 1;
                            break;
                        }
                        '\\' if j + 1 < n => {
                            let esc = bytes[j + 1];
                            s.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                '\\' => '\\',
                                '"' => '"',
                                other => other,
                            });
                            j += 2;
                        }
                        other => {
                            s.push(other);
                            j += 1;
                        }
                    }
                }
                if !closed {
                    return Err(ParseError::new(start, "unterminated string literal"));
                }
                out.push(Spanned {
                    token: Token::Str(s),
                    offset: start,
                });
                i = j;
            }
            d if d.is_ascii_digit() => {
                let mut j = i;
                while j < n && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let text: String = bytes[i..j].iter().collect();
                let v = text
                    .parse::<i64>()
                    .map_err(|e| ParseError::new(start, format!("bad integer: {e}")))?;
                out.push(Spanned {
                    token: Token::Int(v),
                    offset: start,
                });
                i = j;
            }
            c if is_ident_start(c) => {
                let mut j = i;
                while j < n && is_ident_continue(bytes[j]) {
                    j += 1;
                }
                let text: String = bytes[i..j].iter().collect();
                let token = match text.as_str() {
                    "says" => Token::Says,
                    "speaksfor" => Token::SpeaksFor,
                    "on" => Token::On,
                    "and" => Token::And,
                    "or" => Token::Or,
                    "not" => Token::Not,
                    "implies" => Token::Implies,
                    "true" => Token::True,
                    "false" => Token::False,
                    "key" if j < n && bytes[j] == ':' => {
                        // key:hexdigits
                        let mut k = j + 1;
                        while k < n && bytes[k].is_ascii_hexdigit() {
                            k += 1;
                        }
                        let hex: String = bytes[j + 1..k].iter().collect();
                        if hex.is_empty() {
                            return Err(ParseError::new(start, "empty key after 'key:'"));
                        }
                        out.push(Spanned {
                            token: Token::Key(hex),
                            offset: start,
                        });
                        i = k;
                        continue;
                    }
                    _ => {
                        // Namespaced resource names (`file:/secret`,
                        // `ipc:42`) lex as a single path-like token.
                        if j < n && bytes[j] == ':' && j + 1 < n && is_path_char(bytes[j + 1]) {
                            let mut k = j + 1;
                            while k < n && is_path_char(bytes[k]) {
                                k += 1;
                            }
                            let rest: String = bytes[j + 1..k].iter().collect();
                            out.push(Spanned {
                                token: Token::Path(format!("{text}:{rest}")),
                                offset: start,
                            });
                            i = k;
                            continue;
                        }
                        Token::Ident(text)
                    }
                };
                out.push(Spanned {
                    token,
                    offset: start,
                });
                i = j;
            }
            other => {
                return Err(ParseError::new(
                    start,
                    format!("unexpected character {other:?}"),
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("NTP says TimeNow"),
            vec![
                Token::Ident("NTP".into()),
                Token::Says,
                Token::Ident("TimeNow".into())
            ]
        );
    }

    #[test]
    fn paths() {
        assert_eq!(
            toks("/proc/ipd/12"),
            vec![Token::Path("/proc/ipd/12".into())]
        );
        assert_eq!(
            toks("/proc/state/new.bak"),
            vec![Token::Path("/proc/state/new.bak".into())]
        );
    }

    #[test]
    fn unicode_connectives() {
        assert_eq!(
            toks("a ∧ b"),
            vec![
                Token::Ident("a".into()),
                Token::And,
                Token::Ident("b".into())
            ]
        );
        assert_eq!(toks("a ∨ b")[1], Token::Or);
        assert_eq!(toks("¬a")[0], Token::Not);
        assert_eq!(toks("a ⇒ b")[1], Token::Implies);
        assert_eq!(toks(r"a /\ b")[1], Token::And);
        assert_eq!(toks(r"a \/ b")[1], Token::Or);
    }

    #[test]
    fn comparisons() {
        assert_eq!(toks("a < 5")[1], Token::Lt);
        assert_eq!(toks("a <= 5")[1], Token::Le);
        assert_eq!(toks("a = 5")[1], Token::Eq);
        assert_eq!(toks("a == 5")[1], Token::Eq);
        assert_eq!(toks("a != 5")[1], Token::Ne);
        assert_eq!(toks("a >= 5")[1], Token::Ge);
        assert_eq!(toks("a > 5")[1], Token::Gt);
    }

    #[test]
    fn arrows() {
        assert_eq!(toks("a -> b")[1], Token::Implies);
        assert_eq!(toks("a => b")[1], Token::Implies);
        assert_eq!(toks("a implies b")[1], Token::Implies);
    }

    #[test]
    fn variables_and_keys() {
        assert_eq!(toks("$X")[0], Token::Var("X".into()));
        assert_eq!(toks("key:ab12")[0], Token::Key("ab12".into()));
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(toks(r#""a\"b\n""#)[0], Token::Str("a\"b\n".into()));
    }

    #[test]
    fn negative_integers() {
        assert_eq!(toks("-5")[0], Token::Int(-5));
        assert_eq!(toks("x = -5")[2], Token::Int(-5));
    }

    #[test]
    fn errors() {
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("$").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("€").is_err());
    }

    #[test]
    fn offsets_recorded() {
        let ts = tokenize("ab cd").unwrap();
        assert_eq!(ts[0].offset, 0);
        assert_eq!(ts[1].offset, 3);
    }
}
