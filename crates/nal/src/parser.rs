//! Recursive-descent parser for NAL concrete syntax.
//!
//! The grammar is given in the crate docs. The parser is total over the
//! token stream (no backtracking blow-ups) and produces the same AST
//! that the pretty-printer consumes, so `parse(f.to_string()) == f` for
//! all formulas (see the proptest in this module).

use crate::error::ParseError;
use crate::formula::{CmpOp, Formula};
use crate::lexer::{tokenize, Spanned, Token};
use crate::principal::Principal;
use crate::term::Term;

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|s| s.offset)
            .unwrap_or_else(|| self.tokens.last().map(|s| s.offset + 1).unwrap_or(0))
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.offset(), msg)
    }

    // formula := implies
    fn formula(&mut self) -> Result<Formula, ParseError> {
        self.implies()
    }

    fn implies(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.or()?;
        if matches!(self.peek(), Some(Token::Implies)) {
            self.pos += 1;
            let rhs = self.implies()?;
            Ok(lhs.implies(rhs))
        } else {
            Ok(lhs)
        }
    }

    fn or(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.and()?;
        while matches!(self.peek(), Some(Token::Or)) {
            self.pos += 1;
            let rhs = self.and()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.unary()?;
        while matches!(self.peek(), Some(Token::And)) {
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    // unary := NOT unary | TRUE | FALSE | "(" formula ")" | statement
    fn unary(&mut self) -> Result<Formula, ParseError> {
        match self.peek() {
            Some(Token::Not) => {
                self.pos += 1;
                Ok(self.unary()?.not())
            }
            Some(Token::True) => {
                self.pos += 1;
                Ok(Formula::True)
            }
            Some(Token::False) => {
                self.pos += 1;
                Ok(Formula::False)
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let f = self.formula()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(f)
            }
            Some(_) => self.statement(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    // statement := term (says | speaksfor | cmp | <bare predicate>)
    fn statement(&mut self) -> Result<Formula, ParseError> {
        let t = self.term()?;
        match self.peek() {
            Some(Token::Says) => {
                self.pos += 1;
                let p = term_to_principal(&t).ok_or_else(|| {
                    self.err(format!("'{t}' cannot be a principal before 'says'"))
                })?;
                let body = self.unary()?;
                Ok(body.says(p))
            }
            Some(Token::SpeaksFor) => {
                self.pos += 1;
                let from = term_to_principal(&t).ok_or_else(|| {
                    self.err(format!("'{t}' cannot be a principal before 'speaksfor'"))
                })?;
                let to_term = self.term()?;
                let to = term_to_principal(&to_term).ok_or_else(|| {
                    self.err(format!(
                        "'{to_term}' cannot be a principal after 'speaksfor'"
                    ))
                })?;
                if matches!(self.peek(), Some(Token::On)) {
                    self.pos += 1;
                    let mut scope = Vec::new();
                    while let Some(Token::Ident(name)) = self.peek() {
                        scope.push(name.clone());
                        self.pos += 1;
                    }
                    if scope.is_empty() {
                        return Err(self.err("expected scope identifiers after 'on'"));
                    }
                    Ok(Formula::speaksfor_on(from, to, scope))
                } else {
                    Ok(Formula::speaksfor(from, to))
                }
            }
            Some(op @ (Token::Lt | Token::Le | Token::Eq | Token::Ne | Token::Ge | Token::Gt)) => {
                let op = match op {
                    Token::Lt => CmpOp::Lt,
                    Token::Le => CmpOp::Le,
                    Token::Eq => CmpOp::Eq,
                    Token::Ne => CmpOp::Ne,
                    Token::Ge => CmpOp::Ge,
                    _ => CmpOp::Gt,
                };
                self.pos += 1;
                let rhs = self.term()?;
                Ok(Formula::cmp(op, t, rhs))
            }
            _ => {
                // Bare predicate.
                match t {
                    Term::App(f, args) => Ok(Formula::Pred(f, args)),
                    Term::Sym(s) => Ok(Formula::Pred(s, vec![])),
                    other => Err(self.err(format!("'{other}' is not a formula"))),
                }
            }
        }
    }

    // term := literal | var | key | path | ident [ "(" args ")" ] | principal-chain
    fn term(&mut self) -> Result<Term, ParseError> {
        let tok = self
            .next()
            .ok_or_else(|| ParseError::new(0, "unexpected end of input in term"))?;
        let base: Term = match tok {
            Token::Int(i) => return Ok(Term::Int(i)),
            Token::Str(s) => return Ok(Term::Str(s)),
            Token::Var(v) => Term::Var(v),
            Token::Key(k) => Term::Prin(Principal::Key(k)),
            Token::Path(p) => Term::Sym(p),
            Token::Ident(name) => {
                if matches!(self.peek(), Some(Token::LParen)) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Some(Token::RParen)) {
                        loop {
                            args.push(self.term()?);
                            match self.peek() {
                                Some(Token::Comma) => {
                                    self.pos += 1;
                                }
                                _ => break,
                            }
                        }
                    }
                    self.expect(&Token::RParen, "')' closing argument list")?;
                    return Ok(Term::App(name, args));
                }
                Term::Sym(name)
            }
            other => {
                return Err(self.err(format!("unexpected token {other:?} in term")));
            }
        };
        // Subprincipal chain: base.comp.comp…
        if matches!(self.peek(), Some(Token::Dot)) {
            let mut p = term_to_principal(&base)
                .ok_or_else(|| self.err(format!("'{base}' cannot start a principal chain")))?;
            while matches!(self.peek(), Some(Token::Dot)) {
                self.pos += 1;
                let comp = match self.next() {
                    Some(Token::Ident(c)) => c,
                    Some(Token::Path(c)) => c,
                    Some(Token::Int(i)) => i.to_string(),
                    _ => return Err(self.err("expected subprincipal component after '.'")),
                };
                p = p.sub(comp);
            }
            return Ok(Term::Prin(p));
        }
        Ok(base)
    }
}

/// Interpret a term as a principal where sensible.
pub(crate) fn term_to_principal(t: &Term) -> Option<Principal> {
    match t {
        Term::Sym(s) | Term::Str(s) => Some(Principal::Name(s.clone())),
        Term::Var(v) => Some(Principal::Var(v.clone())),
        Term::Prin(p) => Some(p.clone()),
        _ => None,
    }
}

/// Parse a NAL formula from its concrete syntax.
pub fn parse(input: &str) -> Result<Formula, ParseError> {
    let tokens = tokenize(input)?;
    if tokens.is_empty() {
        return Err(ParseError::new(0, "empty input"));
    }
    let mut p = Parser { tokens, pos: 0 };
    let f = p.formula()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing input after formula"));
    }
    Ok(f)
}

/// Parse a principal expression (e.g. `NK.labelstore./proc/ipd/12`).
pub fn parse_principal(input: &str) -> Result<Principal, ParseError> {
    let tokens = tokenize(input)?;
    if tokens.is_empty() {
        return Err(ParseError::new(0, "empty input"));
    }
    let mut p = Parser { tokens, pos: 0 };
    let t = p.term()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing input after principal"));
    }
    term_to_principal(&t).ok_or_else(|| ParseError::new(0, format!("'{t}' is not a principal")))
}

/// Parse a term.
pub fn parse_term(input: &str) -> Result<Term, ParseError> {
    let tokens = tokenize(input)?;
    if tokens.is_empty() {
        return Err(ParseError::new(0, "empty input"));
    }
    let mut p = Parser { tokens, pos: 0 };
    let t = p.term()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing input after term"));
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Formula;

    fn roundtrip(s: &str) {
        let f = parse(s).unwrap();
        let printed = f.to_string();
        let f2 = parse(&printed).unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        assert_eq!(f, f2, "round-trip mismatch for {s:?} -> {printed:?}");
    }

    #[test]
    fn paper_examples_parse() {
        for s in [
            "TypeChecker says isTypeSafe(PGM)",
            "Company says isTrustworthy(Client) and Nexus says /proc/ipd/12 speaksfor Client",
            "Nexus says /proc/ipd/30 speaksfor IPCAnalyzer",
            "/proc/ipd/30 says not hasPath(/proc/ipd/12, Filesystem)",
            "Server says NTP speaksfor Server on TimeNow",
            "Owner says TimeNow < 20110319",
            "Filesystem says NTP speaksfor Filesystem on TimeNow and NTP says TimeNow < 20110319",
            "$X says openFile(filename) and SafetyCertifier says safe($X)",
            "A says Valid(S) -> S",
            "FS says /proc/ipd/6 speaksfor FS./dir/file",
            "name.webserver says user = alice",
            "name.python says inFriends(alice, bob)",
        ] {
            roundtrip(s);
        }
    }

    #[test]
    fn precedence_and_over_or() {
        let f = parse("a and b or c and d").unwrap();
        match f {
            Formula::Or(l, r) => {
                assert!(matches!(*l, Formula::And(..)));
                assert!(matches!(*r, Formula::And(..)));
            }
            other => panic!("expected Or at top, got {other:?}"),
        }
    }

    #[test]
    fn implies_is_right_associative_and_lowest() {
        let f = parse("a -> b -> c").unwrap();
        match f {
            Formula::Implies(_, r) => assert!(matches!(*r, Formula::Implies(..))),
            other => panic!("{other:?}"),
        }
        let g = parse("a and b -> c").unwrap();
        assert!(matches!(g, Formula::Implies(..)));
    }

    #[test]
    fn says_is_right_associative() {
        let f = parse("A says B says p").unwrap();
        assert_eq!(f.to_string(), "A says B says p");
        if let Formula::Says(a, inner) = &f {
            assert_eq!(a, &Principal::name("A"));
            assert!(matches!(inner.as_ref(), Formula::Says(..)));
        } else {
            panic!();
        }
    }

    #[test]
    fn says_scopes_tighter_than_and() {
        let f = parse("A says p and B says q").unwrap();
        assert!(matches!(f, Formula::And(..)));
    }

    #[test]
    fn says_with_parenthesized_body() {
        let f = parse("A says (p and q)").unwrap();
        if let Formula::Says(_, body) = &f {
            assert!(matches!(body.as_ref(), Formula::And(..)));
        } else {
            panic!();
        }
        roundtrip("A says (p and q)");
    }

    #[test]
    fn negation_inside_says() {
        let f = parse("/proc/ipd/30 says not hasPath(/proc/ipd/12, Nameserver)").unwrap();
        if let Formula::Says(p, body) = &f {
            assert_eq!(p, &Principal::name("/proc/ipd/30"));
            assert!(matches!(body.as_ref(), Formula::Not(..)));
        } else {
            panic!();
        }
    }

    #[test]
    fn subprincipals_parse() {
        let p = parse_principal("HW.kernel.process23").unwrap();
        assert_eq!(p.depth(), 2);
        let q = parse_principal("FS./dir/file").unwrap();
        assert_eq!(q, Principal::name("FS").sub("/dir/file"));
        let r = parse_principal("key:ab12.labelstore").unwrap();
        assert_eq!(r, Principal::key("ab12").sub("labelstore"));
    }

    #[test]
    fn comparison_forms() {
        roundtrip("TimeNow < 20110319");
        roundtrip("x <= 5");
        roundtrip("user = alice");
        roundtrip("a != b");
        roundtrip("quota(alice) >= 80");
        let f = parse("quota(alice) < 80").unwrap();
        assert!(matches!(
            f,
            Formula::Cmp(CmpOp::Lt, Term::App(..), Term::Int(80))
        ));
    }

    #[test]
    fn scoped_delegation_multi() {
        let f = parse("A speaksfor B on TimeNow TimeZone").unwrap();
        if let Formula::SpeaksFor { scope: Some(s), .. } = &f {
            assert_eq!(s.len(), 2);
        } else {
            panic!();
        }
        roundtrip("A speaksfor B on TimeNow TimeZone");
    }

    #[test]
    fn errors_reported() {
        assert!(parse("").is_err());
        assert!(parse("and").is_err());
        assert!(parse("a says").is_err());
        assert!(parse("a speaksfor").is_err());
        assert!(parse("(a").is_err());
        assert!(parse("a b").is_err());
        assert!(parse("5 says x").is_err());
        assert!(parse("a speaksfor b on").is_err());
        assert!(parse("f(a,").is_err());
    }

    #[test]
    fn string_and_int_terms() {
        roundtrip("openFile(\"/etc/passwd\")");
        roundtrip("count = 42");
        roundtrip("temp = -3");
    }

    #[test]
    fn unicode_syntax_accepted() {
        let f = parse("A says p ∧ B says ¬q").unwrap();
        assert!(matches!(f, Formula::And(..)));
        let g = parse("A says Valid(S) ⇒ S").unwrap();
        assert!(matches!(g, Formula::Implies(..)));
    }

    #[test]
    fn variables_in_goals() {
        let f = parse("$X says openFile($F)").unwrap();
        assert_eq!(f.vars(), vec!["X", "F"]);
    }
}
