//! NAL formulas.
//!
//! Formulas are built from predicates and comparisons with the
//! connectives of constructive propositional logic plus two modal
//! forms: `P says S` (belief attribution) and `A speaksfor B [on σ]`
//! (delegation, optionally scoped to statements about the identifiers
//! in σ).

use crate::principal::Principal;
use crate::term::Term;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Comparison operators usable in atomic formulas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

impl CmpOp {
    /// Evaluate the comparison on two ordered values.
    pub fn eval<T: PartialOrd + PartialEq>(self, a: &T, b: &T) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Ge => a >= b,
            CmpOp::Gt => a > b,
        }
    }

    /// Concrete-syntax spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
        }
    }
}

/// A NAL formula.
///
/// `Not(p)` is constructively equivalent to `Implies(p, False)`; the
/// checker treats the two interchangeably (see
/// [`Formula::not_as_implies`]), but `Not` is kept as a constructor so
/// labels render the way the paper writes them
/// (`¬hasPath(/proc/ipd/12, Filesystem)`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Formula {
    /// Trivial truth.
    True,
    /// Absurdity. `A says False` poisons only A's worldview (deduction
    /// is local), never unrelated principals'.
    False,
    /// Application of an uninterpreted predicate, e.g.
    /// `isTypeSafe(PGM)`. A nullary predicate (`Valid`) is allowed.
    Pred(String, Vec<Term>),
    /// Comparison between two terms, e.g. `TimeNow < 20110319`.
    Cmp(CmpOp, Term, Term),
    /// Belief attribution: `P says S`.
    Says(Principal, Box<Formula>),
    /// Delegation: `A speaksfor B`, optionally restricted by scope
    /// (`on TimeNow`): only statements whose subject names all fall in
    /// the scope set transfer from A's worldview to B's.
    SpeaksFor {
        /// The delegate (the principal whose statements transfer).
        from: Principal,
        /// The delegator (the principal that gains the statements).
        to: Principal,
        /// Optional `on` scope: a set of subject identifiers.
        scope: Option<BTreeSet<String>>,
    },
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// Implication (constructive).
    Implies(Box<Formula>, Box<Formula>),
    /// Negation; sugar for `Implies(_, False)`.
    Not(Box<Formula>),
}

impl Formula {
    /// Predicate application.
    pub fn pred(name: impl Into<String>, args: Vec<Term>) -> Self {
        Formula::Pred(name.into(), args)
    }

    /// Comparison.
    pub fn cmp(op: CmpOp, a: Term, b: Term) -> Self {
        Formula::Cmp(op, a, b)
    }

    /// `p says self`.
    pub fn says(self, p: Principal) -> Self {
        Formula::Says(p, Box::new(self))
    }

    /// Unscoped delegation `from speaksfor to`.
    pub fn speaksfor(from: Principal, to: Principal) -> Self {
        Formula::SpeaksFor {
            from,
            to,
            scope: None,
        }
    }

    /// Scoped delegation `from speaksfor to on scope`.
    pub fn speaksfor_on<I, S>(from: Principal, to: Principal, scope: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Formula::SpeaksFor {
            from,
            to,
            scope: Some(scope.into_iter().map(Into::into).collect()),
        }
    }

    /// `self ∧ other`.
    pub fn and(self, other: Formula) -> Self {
        Formula::And(Box::new(self), Box::new(other))
    }

    /// `self ∨ other`.
    pub fn or(self, other: Formula) -> Self {
        Formula::Or(Box::new(self), Box::new(other))
    }

    /// `self → other`.
    pub fn implies(self, other: Formula) -> Self {
        Formula::Implies(Box::new(self), Box::new(other))
    }

    /// `¬self`. (Deliberately shadows the `std::ops::Not` name: this
    /// is the formula constructor DSL, `!f` is not implemented.)
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Formula::Not(Box::new(self))
    }

    /// View `Not(p)` as `Implies(p, False)`, the constructive meaning.
    /// Returns `self` unchanged for other constructors.
    pub fn not_as_implies(&self) -> Formula {
        match self {
            Formula::Not(p) => Formula::Implies(p.clone(), Box::new(Formula::False)),
            other => other.clone(),
        }
    }

    /// Structural equality modulo the `Not(p)` ≡ `p → False`
    /// identification, applied recursively.
    pub fn equivalent(&self, other: &Formula) -> bool {
        use Formula::*;
        match (self, other) {
            (Not(a), b) | (b, Not(a)) if !matches!(b, Not(_)) => {
                // Not(a) ≡ a → False
                if let Implies(x, y) = b {
                    y.as_ref().equivalent(&False) && x.equivalent(a)
                } else {
                    false
                }
            }
            (Not(a), Not(b)) => a.equivalent(b),
            (And(a1, a2), And(b1, b2))
            | (Or(a1, a2), Or(b1, b2))
            | (Implies(a1, a2), Implies(b1, b2)) => a1.equivalent(b1) && a2.equivalent(b2),
            (Says(p, a), Says(q, b)) => p == q && a.equivalent(b),
            _ => self == other,
        }
    }

    /// Flatten a conjunction tree into its conjuncts (a single
    /// non-conjunction formula yields itself).
    pub fn conjuncts(&self) -> Vec<&Formula> {
        let mut out = Vec::new();
        fn walk<'a>(f: &'a Formula, out: &mut Vec<&'a Formula>) {
            match f {
                Formula::And(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Build the right-nested conjunction of `items`; `True` if empty.
    pub fn conj(items: Vec<Formula>) -> Formula {
        let mut it = items.into_iter().rev();
        match it.next() {
            None => Formula::True,
            Some(last) => it.fold(last, |acc, f| f.and(acc)),
        }
    }

    /// True if the formula contains no goal variables.
    pub fn is_ground(&self) -> bool {
        self.vars().is_empty()
    }

    /// All goal-variable names occurring in the formula, in first-seen
    /// order without duplicates.
    pub fn vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        let mut seen = BTreeSet::new();
        out.retain(|v| seen.insert(v.clone()));
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Pred(_, args) => args.iter().for_each(|t| t.collect_vars(out)),
            Formula::Cmp(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Formula::Says(p, s) => {
                p.collect_vars(out);
                s.collect_vars(out);
            }
            Formula::SpeaksFor { from, to, .. } => {
                from.collect_vars(out);
                to.collect_vars(out);
            }
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Formula::Not(a) => a.collect_vars(out),
        }
    }

    /// Subject names of the statement, for scope (`on`) matching: the
    /// set of predicate heads and comparison left-hand subjects.
    /// A scoped delegation `A speaksfor B on σ` transfers statement S
    /// only if `S.subject_names() ⊆ σ` and S contains no nested
    /// delegation or belief attribution.
    pub fn subject_names(&self) -> Option<BTreeSet<String>> {
        let mut out = BTreeSet::new();
        if self.collect_subjects(&mut out) {
            Some(out)
        } else {
            None
        }
    }

    fn collect_subjects(&self, out: &mut BTreeSet<String>) -> bool {
        match self {
            Formula::True | Formula::False => true,
            Formula::Pred(name, _) => {
                out.insert(name.clone());
                true
            }
            Formula::Cmp(_, a, _) => {
                match a.subject_name() {
                    Some(n) => out.insert(n.to_string()),
                    // A comparison whose subject is anonymous (e.g.
                    // `3 < 5`) matches any scope.
                    None => true,
                };
                true
            }
            // Nested modalities never transfer through scoped
            // delegation: the scope mechanism is for restricting
            // first-order utterances (§2.1's NTP example).
            Formula::Says(..) | Formula::SpeaksFor { .. } => false,
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                a.collect_subjects(out) && b.collect_subjects(out)
            }
            Formula::Not(a) => a.collect_subjects(out),
        }
    }

    /// True if statement `self` falls within delegation scope `scope`.
    pub fn within_scope(&self, scope: &BTreeSet<String>) -> bool {
        match self.subject_names() {
            Some(subjects) => subjects.is_subset(scope),
            None => false,
        }
    }

    /// Size of the formula tree (number of constructors), used for
    /// cache accounting and prover bounds.
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Pred(..) | Formula::Cmp(..) => 1,
            Formula::Says(_, s) | Formula::Not(s) => 1 + s.size(),
            Formula::SpeaksFor { .. } => 1,
            Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                1 + a.size() + b.size()
            }
        }
    }

    /// Canonical string form: deterministic, fully parenthesized where
    /// needed; used as the digest input for credential hashing.
    pub fn canonical(&self) -> String {
        self.to_string()
    }
}

// Precedence levels for printing: implies(1) < or(2) < and(3) < says/not(4) < atom(5)
fn fmt_prec(f: &Formula, prec: u8, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    let my_prec = match f {
        Formula::Implies(..) => 1,
        Formula::Or(..) => 2,
        Formula::And(..) => 3,
        Formula::Says(..) | Formula::Not(..) | Formula::SpeaksFor { .. } => 4,
        _ => 5,
    };
    let need_paren = my_prec < prec;
    if need_paren {
        write!(out, "(")?;
    }
    match f {
        Formula::True => write!(out, "true")?,
        Formula::False => write!(out, "false")?,
        Formula::Pred(name, args) => {
            write!(out, "{name}")?;
            if !args.is_empty() {
                write!(out, "(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(out, ", ")?;
                    }
                    write!(out, "{a}")?;
                }
                write!(out, ")")?;
            }
        }
        Formula::Cmp(op, a, b) => write!(out, "{a} {} {b}", op.symbol())?,
        Formula::Says(p, s) => {
            write!(out, "{p} says ")?;
            fmt_prec(s, 4, out)?;
        }
        Formula::SpeaksFor { from, to, scope } => {
            write!(out, "{from} speaksfor {to}")?;
            if let Some(scope) = scope {
                write!(out, " on")?;
                for s in scope {
                    write!(out, " {s}")?;
                }
            }
        }
        // `and`/`or` parse left-associatively, so a right-nested
        // subtree must be parenthesized to round-trip.
        Formula::And(a, b) => {
            fmt_prec(a, 3, out)?;
            write!(out, " and ")?;
            fmt_prec(b, 4, out)?;
        }
        Formula::Or(a, b) => {
            fmt_prec(a, 2, out)?;
            write!(out, " or ")?;
            fmt_prec(b, 3, out)?;
        }
        Formula::Implies(a, b) => {
            fmt_prec(a, 2, out)?;
            write!(out, " -> ")?;
            fmt_prec(b, 1, out)?;
        }
        Formula::Not(a) => {
            write!(out, "not ")?;
            fmt_prec(a, 5, out)?;
        }
    }
    if need_paren {
        write!(out, ")")?;
    }
    Ok(())
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_prec(self, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: &str) -> Principal {
        Principal::name(n)
    }

    #[test]
    fn display_precedence() {
        let f = Formula::pred("a", vec![])
            .and(Formula::pred("b", vec![]))
            .or(Formula::pred("c", vec![]));
        assert_eq!(f.to_string(), "a and b or c");
        let g = Formula::pred("a", vec![])
            .and(Formula::pred("b", vec![]).or(Formula::pred("c", vec![])));
        assert_eq!(g.to_string(), "a and (b or c)");
    }

    #[test]
    fn says_binds_tighter_than_and() {
        let f = Formula::pred("s", vec![])
            .says(p("A"))
            .and(Formula::pred("t", vec![]).says(p("B")));
        assert_eq!(f.to_string(), "A says s and B says t");
    }

    #[test]
    fn nested_says_display() {
        let f = Formula::pred("s", vec![]).says(p("B")).says(p("A"));
        assert_eq!(f.to_string(), "A says B says s");
    }

    #[test]
    fn implies_display() {
        let f = Formula::pred("Valid", vec![Term::sym("S")])
            .says(p("A"))
            .implies(Formula::pred("S", vec![]));
        assert_eq!(f.to_string(), "A says Valid(S) -> S");
    }

    #[test]
    fn not_equivalence() {
        let not_p = Formula::pred("p", vec![]).not();
        let imp = Formula::pred("p", vec![]).implies(Formula::False);
        assert!(not_p.equivalent(&imp));
        assert!(imp.equivalent(&not_p));
        assert!(!not_p.equivalent(&Formula::pred("p", vec![])));
    }

    #[test]
    fn conjunct_flattening() {
        let f = Formula::conj(vec![
            Formula::pred("a", vec![]),
            Formula::pred("b", vec![]),
            Formula::pred("c", vec![]),
        ]);
        assert_eq!(f.conjuncts().len(), 3);
        assert_eq!(Formula::conj(vec![]), Formula::True);
    }

    #[test]
    fn scope_matching() {
        let stmt = Formula::cmp(CmpOp::Lt, Term::sym("TimeNow"), Term::int(20110319));
        let mut scope = BTreeSet::new();
        scope.insert("TimeNow".to_string());
        assert!(stmt.within_scope(&scope));

        let other = Formula::pred("isTypeSafe", vec![Term::sym("PGM")]);
        assert!(!other.within_scope(&scope));

        // Nested says never passes scope.
        let nested = stmt.clone().says(p("NTP"));
        assert!(!nested.within_scope(&scope));

        // Conjunction must be entirely within scope.
        let both = stmt.clone().and(other);
        assert!(!both.within_scope(&scope));
    }

    #[test]
    fn vars_and_groundness() {
        let f = Formula::pred("openFile", vec![Term::var("F")]).says(Principal::var("X"));
        assert_eq!(f.vars(), vec!["X", "F"]);
        assert!(!f.is_ground());
        assert!(Formula::True.is_ground());
    }

    #[test]
    fn size_counts_constructors() {
        let f = Formula::pred("a", vec![]).and(Formula::pred("b", vec![]).not());
        assert_eq!(f.size(), 4);
    }

    #[test]
    fn cmp_ops_eval() {
        assert!(CmpOp::Lt.eval(&1, &2));
        assert!(CmpOp::Le.eval(&2, &2));
        assert!(CmpOp::Eq.eval(&2, &2));
        assert!(CmpOp::Ne.eval(&1, &2));
        assert!(CmpOp::Ge.eval(&2, &2));
        assert!(CmpOp::Gt.eval(&3, &2));
        assert!(!CmpOp::Gt.eval(&2, &3));
    }

    #[test]
    fn scoped_speaksfor_display() {
        let f = Formula::speaksfor_on(p("NTP"), p("Server"), ["TimeNow"]);
        assert_eq!(f.to_string(), "NTP speaksfor Server on TimeNow");
    }
}
