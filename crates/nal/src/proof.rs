//! Proof trees for NAL.
//!
//! Proof *derivation* in NAL is undecidable, so Nexus places the onus on
//! the client to construct a proof and present it with each request
//! (§2.6). The guard then only *checks* the proof — a linear-time
//! operation implemented in [`crate::check`](fn@crate::check::check).
//!
//! Proofs are explicit natural-deduction trees. Leaves are either
//! credentials ([`Proof::Assume`]) or hypotheses ([`Proof::Hypo`])
//! discharged by an enclosing introduction rule. Because the logic is
//! constructive, a checked proof doubles as an audit trail: rendering
//! it (see [`Proof::render_audit`]) shows exactly which labels every
//! authorization decision rested on.

use crate::formula::{CmpOp, Formula};
use crate::principal::Principal;
use crate::term::Term;
use serde::{Deserialize, Serialize};

/// A natural-deduction proof tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Proof {
    /// Leaf: the formula is supplied as a credential (label) or as an
    /// authority-validated statement.
    Assume(Formula),
    /// Leaf: hypothesis introduced by an enclosing `ImpliesIntro`,
    /// `NotIntro`, or `OrElim`.
    Hypo(Formula),
    /// `⊢ true`.
    TrueIntro,
    /// From `⊢ a` and `⊢ b`, conclude `⊢ a ∧ b`.
    AndIntro(Box<Proof>, Box<Proof>),
    /// From `⊢ a ∧ b`, conclude `⊢ a`.
    AndElimL(Box<Proof>),
    /// From `⊢ a ∧ b`, conclude `⊢ b`.
    AndElimR(Box<Proof>),
    /// From `⊢ a`, conclude `⊢ a ∨ other`.
    OrIntroL(Box<Proof>, Formula),
    /// From `⊢ b`, conclude `⊢ other ∨ b`.
    OrIntroR(Formula, Box<Proof>),
    /// Case analysis: from `⊢ a ∨ b`, a proof of the goal under
    /// hypothesis `a`, and a proof under hypothesis `b`, conclude the
    /// goal. Constructive disjunction elimination.
    OrElim {
        /// Proof of the disjunction.
        disj: Box<Proof>,
        /// Hypothesis for the left branch (must match the left disjunct).
        left_hypo: Formula,
        /// Proof of the goal under `left_hypo`.
        left: Box<Proof>,
        /// Hypothesis for the right branch.
        right_hypo: Formula,
        /// Proof of the goal under `right_hypo`.
        right: Box<Proof>,
    },
    /// Hypothetical reasoning: from a proof of `q` under hypothesis
    /// `hypo`, conclude `⊢ hypo → q`.
    ImpliesIntro {
        /// The hypothesis being discharged.
        hypo: Formula,
        /// Proof of the consequent under the hypothesis.
        body: Box<Proof>,
    },
    /// Modus ponens: from `⊢ a → b` and `⊢ a`, conclude `⊢ b`.
    /// Also applies when the first premise is `¬a` (≡ `a → false`).
    ImpliesElim(Box<Proof>, Box<Proof>),
    /// Negation introduction: from a proof of `false` under hypothesis
    /// `hypo`, conclude `⊢ ¬hypo`.
    NotIntro {
        /// The hypothesis being refuted.
        hypo: Formula,
        /// Proof of `false` under the hypothesis.
        body: Box<Proof>,
    },
    /// Ex falso quodlibet: from `⊢ false`, conclude any (ground) goal.
    /// Constructively valid; locality is preserved because `false` can
    /// only be derived inside a worldview that already believes it.
    FalseElim(Box<Proof>, Formula),
    /// Double-negation *introduction* (`p ⊢ ¬¬p`). The converse —
    /// elimination — is classical and deliberately absent.
    DoubleNegIntro(Box<Proof>),
    /// Decide a comparison between ground literal terms by evaluation,
    /// e.g. `⊢ 5 < 7`.
    CmpEval(CmpOp, Term, Term),
    /// CDD `unit`: from `⊢ p`, conclude `⊢ P says p` — anything true
    /// is in every principal's worldview.
    SaysIntro(Principal, Box<Proof>),
    /// Modal K / monadic bind: from `⊢ P says (a → b)` and
    /// `⊢ P says a`, conclude `⊢ P says b`. All deduction stays local
    /// to `P`'s worldview.
    SaysApp(Box<Proof>, Box<Proof>),
    /// Delegation: from `⊢ A speaksfor B [on σ]` and `⊢ A says S`,
    /// conclude `⊢ B says S` (subject to the scope check when σ is
    /// present).
    SpeaksForElim(Box<Proof>, Box<Proof>),
    /// Axiom: `⊢ A speaksfor A.τ` — a principal speaks for its
    /// subprincipals.
    SubPrin(Principal, String),
    /// Axiom: `⊢ A speaksfor A`.
    SpeaksForRefl(Principal),
    /// Transitivity: from `⊢ A speaksfor B [on σ₁]` and
    /// `⊢ B speaksfor C [on σ₂]`, conclude `⊢ A speaksfor C [on σ₁∩σ₂]`.
    SpeaksForTrans(Box<Proof>, Box<Proof>),
    /// Handoff (Taos lineage): from `⊢ B says (A speaksfor B [on σ])`,
    /// conclude `⊢ A speaksfor B [on σ]` — a principal may delegate
    /// its own authority. This is how Nexus resource managers pass
    /// object ownership: `FS says /proc/ipd/6 speaksfor FS./dir/file`
    /// (§2.6).
    Handoff(Box<Proof>),
}

impl Proof {
    /// Leaf assumption.
    pub fn assume(f: Formula) -> Proof {
        Proof::Assume(f)
    }

    /// Number of nodes in the proof tree.
    pub fn size(&self) -> usize {
        match self {
            Proof::Assume(_)
            | Proof::Hypo(_)
            | Proof::TrueIntro
            | Proof::CmpEval(..)
            | Proof::SubPrin(..)
            | Proof::SpeaksForRefl(_) => 1,
            Proof::AndElimL(p)
            | Proof::AndElimR(p)
            | Proof::OrIntroL(p, _)
            | Proof::OrIntroR(_, p)
            | Proof::ImpliesIntro { body: p, .. }
            | Proof::NotIntro { body: p, .. }
            | Proof::FalseElim(p, _)
            | Proof::DoubleNegIntro(p)
            | Proof::SaysIntro(_, p)
            | Proof::Handoff(p) => 1 + p.size(),
            Proof::AndIntro(a, b)
            | Proof::ImpliesElim(a, b)
            | Proof::SaysApp(a, b)
            | Proof::SpeaksForElim(a, b)
            | Proof::SpeaksForTrans(a, b) => 1 + a.size() + b.size(),
            Proof::OrElim {
                disj, left, right, ..
            } => 1 + disj.size() + left.size() + right.size(),
        }
    }

    /// Number of inference-rule applications (non-leaf nodes). This is
    /// the "#rules" axis of Figure 5.
    pub fn rule_count(&self) -> usize {
        match self {
            Proof::Assume(_) | Proof::Hypo(_) => 0,
            _ => {
                let children = self.children();
                1 + children.iter().map(|c| c.rule_count()).sum::<usize>()
            }
        }
    }

    fn children(&self) -> Vec<&Proof> {
        match self {
            Proof::Assume(_)
            | Proof::Hypo(_)
            | Proof::TrueIntro
            | Proof::CmpEval(..)
            | Proof::SubPrin(..)
            | Proof::SpeaksForRefl(_) => vec![],
            Proof::AndElimL(p)
            | Proof::AndElimR(p)
            | Proof::OrIntroL(p, _)
            | Proof::OrIntroR(_, p)
            | Proof::ImpliesIntro { body: p, .. }
            | Proof::NotIntro { body: p, .. }
            | Proof::FalseElim(p, _)
            | Proof::DoubleNegIntro(p)
            | Proof::SaysIntro(_, p)
            | Proof::Handoff(p) => vec![p],
            Proof::AndIntro(a, b)
            | Proof::ImpliesElim(a, b)
            | Proof::SaysApp(a, b)
            | Proof::SpeaksForElim(a, b)
            | Proof::SpeaksForTrans(a, b) => vec![a, b],
            Proof::OrElim {
                disj, left, right, ..
            } => vec![disj, left, right],
        }
    }

    /// All `Assume` leaves, in left-to-right order. The guard uses
    /// these to (1) verify every leaf against the supplied credentials
    /// or a designated authority and (2) decide cacheability: a proof
    /// whose leaves are all indefinitely-valid labels may be cached,
    /// one with authority-backed leaves may not (§2.8).
    pub fn leaves(&self) -> Vec<&Formula> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, out: &mut Vec<&'a Formula>) {
        match self {
            Proof::Assume(f) => out.push(f),
            _ => {
                for c in self.children() {
                    c.collect_leaves(out);
                }
            }
        }
    }

    /// The name of the rule at the root (for audit rendering).
    pub fn rule_name(&self) -> &'static str {
        match self {
            Proof::Assume(_) => "assume",
            Proof::Hypo(_) => "hypothesis",
            Proof::TrueIntro => "true-intro",
            Proof::AndIntro(..) => "and-intro",
            Proof::AndElimL(_) => "and-elim-left",
            Proof::AndElimR(_) => "and-elim-right",
            Proof::OrIntroL(..) => "or-intro-left",
            Proof::OrIntroR(..) => "or-intro-right",
            Proof::OrElim { .. } => "or-elim",
            Proof::ImpliesIntro { .. } => "implies-intro",
            Proof::ImpliesElim(..) => "implies-elim",
            Proof::NotIntro { .. } => "not-intro",
            Proof::FalseElim(..) => "false-elim",
            Proof::DoubleNegIntro(_) => "double-neg-intro",
            Proof::CmpEval(..) => "cmp-eval",
            Proof::SaysIntro(..) => "says-intro",
            Proof::SaysApp(..) => "says-app",
            Proof::SpeaksForElim(..) => "speaksfor-elim",
            Proof::SubPrin(..) => "subprincipal",
            Proof::SpeaksForRefl(_) => "speaksfor-refl",
            Proof::SpeaksForTrans(..) => "speaksfor-trans",
            Proof::Handoff(_) => "handoff",
        }
    }

    /// Render the derivation as an indented audit trail. Each line
    /// shows a rule name; leaves show the assumed formula. Credentials
    /// are self-documenting (§2): this rendering is what gets logged.
    pub fn render_audit(&self) -> String {
        let mut out = String::new();
        self.render(0, &mut out);
        out
    }

    fn render(&self, depth: usize, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        match self {
            Proof::Assume(f) => out.push_str(&format!("assume: {f}\n")),
            Proof::Hypo(f) => out.push_str(&format!("hypothesis: {f}\n")),
            Proof::CmpEval(op, a, b) => {
                out.push_str(&format!("evaluate: {a} {} {b}\n", op.symbol()))
            }
            Proof::SubPrin(p, c) => out.push_str(&format!("axiom: {p} speaksfor {p}.{c}\n")),
            Proof::SpeaksForRefl(p) => out.push_str(&format!("axiom: {p} speaksfor {p}\n")),
            other => {
                out.push_str(other.rule_name());
                out.push('\n');
                for c in other.children() {
                    c.render(depth + 1, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn sizes_and_rule_counts() {
        let f = parse("A says p").unwrap();
        let leaf = Proof::assume(f);
        assert_eq!(leaf.size(), 1);
        assert_eq!(leaf.rule_count(), 0);

        let pair = Proof::AndIntro(Box::new(leaf.clone()), Box::new(leaf.clone()));
        assert_eq!(pair.size(), 3);
        assert_eq!(pair.rule_count(), 1);

        let nested = Proof::DoubleNegIntro(Box::new(pair));
        assert_eq!(nested.rule_count(), 2);
    }

    #[test]
    fn leaves_collects_in_order() {
        let a = parse("A says p").unwrap();
        let b = parse("B says q").unwrap();
        let proof = Proof::AndIntro(
            Box::new(Proof::assume(a.clone())),
            Box::new(Proof::assume(b.clone())),
        );
        let leaves = proof.leaves();
        assert_eq!(leaves, vec![&a, &b]);
    }

    #[test]
    fn hypo_is_not_a_credential_leaf() {
        let a = parse("p").unwrap();
        let proof = Proof::ImpliesIntro {
            hypo: a.clone(),
            body: Box::new(Proof::Hypo(a)),
        };
        assert!(proof.leaves().is_empty());
    }

    #[test]
    fn audit_rendering_mentions_assumptions() {
        let a = parse("NTP says TimeNow < 20110319").unwrap();
        let proof = Proof::assume(a);
        let audit = proof.render_audit();
        assert!(audit.contains("assume: NTP says TimeNow < 20110319"));
    }

    #[test]
    fn serde_round_trip() {
        let f = parse("A speaksfor B on TimeNow").unwrap();
        let proof = Proof::SpeaksForElim(
            Box::new(Proof::assume(f)),
            Box::new(Proof::assume(parse("A says TimeNow < 5").unwrap())),
        );
        let json = serde_json::to_string(&proof).unwrap();
        let back: Proof = serde_json::from_str(&json).unwrap();
        assert_eq!(proof, back);
    }
}
