//! # Nexus Authorization Logic (NAL)
//!
//! A constructive logic of belief used by the Nexus operating system's
//! *logical attestation* architecture (Sirer et al., SOSP 2011).
//!
//! NAL formulas attribute statements to principals. The central modality
//! is `P says S` — "S is in the worldview of P". Delegation between
//! principals is expressed with `A speaksfor B` (optionally scoped with
//! an `on` modifier). Because the logic is constructive, proofs carry an
//! audit trail: every conclusion can be traced back to the credentials
//! (labels) and tautologies it was derived from, and no classical
//! shortcuts (double-negation elimination, excluded middle) are
//! admitted.
//!
//! The crate provides:
//!
//! * [`Principal`], [`Term`], [`Formula`] — the abstract syntax,
//! * [`parse`] / `Formula::to_string` — a round-trippable concrete
//!   syntax used by the `say` system call,
//! * [`Proof`] — explicit derivation trees,
//! * [`check`](check::check) — a linear-time proof checker (guards run
//!   this; proof *search* is undecidable and therefore the client's
//!   job),
//! * [`search`](search::prove) — a bounded backward-chaining prover that
//!   clients use to assemble proofs from their credentials; its
//!   [`ProofSearch`] session form memoizes proved/refuted subgoals so
//!   coalesced batches share one search frontier,
//! * [`Worldview`] — a semantic model used to
//!   cross-validate the checker in tests.
//!
//! ## Concrete syntax
//!
//! ```text
//! formula  := implies
//! implies  := or ( ("->" | "=>" | "implies") implies )?
//! or       := and ( ("or" | "∨") and )*
//! and      := says ( ("and" | "∧") says )*
//! says     := principal "says" says
//!           | principal "speaksfor" principal ( "on" ident+ )?
//!           | ("not" | "¬") says
//!           | atom
//! atom     := "(" formula ")" | "true" | "false"
//!           | ident "(" term,* ")" | ident
//!           | term cmpop term
//! principal:= base ( "." component )*        base, component := ident | path | $var
//! term     := int | "string" | ident | path | $var | ident "(" term,* ")"
//! ```
//!
//! Examples straight from the paper all parse:
//!
//! ```
//! use nexus_nal::parse;
//! parse("TypeChecker says isTypeSafe(PGM)").unwrap();
//! parse("Nexus says /proc/ipd/30 speaksfor IPCAnalyzer").unwrap();
//! parse("/proc/ipd/30 says not hasPath(/proc/ipd/12, Filesystem)").unwrap();
//! parse("Server says NTP speaksfor Server on TimeNow").unwrap();
//! parse("NTP says TimeNow < 20110319").unwrap();
//! parse("A says Valid(S) -> S").unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod error;
pub mod formula;
pub mod lexer;
pub mod parser;
pub mod principal;
pub mod proof;
pub mod search;
pub mod subst;
pub mod term;
pub mod worldview;

pub use check::{check, check_with_hypotheses, normalize, Assumptions};
pub use error::{CheckError, ParseError};
pub use formula::{CmpOp, Formula};
pub use parser::{parse, parse_principal, parse_term};
pub use principal::Principal;
pub use proof::Proof;
pub use search::{
    credential_fingerprint, prove, BatchGoal, ProofSearch, ProveOutcome, ProverConfig, SearchStats,
};
pub use subst::Subst;
pub use term::Term;
pub use worldview::Worldview;
