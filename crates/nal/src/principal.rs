//! Principals: the entities to which NAL attributes beliefs.
//!
//! A principal is an atomic name (`NTP`, `/proc/ipd/12`), a key
//! (`key:ab12…`), a goal-formula variable (`$X`, instantiated by the
//! guard at evaluation time), or a *subprincipal* `A.τ` of another
//! principal. By definition `A speaksfor A.τ`: the parent can always
//! speak for entities it implements (§2.1 of the paper — processes are
//! subprincipals of the kernel, the kernel of the hardware platform).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A NAL principal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Principal {
    /// Atomic named principal, e.g. `NTP`, `Alice`, `/proc/ipd/12`.
    Name(String),
    /// Key-identified principal (hex digest of a public key).
    Key(String),
    /// Goal-formula variable, instantiated by the guard (`$X`).
    Var(String),
    /// Subprincipal `parent.component`, e.g. `Nexus.process23` or
    /// `FS./dir/file`.
    Sub(Box<Principal>, String),
}

impl Principal {
    /// Atomic named principal.
    pub fn name(n: impl Into<String>) -> Self {
        Principal::Name(n.into())
    }

    /// Key-identified principal from a hex string.
    pub fn key(hex: impl Into<String>) -> Self {
        Principal::Key(hex.into())
    }

    /// Goal variable (`$X`).
    pub fn var(v: impl Into<String>) -> Self {
        Principal::Var(v.into())
    }

    /// The subprincipal `self.component`.
    pub fn sub(&self, component: impl Into<String>) -> Self {
        Principal::Sub(Box::new(self.clone()), component.into())
    }

    /// True if `self` is an ancestor (proper prefix) of `other` in the
    /// subprincipal hierarchy; i.e. `self speaksfor other` holds
    /// axiomatically.
    pub fn is_ancestor_of(&self, other: &Principal) -> bool {
        let mut cur = other;
        while let Principal::Sub(parent, _) = cur {
            if parent.as_ref() == self {
                return true;
            }
            cur = parent;
        }
        false
    }

    /// The root of the subprincipal chain (`HW` for `HW.kernel.p23`).
    pub fn root(&self) -> &Principal {
        match self {
            Principal::Sub(parent, _) => parent.root(),
            other => other,
        }
    }

    /// Chain of components from the root, e.g. `["kernel", "p23"]`.
    pub fn components(&self) -> Vec<&str> {
        let mut out = Vec::new();
        let mut cur = self;
        while let Principal::Sub(parent, c) = cur {
            out.push(c.as_str());
            cur = parent;
        }
        out.reverse();
        out
    }

    /// Depth of the subprincipal chain (0 for atomic principals).
    pub fn depth(&self) -> usize {
        match self {
            Principal::Sub(parent, _) => 1 + parent.depth(),
            _ => 0,
        }
    }

    /// True if this principal (or any ancestor) is a variable, meaning
    /// it must be instantiated before the formula is checkable.
    pub fn has_var(&self) -> bool {
        match self {
            Principal::Var(_) => true,
            Principal::Sub(parent, _) => parent.has_var(),
            _ => false,
        }
    }

    /// Collect variable names into `out`.
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Principal::Var(v) => out.push(v.clone()),
            Principal::Sub(parent, _) => parent.collect_vars(out),
            _ => {}
        }
    }
}

impl fmt::Display for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Principal::Name(n) => write!(f, "{n}"),
            Principal::Key(k) => write!(f, "key:{k}"),
            Principal::Var(v) => write!(f, "${v}"),
            Principal::Sub(parent, c) => write!(f, "{parent}.{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subprincipal_chain() {
        let hw = Principal::name("HW");
        let kernel = hw.sub("kernel");
        let p23 = kernel.sub("process23");
        assert_eq!(p23.to_string(), "HW.kernel.process23");
        assert_eq!(p23.root(), &hw);
        assert_eq!(p23.components(), vec!["kernel", "process23"]);
        assert_eq!(p23.depth(), 2);
    }

    #[test]
    fn ancestor_relation() {
        let hw = Principal::name("HW");
        let kernel = hw.sub("kernel");
        let p23 = kernel.sub("process23");
        assert!(hw.is_ancestor_of(&kernel));
        assert!(hw.is_ancestor_of(&p23));
        assert!(kernel.is_ancestor_of(&p23));
        assert!(!p23.is_ancestor_of(&kernel));
        assert!(!kernel.is_ancestor_of(&kernel), "not a proper prefix");
        let other = Principal::name("Other");
        assert!(!other.is_ancestor_of(&p23));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Principal::name("/proc/ipd/12").to_string(), "/proc/ipd/12");
        assert_eq!(Principal::key("ab12").to_string(), "key:ab12");
        assert_eq!(Principal::var("X").to_string(), "$X");
        let fs_file = Principal::name("FS").sub("/dir/file");
        assert_eq!(fs_file.to_string(), "FS./dir/file");
    }

    #[test]
    fn var_detection() {
        let p = Principal::var("X").sub("child");
        assert!(p.has_var());
        let mut vars = Vec::new();
        p.collect_vars(&mut vars);
        assert_eq!(vars, vec!["X"]);
        assert!(!Principal::name("A").has_var());
    }

    #[test]
    fn ordering_is_stable() {
        // Ord is required for canonical serialization of credential sets.
        let mut v = [
            Principal::name("B"),
            Principal::name("A"),
            Principal::name("A").sub("x"),
        ];
        v.sort();
        assert_eq!(v[0], Principal::name("A"));
    }
}
