//! The proof checker.
//!
//! Checking is the guard's half of the authorization bargain: clients
//! construct proofs (undecidable in general), guards check them in time
//! linear in proof size. The checker walks the derivation bottom-up,
//! computing each node's conclusion and validating side conditions.
//!
//! Constructivity: there is no rule that eliminates double negation or
//! asserts excluded middle. `Not(p)` and `Implies(p, False)` are
//! identified by normalization, so either spelling works in premises.

use crate::error::CheckError;
use crate::formula::Formula;
use crate::proof::Proof;
use crate::term::Term;
use std::collections::BTreeSet;
use std::collections::HashSet;

/// Maximum proof size accepted by [`check`]. Guards must bound work
/// done on behalf of unauthenticated clients; 1 MiB-scale proofs are
/// far beyond anything practical (the paper: "all practical proofs …
/// involve less than 15 steps").
pub const MAX_PROOF_NODES: usize = 1 << 20;

/// Rewrite `Not(p)` into `Implies(p, False)` recursively, giving every
/// formula a canonical constructive form.
pub fn normalize(f: &Formula) -> Formula {
    match f {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Pred(name, args) => {
            Formula::Pred(name.clone(), args.iter().map(Term::canon).collect())
        }
        Formula::Cmp(op, a, b) => Formula::Cmp(*op, a.canon(), b.canon()),
        Formula::SpeaksFor { .. } => f.clone(),
        Formula::Says(p, s) => Formula::Says(p.clone(), Box::new(normalize(s))),
        Formula::And(a, b) => Formula::And(Box::new(normalize(a)), Box::new(normalize(b))),
        Formula::Or(a, b) => Formula::Or(Box::new(normalize(a)), Box::new(normalize(b))),
        Formula::Implies(a, b) => Formula::Implies(Box::new(normalize(a)), Box::new(normalize(b))),
        Formula::Not(a) => Formula::Implies(Box::new(normalize(a)), Box::new(Formula::False)),
    }
}

/// The set of statements a guard accepts as proof leaves: the supplied
/// credentials (labels) plus any authority-validated statements.
#[derive(Debug, Clone, Default)]
pub struct Assumptions {
    normalized: HashSet<Formula>,
}

impl Assumptions {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of formulas. (Deliberately an inherent
    /// method, not `FromIterator`: callers pass `&Formula`s and get
    /// normalized admission, which `collect()` would obscure.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<'a, I: IntoIterator<Item = &'a Formula>>(it: I) -> Self {
        let mut a = Self::new();
        for f in it {
            a.insert(f);
        }
        a
    }

    /// Admit `f` as a valid leaf.
    pub fn insert(&mut self, f: &Formula) {
        self.normalized.insert(normalize(f));
    }

    /// True if `f` (modulo ¬-normalization) is an admitted leaf.
    pub fn contains(&self, f: &Formula) -> bool {
        self.normalized.contains(&normalize(f))
    }

    /// Number of admitted statements.
    pub fn len(&self) -> usize {
        self.normalized.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.normalized.is_empty()
    }
}

/// Check `proof` against `assumptions`; on success return the proved
/// formula (the conclusion at the root).
// `CheckError` embeds the offending formulas for auditability; the
// error path is cold (denials clone once), so the large variant is a
// deliberate trade.
#[allow(clippy::result_large_err)]
pub fn check(proof: &Proof, assumptions: &Assumptions) -> Result<Formula, CheckError> {
    check_with_hypotheses(proof, assumptions, &mut Vec::new())
}

/// Check a proof in a context of already-introduced hypotheses. Guards
/// use the plain [`check`]; this entry point exists for checking proof
/// fragments (lemmas) inside the guard cache.
#[allow(clippy::result_large_err)]
pub fn check_with_hypotheses(
    proof: &Proof,
    assumptions: &Assumptions,
    hypotheses: &mut Vec<Formula>,
) -> Result<Formula, CheckError> {
    let n = proof.size();
    if n > MAX_PROOF_NODES {
        return Err(CheckError::TooLarge(n));
    }
    chk(proof, assumptions, hypotheses)
}

#[allow(clippy::result_large_err)]
fn require_ground(f: &Formula) -> Result<(), CheckError> {
    if f.is_ground() {
        Ok(())
    } else {
        Err(CheckError::NonGround(f.clone()))
    }
}

fn mismatch(rule: &'static str, detail: impl Into<String>) -> CheckError {
    CheckError::RuleMismatch {
        rule,
        detail: detail.into(),
    }
}

#[allow(clippy::result_large_err)]
fn chk(proof: &Proof, asm: &Assumptions, hypos: &mut Vec<Formula>) -> Result<Formula, CheckError> {
    match proof {
        Proof::Assume(f) => {
            require_ground(f)?;
            if asm.contains(f) {
                Ok(f.clone())
            } else {
                Err(CheckError::UnknownAssumption(f.clone()))
            }
        }
        Proof::Hypo(f) => {
            let nf = normalize(f);
            if hypos.contains(&nf) {
                Ok(f.clone())
            } else {
                Err(CheckError::UndischargedHypothesis(f.clone()))
            }
        }
        Proof::TrueIntro => Ok(Formula::True),
        Proof::AndIntro(a, b) => {
            let ca = chk(a, asm, hypos)?;
            let cb = chk(b, asm, hypos)?;
            Ok(ca.and(cb))
        }
        Proof::AndElimL(p) => match chk(p, asm, hypos)? {
            Formula::And(a, _) => Ok(*a),
            other => Err(mismatch("and-elim-left", format!("premise is {other}"))),
        },
        Proof::AndElimR(p) => match chk(p, asm, hypos)? {
            Formula::And(_, b) => Ok(*b),
            other => Err(mismatch("and-elim-right", format!("premise is {other}"))),
        },
        Proof::OrIntroL(p, other) => {
            require_ground(other)?;
            let c = chk(p, asm, hypos)?;
            Ok(c.or(other.clone()))
        }
        Proof::OrIntroR(other, p) => {
            require_ground(other)?;
            let c = chk(p, asm, hypos)?;
            Ok(other.clone().or(c))
        }
        Proof::OrElim {
            disj,
            left_hypo,
            left,
            right_hypo,
            right,
        } => {
            let d = chk(disj, asm, hypos)?;
            let (da, db) = match d {
                Formula::Or(a, b) => (*a, *b),
                other => {
                    return Err(mismatch(
                        "or-elim",
                        format!("premise is {other}, not a disjunction"),
                    ))
                }
            };
            if normalize(left_hypo) != normalize(&da) {
                return Err(mismatch(
                    "or-elim",
                    format!("left hypothesis {left_hypo} does not match disjunct {da}"),
                ));
            }
            if normalize(right_hypo) != normalize(&db) {
                return Err(mismatch(
                    "or-elim",
                    format!("right hypothesis {right_hypo} does not match disjunct {db}"),
                ));
            }
            hypos.push(normalize(left_hypo));
            let cl = chk(left, asm, hypos);
            hypos.pop();
            let cl = cl?;
            hypos.push(normalize(right_hypo));
            let cr = chk(right, asm, hypos);
            hypos.pop();
            let cr = cr?;
            if normalize(&cl) != normalize(&cr) {
                return Err(mismatch(
                    "or-elim",
                    format!("branches prove different goals: {cl} vs {cr}"),
                ));
            }
            Ok(cl)
        }
        Proof::ImpliesIntro { hypo, body } => {
            require_ground(hypo)?;
            hypos.push(normalize(hypo));
            let c = chk(body, asm, hypos);
            hypos.pop();
            Ok(hypo.clone().implies(c?))
        }
        Proof::NotIntro { hypo, body } => {
            require_ground(hypo)?;
            hypos.push(normalize(hypo));
            let c = chk(body, asm, hypos);
            hypos.pop();
            match normalize(&c?) {
                Formula::False => Ok(hypo.clone().not()),
                other => Err(mismatch(
                    "not-intro",
                    format!("body proves {other}, not false"),
                )),
            }
        }
        Proof::ImpliesElim(pf, pa) => {
            let f = chk(pf, asm, hypos)?;
            let a = chk(pa, asm, hypos)?;
            match normalize(&f) {
                Formula::Implies(want, concl) => {
                    if normalize(&a) == *want {
                        Ok(*concl)
                    } else {
                        Err(mismatch(
                            "implies-elim",
                            format!("argument {a} does not match antecedent {want}"),
                        ))
                    }
                }
                other => Err(mismatch(
                    "implies-elim",
                    format!("premise {other} is not an implication"),
                )),
            }
        }
        Proof::FalseElim(p, goal) => {
            require_ground(goal)?;
            match normalize(&chk(p, asm, hypos)?) {
                Formula::False => Ok(goal.clone()),
                other => Err(mismatch(
                    "false-elim",
                    format!("premise is {other}, not false"),
                )),
            }
        }
        Proof::DoubleNegIntro(p) => {
            let c = chk(p, asm, hypos)?;
            Ok(c.not().not())
        }
        Proof::CmpEval(op, a, b) => {
            let f = Formula::Cmp(*op, a.clone(), b.clone());
            let holds = match (a, b) {
                (Term::Int(x), Term::Int(y)) => op.eval(x, y),
                (Term::Str(x), Term::Str(y)) => op.eval(x, y),
                _ => return Err(CheckError::NotEvaluable(f)),
            };
            if holds {
                Ok(f)
            } else {
                Err(mismatch("cmp-eval", format!("{f} is false")))
            }
        }
        Proof::SaysIntro(p, body) => {
            if p.has_var() {
                return Err(CheckError::NonGround(Formula::Says(
                    p.clone(),
                    Box::new(Formula::True),
                )));
            }
            let c = chk(body, asm, hypos)?;
            Ok(c.says(p.clone()))
        }
        Proof::SaysApp(pf, pa) => {
            let f = chk(pf, asm, hypos)?;
            let a = chk(pa, asm, hypos)?;
            let (p1, inner) = match normalize(&f) {
                Formula::Says(p, inner) => (p, *inner),
                other => {
                    return Err(mismatch(
                        "says-app",
                        format!("first premise {other} is not a says"),
                    ))
                }
            };
            let (p2, arg) = match normalize(&a) {
                Formula::Says(p, inner) => (p, *inner),
                other => {
                    return Err(mismatch(
                        "says-app",
                        format!("second premise {other} is not a says"),
                    ))
                }
            };
            if p1 != p2 {
                return Err(mismatch(
                    "says-app",
                    format!("premises attributed to different principals: {p1} vs {p2}"),
                ));
            }
            match inner {
                Formula::Implies(want, concl) => {
                    if arg == *want {
                        Ok(Formula::Says(p1, concl))
                    } else {
                        Err(mismatch(
                            "says-app",
                            format!("inner argument {arg} does not match antecedent {want}"),
                        ))
                    }
                }
                other => Err(mismatch(
                    "says-app",
                    format!("inner statement {other} is not an implication"),
                )),
            }
        }
        Proof::SpeaksForElim(psf, psays) => {
            let sf = chk(psf, asm, hypos)?;
            let sy = chk(psays, asm, hypos)?;
            let (from, to, scope) = match sf {
                Formula::SpeaksFor { from, to, scope } => (from, to, scope),
                other => {
                    return Err(mismatch(
                        "speaksfor-elim",
                        format!("first premise {other} is not a speaksfor"),
                    ))
                }
            };
            let (speaker, stmt) = match sy {
                Formula::Says(p, s) => (p, *s),
                other => {
                    return Err(mismatch(
                        "speaksfor-elim",
                        format!("second premise {other} is not a says"),
                    ))
                }
            };
            if speaker != from {
                return Err(mismatch(
                    "speaksfor-elim",
                    format!("speaker {speaker} is not the delegate {from}"),
                ));
            }
            if let Some(scope) = &scope {
                if !stmt.within_scope(scope) {
                    return Err(CheckError::ScopeViolation {
                        statement: stmt,
                        scope: scope.iter().cloned().collect(),
                    });
                }
            }
            Ok(stmt.says(to))
        }
        Proof::SubPrin(p, component) => {
            if p.has_var() {
                return Err(CheckError::NonGround(Formula::speaksfor(
                    p.clone(),
                    p.sub(component.clone()),
                )));
            }
            Ok(Formula::speaksfor(p.clone(), p.sub(component.clone())))
        }
        Proof::SpeaksForRefl(p) => {
            if p.has_var() {
                return Err(CheckError::NonGround(Formula::speaksfor(
                    p.clone(),
                    p.clone(),
                )));
            }
            Ok(Formula::speaksfor(p.clone(), p.clone()))
        }
        Proof::Handoff(p) => {
            let f = chk(p, asm, hypos)?;
            match f {
                Formula::Says(b, inner) => match *inner {
                    Formula::SpeaksFor { from, to, scope } if to == b => {
                        Ok(Formula::SpeaksFor { from, to, scope })
                    }
                    other => Err(mismatch(
                        "handoff",
                        format!("inner statement {other} is not a delegation of the speaker's own authority"),
                    )),
                },
                other => Err(mismatch("handoff", format!("premise {other} is not a says"))),
            }
        }
        Proof::SpeaksForTrans(p1, p2) => {
            let f1 = chk(p1, asm, hypos)?;
            let f2 = chk(p2, asm, hypos)?;
            match (f1, f2) {
                (
                    Formula::SpeaksFor {
                        from: a,
                        to: b1,
                        scope: s1,
                    },
                    Formula::SpeaksFor {
                        from: b2,
                        to: c,
                        scope: s2,
                    },
                ) => {
                    if b1 != b2 {
                        return Err(mismatch(
                            "speaksfor-trans",
                            format!("middle principals differ: {b1} vs {b2}"),
                        ));
                    }
                    let scope: Option<BTreeSet<String>> = match (s1, s2) {
                        (None, None) => None,
                        (Some(s), None) | (None, Some(s)) => Some(s),
                        (Some(s1), Some(s2)) => Some(s1.intersection(&s2).cloned().collect()),
                    };
                    Ok(Formula::SpeaksFor {
                        from: a,
                        to: c,
                        scope,
                    })
                }
                (f1, f2) => Err(mismatch(
                    "speaksfor-trans",
                    format!("premises are not speaksfor: {f1}, {f2}"),
                )),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::principal::Principal;

    fn asm(labels: &[&str]) -> Assumptions {
        let fs: Vec<Formula> = labels.iter().map(|s| parse(s).unwrap()).collect();
        Assumptions::from_iter(fs.iter())
    }

    #[test]
    fn assume_known_and_unknown() {
        let a = asm(&["A says p"]);
        let ok = Proof::assume(parse("A says p").unwrap());
        assert_eq!(check(&ok, &a).unwrap(), parse("A says p").unwrap());
        let bad = Proof::assume(parse("A says q").unwrap());
        assert!(matches!(
            check(&bad, &a),
            Err(CheckError::UnknownAssumption(_))
        ));
    }

    #[test]
    fn and_intro_elim() {
        let a = asm(&["A says p", "B says q"]);
        let pair = Proof::AndIntro(
            Box::new(Proof::assume(parse("A says p").unwrap())),
            Box::new(Proof::assume(parse("B says q").unwrap())),
        );
        let c = check(&pair, &a).unwrap();
        assert_eq!(c, parse("A says p and B says q").unwrap());
        let l = Proof::AndElimL(Box::new(pair.clone()));
        assert_eq!(check(&l, &a).unwrap(), parse("A says p").unwrap());
        let r = Proof::AndElimR(Box::new(pair));
        assert_eq!(check(&r, &a).unwrap(), parse("B says q").unwrap());
    }

    #[test]
    fn modus_ponens() {
        let a = asm(&["p -> q", "p"]);
        let mp = Proof::ImpliesElim(
            Box::new(Proof::assume(parse("p -> q").unwrap())),
            Box::new(Proof::assume(parse("p").unwrap())),
        );
        assert_eq!(check(&mp, &a).unwrap(), parse("q").unwrap());
    }

    #[test]
    fn modus_ponens_with_negation() {
        // ¬p is p → false; ImpliesElim must accept it.
        let a = asm(&["not p", "p"]);
        let mp = Proof::ImpliesElim(
            Box::new(Proof::assume(parse("not p").unwrap())),
            Box::new(Proof::assume(parse("p").unwrap())),
        );
        assert_eq!(normalize(&check(&mp, &a).unwrap()), Formula::False);
    }

    #[test]
    fn implies_intro_discharges_hypothesis() {
        // ⊢ p -> p with no assumptions.
        let p = parse("p").unwrap();
        let proof = Proof::ImpliesIntro {
            hypo: p.clone(),
            body: Box::new(Proof::Hypo(p.clone())),
        };
        assert_eq!(
            check(&proof, &Assumptions::new()).unwrap(),
            parse("p -> p").unwrap()
        );
    }

    #[test]
    fn undischarged_hypothesis_rejected() {
        let p = parse("p").unwrap();
        assert!(matches!(
            check(&Proof::Hypo(p), &Assumptions::new()),
            Err(CheckError::UndischargedHypothesis(_))
        ));
    }

    #[test]
    fn hypothesis_does_not_leak_between_branches() {
        // (p -> p) and then try to use Hypo(p) outside: must fail.
        let p = parse("p").unwrap();
        let inner = Proof::ImpliesIntro {
            hypo: p.clone(),
            body: Box::new(Proof::Hypo(p.clone())),
        };
        let leaky = Proof::AndIntro(Box::new(inner), Box::new(Proof::Hypo(p)));
        assert!(matches!(
            check(&leaky, &Assumptions::new()),
            Err(CheckError::UndischargedHypothesis(_))
        ));
    }

    #[test]
    fn or_elim_case_analysis() {
        let a = asm(&["p or q", "p -> r", "q -> r"]);
        let goal_under = |hypo: &str, imp: &str| {
            Proof::ImpliesElim(
                Box::new(Proof::assume(parse(imp).unwrap())),
                Box::new(Proof::Hypo(parse(hypo).unwrap())),
            )
        };
        let proof = Proof::OrElim {
            disj: Box::new(Proof::assume(parse("p or q").unwrap())),
            left_hypo: parse("p").unwrap(),
            left: Box::new(goal_under("p", "p -> r")),
            right_hypo: parse("q").unwrap(),
            right: Box::new(goal_under("q", "q -> r")),
        };
        assert_eq!(check(&proof, &a).unwrap(), parse("r").unwrap());
    }

    #[test]
    fn or_elim_branch_mismatch_rejected() {
        let a = asm(&["p or q", "p -> r", "q -> s"]);
        let proof = Proof::OrElim {
            disj: Box::new(Proof::assume(parse("p or q").unwrap())),
            left_hypo: parse("p").unwrap(),
            left: Box::new(Proof::ImpliesElim(
                Box::new(Proof::assume(parse("p -> r").unwrap())),
                Box::new(Proof::Hypo(parse("p").unwrap())),
            )),
            right_hypo: parse("q").unwrap(),
            right: Box::new(Proof::ImpliesElim(
                Box::new(Proof::assume(parse("q -> s").unwrap())),
                Box::new(Proof::Hypo(parse("q").unwrap())),
            )),
        };
        assert!(check(&proof, &a).is_err());
    }

    #[test]
    fn no_double_negation_elimination() {
        // From ¬¬p there is no rule to conclude p. The only candidate
        // eliminations require implications with matching arguments.
        let a = asm(&["not not p"]);
        // ImpliesElim(¬¬p, ?) needs a proof of ¬p, which we don't have.
        let attempt = Proof::ImpliesElim(
            Box::new(Proof::assume(parse("not not p").unwrap())),
            Box::new(Proof::assume(parse("p").unwrap())),
        );
        assert!(check(&attempt, &a).is_err());
    }

    #[test]
    fn double_negation_introduction() {
        let a = asm(&["p"]);
        let proof = Proof::DoubleNegIntro(Box::new(Proof::assume(parse("p").unwrap())));
        assert_eq!(check(&proof, &a).unwrap(), parse("not not p").unwrap());
    }

    #[test]
    fn cmp_eval_ints_and_strings() {
        let t = Proof::CmpEval(crate::formula::CmpOp::Lt, Term::int(5), Term::int(7));
        assert!(check(&t, &Assumptions::new()).is_ok());
        let f = Proof::CmpEval(crate::formula::CmpOp::Gt, Term::int(5), Term::int(7));
        assert!(check(&f, &Assumptions::new()).is_err());
        let s = Proof::CmpEval(
            crate::formula::CmpOp::Eq,
            Term::str("alice"),
            Term::str("alice"),
        );
        assert!(check(&s, &Assumptions::new()).is_ok());
        // Symbols are not evaluable.
        let sym = Proof::CmpEval(
            crate::formula::CmpOp::Lt,
            Term::sym("TimeNow"),
            Term::int(7),
        );
        assert!(matches!(
            check(&sym, &Assumptions::new()),
            Err(CheckError::NotEvaluable(_))
        ));
    }

    #[test]
    fn says_intro_unit() {
        let a = asm(&["p"]);
        let proof = Proof::SaysIntro(
            Principal::name("A"),
            Box::new(Proof::assume(parse("p").unwrap())),
        );
        assert_eq!(check(&proof, &a).unwrap(), parse("A says p").unwrap());
    }

    #[test]
    fn says_app_distributes() {
        let a = asm(&["A says (p -> q)", "A says p"]);
        let proof = Proof::SaysApp(
            Box::new(Proof::assume(parse("A says (p -> q)").unwrap())),
            Box::new(Proof::assume(parse("A says p").unwrap())),
        );
        assert_eq!(check(&proof, &a).unwrap(), parse("A says q").unwrap());
    }

    #[test]
    fn says_app_rejects_cross_principal() {
        let a = asm(&["A says (p -> q)", "B says p"]);
        let proof = Proof::SaysApp(
            Box::new(Proof::assume(parse("A says (p -> q)").unwrap())),
            Box::new(Proof::assume(parse("B says p").unwrap())),
        );
        assert!(check(&proof, &a).is_err());
    }

    #[test]
    fn locality_of_false() {
        // A says false lets us derive A says G (ex falso inside the
        // modality) but not B says G.
        let a = asm(&["A says false"]);
        // false -> g is a tautology:
        let taut = Proof::ImpliesIntro {
            hypo: Formula::False,
            body: Box::new(Proof::FalseElim(
                Box::new(Proof::Hypo(Formula::False)),
                parse("g").unwrap(),
            )),
        };
        // Lift into A's worldview and apply.
        let lifted = Proof::SaysIntro(Principal::name("A"), Box::new(taut));
        let proof = Proof::SaysApp(
            Box::new(lifted),
            Box::new(Proof::assume(parse("A says false").unwrap())),
        );
        assert_eq!(check(&proof, &a).unwrap(), parse("A says g").unwrap());
        // There is no derivation of "B says g": the only credential
        // speaks about A, and says-intro would need ⊢ g itself.
        let b_attempt = Proof::assume(parse("B says g").unwrap());
        assert!(check(&b_attempt, &a).is_err());
    }

    #[test]
    fn speaksfor_elim_basic() {
        let a = asm(&["A speaksfor B", "A says p"]);
        let proof = Proof::SpeaksForElim(
            Box::new(Proof::assume(parse("A speaksfor B").unwrap())),
            Box::new(Proof::assume(parse("A says p").unwrap())),
        );
        assert_eq!(check(&proof, &a).unwrap(), parse("B says p").unwrap());
    }

    #[test]
    fn scoped_delegation_enforced() {
        let a = asm(&[
            "NTP speaksfor Server on TimeNow",
            "NTP says TimeNow < 20110319",
            "NTP says isTypeSafe(PGM)",
        ]);
        let ok = Proof::SpeaksForElim(
            Box::new(Proof::assume(
                parse("NTP speaksfor Server on TimeNow").unwrap(),
            )),
            Box::new(Proof::assume(parse("NTP says TimeNow < 20110319").unwrap())),
        );
        assert_eq!(
            check(&ok, &a).unwrap(),
            parse("Server says TimeNow < 20110319").unwrap()
        );
        // Out-of-scope statement must be rejected.
        let bad = Proof::SpeaksForElim(
            Box::new(Proof::assume(
                parse("NTP speaksfor Server on TimeNow").unwrap(),
            )),
            Box::new(Proof::assume(parse("NTP says isTypeSafe(PGM)").unwrap())),
        );
        assert!(matches!(
            check(&bad, &a),
            Err(CheckError::ScopeViolation { .. })
        ));
    }

    #[test]
    fn subprincipal_axiom() {
        let kernel = Principal::name("NK");
        let proof = Proof::SubPrin(kernel.clone(), "process23".into());
        let c = check(&proof, &Assumptions::new()).unwrap();
        assert_eq!(
            c,
            Formula::speaksfor(kernel.clone(), kernel.sub("process23"))
        );
    }

    #[test]
    fn speaksfor_transitivity_with_scopes() {
        let a = asm(&[
            "A speaksfor B on TimeNow TimeZone",
            "B speaksfor C on TimeNow",
        ]);
        let proof = Proof::SpeaksForTrans(
            Box::new(Proof::assume(
                parse("A speaksfor B on TimeNow TimeZone").unwrap(),
            )),
            Box::new(Proof::assume(parse("B speaksfor C on TimeNow").unwrap())),
        );
        let c = check(&proof, &a).unwrap();
        match c {
            Formula::SpeaksFor { scope: Some(s), .. } => {
                assert_eq!(s.len(), 1);
                assert!(s.contains("TimeNow"));
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn chained_delegation_through_subprincipal() {
        // Kernel speaks for its process; process says p; kernel-level
        // statement follows… direction check: SubPrin gives
        // NK speaksfor NK.p23, so NK's statements transfer to NK.p23's
        // worldview, not vice versa.
        let a = asm(&["NK says p"]);
        let proof = Proof::SpeaksForElim(
            Box::new(Proof::SubPrin(Principal::name("NK"), "p23".into())),
            Box::new(Proof::assume(parse("NK says p").unwrap())),
        );
        assert_eq!(check(&proof, &a).unwrap(), parse("NK.p23 says p").unwrap());
    }

    #[test]
    fn non_ground_proofs_rejected() {
        let bad = Proof::assume(parse("$X says p").unwrap());
        assert!(matches!(
            check(&bad, &Assumptions::new()),
            Err(CheckError::NonGround(_))
        ));
    }

    #[test]
    fn time_sensitive_file_proof_from_paper() {
        // Goal: Owner says TimeNow < Mar19 (dates as ints).
        // Credentials: Owner's delegation to NTP scoped to TimeNow, and
        // NTP's statement.
        let a = asm(&[
            "NTP speaksfor Owner on TimeNow",
            "NTP says TimeNow < 20110319",
        ]);
        let proof = Proof::SpeaksForElim(
            Box::new(Proof::assume(
                parse("NTP speaksfor Owner on TimeNow").unwrap(),
            )),
            Box::new(Proof::assume(parse("NTP says TimeNow < 20110319").unwrap())),
        );
        assert_eq!(
            check(&proof, &a).unwrap(),
            parse("Owner says TimeNow < 20110319").unwrap()
        );
    }

    #[test]
    fn revocation_pattern_from_paper() {
        // A says (Valid(S) -> S); authority vouches A says Valid(S);
        // conclude A says S. (§2.7)
        let a = asm(&["A says (Valid(S) -> S)", "A says Valid(S)"]);
        let proof = Proof::SaysApp(
            Box::new(Proof::assume(parse("A says (Valid(S) -> S)").unwrap())),
            Box::new(Proof::assume(parse("A says Valid(S)").unwrap())),
        );
        assert_eq!(check(&proof, &a).unwrap(), parse("A says S").unwrap());
    }

    #[test]
    fn proof_too_large_rejected() {
        // Build a proof exceeding the node bound cheaply via repeated
        // DoubleNegIntro — but 2^20 nodes is heavy to build; instead
        // check the bound logic with a reduced-size custom call.
        // Here we simply verify rule_count grows and the checker still
        // handles a deep proof of modest size.
        // Deep proofs recurse; give the checker a roomy stack (debug
        // frames are large). Practical proofs are <15 steps (§5.2).
        std::thread::Builder::new()
            .stack_size(64 << 20)
            .spawn(|| {
                let mut p = Proof::assume(parse("p").unwrap());
                for _ in 0..1000 {
                    p = Proof::DoubleNegIntro(Box::new(p));
                }
                let a = asm(&["p"]);
                assert!(check(&p, &a).is_ok());
            })
            .unwrap()
            .join()
            .unwrap();
    }
}
