//! Worldview semantics.
//!
//! Each NAL principal has a *worldview*: the set of formulas that
//! principal believes (§2.1). `P says S` means "S is in the worldview
//! of P". This module implements a finite model of worldviews used for
//! two purposes:
//!
//! 1. **Cross-validation in tests** — the proof checker and the model
//!    must agree on the simple fragment both cover (soundness spot
//!    check).
//! 2. **Authorities** — an authority process (§2.7) decides, on each
//!    query, whether it currently believes a statement; a `Worldview`
//!    over its live state is a convenient way to implement that.

use crate::check::normalize;
use crate::formula::Formula;
use crate::principal::Principal;
use std::collections::{BTreeSet, HashMap, HashSet};

/// A finite collection of base beliefs, closed under delegation.
#[derive(Debug, Clone, Default)]
pub struct Worldview {
    /// Base statements `P says S`, stored per principal (normalized).
    beliefs: HashMap<Principal, HashSet<Formula>>,
    /// Delegation edges `from speaksfor to [on scope]`.
    delegations: Vec<(Principal, Principal, Option<BTreeSet<String>>)>,
}

impl Worldview {
    /// Empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a base belief `p says s`.
    pub fn believe(&mut self, p: &Principal, s: &Formula) {
        self.beliefs
            .entry(p.clone())
            .or_default()
            .insert(normalize(s));
    }

    /// Record a delegation `from speaksfor to [on scope]`.
    pub fn delegate(&mut self, from: &Principal, to: &Principal, scope: Option<BTreeSet<String>>) {
        self.delegations.push((from.clone(), to.clone(), scope));
    }

    /// Ingest a label: `P says S` becomes a belief; a `speaksfor`
    /// formula becomes a delegation edge; conjunctions are split.
    pub fn ingest(&mut self, label: &Formula) {
        match label {
            Formula::And(a, b) => {
                self.ingest(a);
                self.ingest(b);
            }
            Formula::Says(p, s) => {
                // Handoff: a delegation of the speaker's own authority
                // (or a subprincipal's) takes effect as an edge.
                if let Formula::SpeaksFor { from, to, scope } = s.as_ref() {
                    if p == to || p.is_ancestor_of(to) {
                        self.delegate(from, to, scope.clone());
                    }
                }
                self.believe(p, s)
            }
            Formula::SpeaksFor { from, to, scope } => self.delegate(from, to, scope.clone()),
            _ => {}
        }
    }

    /// Does `p`'s worldview contain `s`? Considers base beliefs, the
    /// delegation closure (including the subprincipal axiom), and
    /// splits conjunctions.
    pub fn holds(&self, p: &Principal, s: &Formula) -> bool {
        if let Formula::And(a, b) = s {
            return self.holds(p, a) && self.holds(p, b);
        }
        let ns = normalize(s);
        // Which principals' statements flow into p's worldview?
        let sources = self.speakers_for(p, &ns);
        for q in sources {
            if let Some(set) = self.beliefs.get(&q) {
                if set.contains(&ns) {
                    return true;
                }
            }
        }
        false
    }

    /// All principals Q such that `Q speaksfor p` holds for statements
    /// shaped like `stmt` (via delegation credentials and the
    /// subprincipal axiom), including `p` itself.
    fn speakers_for(&self, p: &Principal, stmt: &Formula) -> HashSet<Principal> {
        let mut out: HashSet<Principal> = HashSet::new();
        let mut frontier = vec![p.clone()];
        out.insert(p.clone());
        // Ancestors speak for p (subprincipal axiom).
        let mut cur = p.clone();
        while let Principal::Sub(parent, _) = &cur {
            let parent = parent.as_ref().clone();
            if out.insert(parent.clone()) {
                frontier.push(parent.clone());
            }
            cur = parent;
        }
        // Reverse-closure over delegation edges.
        while let Some(target) = frontier.pop() {
            for (from, to, scope) in &self.delegations {
                if to == &target {
                    let covered = match scope {
                        None => true,
                        Some(s) => stmt.within_scope(s),
                    };
                    if covered && out.insert(from.clone()) {
                        frontier.push(from.clone());
                        // Ancestors of `from` speak for `from` too.
                        let mut cur = from.clone();
                        while let Principal::Sub(parent, _) = &cur {
                            let parent = parent.as_ref().clone();
                            if out.insert(parent.clone()) {
                                frontier.push(parent.clone());
                            }
                            cur = parent;
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::search::{prove, ProverConfig};

    fn p(n: &str) -> Principal {
        Principal::name(n)
    }

    #[test]
    fn base_beliefs() {
        let mut w = Worldview::new();
        w.ingest(&parse("A says p").unwrap());
        assert!(w.holds(&p("A"), &parse("p").unwrap()));
        assert!(!w.holds(&p("B"), &parse("p").unwrap()));
    }

    #[test]
    fn delegation_closure() {
        let mut w = Worldview::new();
        w.ingest(&parse("A speaksfor B").unwrap());
        w.ingest(&parse("B speaksfor C").unwrap());
        w.ingest(&parse("A says p").unwrap());
        assert!(w.holds(&p("B"), &parse("p").unwrap()));
        assert!(w.holds(&p("C"), &parse("p").unwrap()));
        assert!(!w.holds(&p("A"), &parse("q").unwrap()));
    }

    #[test]
    fn scoped_delegation_in_model() {
        let mut w = Worldview::new();
        w.ingest(&parse("NTP speaksfor Owner on TimeNow").unwrap());
        w.ingest(&parse("NTP says TimeNow < 20110319").unwrap());
        w.ingest(&parse("NTP says isTypeSafe(PGM)").unwrap());
        assert!(w.holds(&p("Owner"), &parse("TimeNow < 20110319").unwrap()));
        assert!(!w.holds(&p("Owner"), &parse("isTypeSafe(PGM)").unwrap()));
    }

    #[test]
    fn subprincipal_axiom_in_model() {
        let mut w = Worldview::new();
        w.ingest(&parse("NK says p").unwrap());
        let p23 = p("NK").sub("p23");
        assert!(w.holds(&p23, &parse("p").unwrap()));
        // But not the other way.
        let mut w2 = Worldview::new();
        w2.ingest(&parse("NK.p23 says p").unwrap());
        assert!(!w2.holds(&p("NK"), &parse("p").unwrap()));
    }

    #[test]
    fn conjunction_split() {
        let mut w = Worldview::new();
        w.ingest(&parse("A says p and A says q").unwrap());
        assert!(w.holds(&p("A"), &parse("p").unwrap()));
        assert!(w.holds(&p("A"), &parse("q").unwrap()));
    }

    #[test]
    fn model_agrees_with_prover_on_delegation_fragment() {
        // For a family of delegation scenarios, the prover finds a
        // proof exactly when the model says the statement holds.
        let scenarios: Vec<(Vec<&str>, &str, &str, bool)> = vec![
            (vec!["A says p"], "A", "p", true),
            (vec!["A says p"], "B", "p", false),
            (vec!["A speaksfor B", "A says p"], "B", "p", true),
            (vec!["B speaksfor A", "A says p"], "B", "p", false),
            (
                vec!["A speaksfor B", "B speaksfor C", "A says p"],
                "C",
                "p",
                true,
            ),
            (
                vec!["NTP speaksfor O on TimeNow", "NTP says TimeNow < 5"],
                "O",
                "TimeNow < 5",
                true,
            ),
            (
                vec!["NTP speaksfor O on TimeNow", "NTP says other(x)"],
                "O",
                "other(x)",
                false,
            ),
        ];
        for (labels, speaker, stmt, expected) in scenarios {
            let mut w = Worldview::new();
            let creds: Vec<Formula> = labels.iter().map(|l| parse(l).unwrap()).collect();
            for c in &creds {
                w.ingest(c);
            }
            let goal = parse(&format!("{speaker} says {stmt}")).unwrap();
            let model = w.holds(&p(speaker), &parse(stmt).unwrap());
            let proof = prove(&goal, &creds, ProverConfig::default()).is_some();
            assert_eq!(model, expected, "model mismatch for {labels:?} ⊢ {goal}");
            assert_eq!(proof, expected, "prover mismatch for {labels:?} ⊢ {goal}");
        }
    }
}
