//! Substitution of goal variables.
//!
//! Goal formulas contain variables (the paper's calligraphic
//! identifiers, written `$X` here) that the guard instantiates at
//! evaluation time with the access-control subject, operation, object,
//! or other request parameters.

use crate::formula::Formula;
use crate::principal::Principal;
use crate::term::Term;
use std::collections::BTreeMap;

/// A mapping from variable names to terms. Variables in principal
/// position require the replacement to be (convertible to) a
/// principal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Subst {
    map: BTreeMap<String, Term>,
}

impl Subst {
    /// Empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `var` to a term.
    pub fn bind(mut self, var: impl Into<String>, t: impl Into<Term>) -> Self {
        self.map.insert(var.into(), t.into());
        self
    }

    /// Bind `var` to a principal.
    pub fn bind_principal(self, var: impl Into<String>, p: Principal) -> Self {
        self.bind(var, Term::Prin(p))
    }

    /// Look up a variable.
    pub fn get(&self, var: &str) -> Option<&Term> {
        self.map.get(var)
    }

    /// Look up a variable, coercing to a principal when possible:
    /// a `Term::Prin` yields its principal, a symbol yields a named
    /// principal.
    pub fn get_principal(&self, var: &str) -> Option<Principal> {
        match self.map.get(var)? {
            Term::Prin(p) => Some(p.clone()),
            Term::Sym(s) | Term::Str(s) => Some(Principal::Name(s.clone())),
            _ => None,
        }
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no bindings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Apply to a term.
    pub fn apply_term(&self, t: &Term) -> Term {
        match t {
            Term::Var(v) => self.map.get(v).cloned().unwrap_or_else(|| t.clone()),
            Term::Prin(p) => Term::Prin(self.apply_principal(p)),
            Term::App(f, args) => {
                Term::App(f.clone(), args.iter().map(|a| self.apply_term(a)).collect())
            }
            other => other.clone(),
        }
    }

    /// Apply to a principal. A variable bound to a non-principal term
    /// is left in place (the formula stays non-ground and the checker
    /// will reject it, which is the safe failure mode).
    pub fn apply_principal(&self, p: &Principal) -> Principal {
        match p {
            Principal::Var(v) => self.get_principal(v).unwrap_or_else(|| p.clone()),
            Principal::Sub(parent, c) => {
                Principal::Sub(Box::new(self.apply_principal(parent)), c.clone())
            }
            other => other.clone(),
        }
    }

    /// Apply to a formula.
    pub fn apply(&self, f: &Formula) -> Formula {
        match f {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Pred(name, args) => Formula::Pred(
                name.clone(),
                args.iter().map(|a| self.apply_term(a)).collect(),
            ),
            Formula::Cmp(op, a, b) => Formula::Cmp(*op, self.apply_term(a), self.apply_term(b)),
            Formula::Says(p, s) => Formula::Says(self.apply_principal(p), Box::new(self.apply(s))),
            Formula::SpeaksFor { from, to, scope } => Formula::SpeaksFor {
                from: self.apply_principal(from),
                to: self.apply_principal(to),
                scope: scope.clone(),
            },
            Formula::And(a, b) => Formula::And(Box::new(self.apply(a)), Box::new(self.apply(b))),
            Formula::Or(a, b) => Formula::Or(Box::new(self.apply(a)), Box::new(self.apply(b))),
            Formula::Implies(a, b) => {
                Formula::Implies(Box::new(self.apply(a)), Box::new(self.apply(b)))
            }
            Formula::Not(a) => Formula::Not(Box::new(self.apply(a))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn substitutes_term_and_principal_vars() {
        let goal = parse("$X says openFile($F) and SafetyCertifier says safe($X)").unwrap();
        let s = Subst::new()
            .bind_principal("X", Principal::name("/proc/ipd/12"))
            .bind("F", Term::str("/secret.txt"));
        let inst = s.apply(&goal);
        assert_eq!(
            inst.to_string(),
            "/proc/ipd/12 says openFile(\"/secret.txt\") and SafetyCertifier says safe(/proc/ipd/12)"
        );
        assert!(inst.is_ground());
    }

    #[test]
    fn unbound_vars_left_in_place() {
        let goal = parse("$X says go").unwrap();
        let inst = Subst::new().apply(&goal);
        assert!(!inst.is_ground());
    }

    #[test]
    fn principal_coercion_from_symbol() {
        let s = Subst::new().bind("X", Term::sym("alice"));
        assert_eq!(s.get_principal("X"), Some(Principal::name("alice")));
        let s2 = Subst::new().bind("X", Term::int(3));
        assert_eq!(s2.get_principal("X"), None);
    }

    #[test]
    fn nested_subprincipal_substitution() {
        let goal = parse("$K.labelstore says ok").unwrap();
        let s = Subst::new().bind_principal("K", Principal::name("NK"));
        assert_eq!(s.apply(&goal).to_string(), "NK.labelstore says ok");
    }
}
