//! Error types for parsing and proof checking.

use crate::formula::Formula;
use std::fmt;

/// Error produced while parsing NAL concrete syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(offset: usize, message: impl Into<String>) -> Self {
        ParseError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Error produced by the proof checker.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckError {
    /// A leaf assumption is not among the supplied credentials.
    UnknownAssumption(Formula),
    /// A hypothesis leaf is not bound by an enclosing introduction rule.
    UndischargedHypothesis(Formula),
    /// A rule was applied to premises of the wrong shape.
    RuleMismatch {
        /// The rule that failed.
        rule: &'static str,
        /// What went wrong.
        detail: String,
    },
    /// A comparison could not be decided by evaluation (non-literal
    /// operands).
    NotEvaluable(Formula),
    /// A scoped delegation was applied to a statement outside its scope.
    ScopeViolation {
        /// The statement that failed the scope check.
        statement: Formula,
        /// The scope identifiers.
        scope: Vec<String>,
    },
    /// The proof contains a goal variable; proofs must be ground.
    NonGround(Formula),
    /// Proof exceeds the checker's configured size bound.
    TooLarge(usize),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::UnknownAssumption(s) => {
                write!(f, "assumption not among supplied credentials: {s}")
            }
            CheckError::UndischargedHypothesis(s) => {
                write!(f, "undischarged hypothesis: {s}")
            }
            CheckError::RuleMismatch { rule, detail } => {
                write!(f, "rule {rule} misapplied: {detail}")
            }
            CheckError::NotEvaluable(s) => write!(f, "comparison not evaluable: {s}"),
            CheckError::ScopeViolation { statement, scope } => {
                write!(
                    f,
                    "statement {statement} outside delegation scope {scope:?}"
                )
            }
            CheckError::NonGround(s) => write!(f, "proof not ground: {s}"),
            CheckError::TooLarge(n) => write!(f, "proof too large: {n} nodes"),
        }
    }
}

impl std::error::Error for CheckError {}
