//! Bounded backward-chaining proof search.
//!
//! Guards only *check* proofs; constructing them is the client's
//! problem (§2.6). This module is the client-side helper: given the
//! labels in hand (plus any statements an authority is expected to
//! vouch for), it searches for a proof of a goal formula.
//!
//! The search is sound (anything it returns passes [`crate::check`](fn@crate::check::check);
//! the tests enforce this) but deliberately incomplete: NAL derivation
//! is undecidable, so the prover bounds recursion depth and explores a
//! practical fragment — conjunctions, disjunctions, implications,
//! negation-as-refutation, literal comparisons, `says` via unit /
//! distribution / delegation chains (including subprincipal axioms and
//! scoped delegation), and `speaksfor` via reflexivity, subprincipal
//! chains, and transitive closure over delegation credentials.
//!
//! ## Sessions and frontier sharing
//!
//! Proof *search* is the expensive, unbounded step — which is exactly
//! why the architecture moves it out of the guard. A [`ProofSearch`]
//! session amortizes it further: the session owns a memo table of
//! proved and refuted subgoals, so a batch of requests with the same
//! (goal, credential) shape — the async pipeline's coalesced batches —
//! derives each shared subgoal once and splices the memoized sub-proof
//! into every request's final [`Proof`]. Sharing can never forge a
//! proof: a memoized derivation is reused only after every one of its
//! credential leaves is re-verified against the *requesting* credential
//! set, and [`ProofSearch::prove`] still validates the assembled proof
//! with the checker before returning it. Refutations are scoped to the
//! exact credential fingerprint that produced them (a different label
//! set gets a fresh search).
//!
//! [`prove`] remains the one-shot entry point: it runs a fresh
//! throwaway session per call.

use crate::check::{normalize, Assumptions};
use crate::formula::Formula;
use crate::principal::Principal;
use crate::proof::Proof;
use crate::term::Term;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// Prover limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProverConfig {
    /// Maximum backward-chaining depth.
    pub max_depth: usize,
    /// Maximum number of subgoals explored per [`ProofSearch::prove`]
    /// call (memo hits count as one subgoal).
    pub max_subgoals: usize,
    /// Maximum number of memoized subgoal entries a session retains;
    /// past the cap the search still runs, it just stops recording
    /// (the memo is soft state).
    pub max_memo: usize,
}

impl Default for ProverConfig {
    fn default() -> Self {
        ProverConfig {
            max_depth: 24,
            max_subgoals: 4096,
            max_memo: 8192,
        }
    }
}

/// Cumulative statistics of a [`ProofSearch`] session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Subgoals answered from the memo table (proof spliced or
    /// refutation trusted) instead of searched.
    pub memo_hits: u64,
    /// Memoizable subgoals that had to be searched.
    pub memo_misses: u64,
    /// Frontier-sharing groups formed by [`ProofSearch::prove_batch`]
    /// (one search per group).
    pub batch_groups: u64,
    /// Batch members beyond the first of their group — requests whose
    /// entire proof was spliced from the group leader's search.
    pub batch_shared: u64,
}

/// One request's (goal, credentials) pair in a prover batch.
#[derive(Debug, Clone, Copy)]
pub struct BatchGoal<'a> {
    /// The already-instantiated goal formula to prove.
    pub goal: &'a Formula,
    /// The credentials (label formulas) this request holds.
    pub credentials: &'a [Formula],
}

/// One request's outcome from an explained prover call: the proof if
/// the search succeeded, otherwise the *refutation witness* — the most
/// specific (deepest-recursion) subgoal the search refuted under the
/// request's credential set, falling back to the normalized goal
/// itself when the failure was a budget artifact with no memoized
/// refutation. The witness is what a denial audit trail reports as
/// "why": the blocking subgoal, not just "no proof".
#[derive(Debug, Clone)]
pub struct ProveOutcome {
    /// The proof, when the bounded search succeeded.
    pub proof: Option<Proof>,
    /// On failure, the refuted subgoal (always `Some` when `proof` is
    /// `None`; always `None` when it is `Some`).
    pub refuted: Option<Formula>,
}

/// A memoized derivation, shareable across credential sets: the proof
/// is spliced into a request only when every recorded leaf is among
/// the *requesting* credentials, so a hit can never smuggle in a
/// credential the requester does not hold.
struct SharedEntry {
    proof: Proof,
    /// The proof's credential leaves, normalized.
    leaves: Vec<Formula>,
}

/// The session-owned memo state shared by every search the session
/// runs.
#[derive(Default)]
struct SessionState {
    /// Proved subgoals keyed by normalized formula.
    shared: HashMap<Formula, SharedEntry>,
    /// Refuted subgoals, keyed by credential-set fingerprint, then
    /// normalized formula, holding the *largest* remaining depth a
    /// search failed with (failure at depth d implies failure at any
    /// depth ≤ d under the same credentials).
    refuted: HashMap<u128, HashMap<Formula, usize>>,
    /// Total memoized entries across both tables (cap accounting).
    entries: usize,
    stats: SearchStats,
}

impl SessionState {
    fn clear(&mut self) {
        self.shared.clear();
        self.refuted.clear();
        self.entries = 0;
    }
}

/// A proof-search session: one prover instance whose memo table of
/// proved/refuted subgoals persists across [`ProofSearch::prove`] and
/// [`ProofSearch::prove_batch`] calls, so identical subgoal
/// derivations across a coalesced batch (or across consecutive
/// batches) are computed once.
///
/// The memo is **soft state**: [`ProofSearch::flush`] drops it without
/// affecting correctness. Holders that cache a session across
/// credential *movement* (labels revoked or transferred away) must
/// flush it — reuse is already fingerprint/leaf-guarded, but the flush
/// keeps the table from serving an epoch that no longer exists (see
/// `Guard::prove_batch` in `nexus-core`, which flushes exactly like
/// the kernel decision cache invalidates).
///
/// ```
/// use nexus_nal::{parse, ProofSearch, ProverConfig};
///
/// let creds = vec![
///     parse("Owner speaksfor FileServer").unwrap(),
///     parse("Owner says ok").unwrap(),
/// ];
/// let goal = parse("FileServer says ok").unwrap();
///
/// let mut search = ProofSearch::new(ProverConfig::default());
/// let proof = search.prove(&goal, &creds).expect("delegation chain proves the goal");
/// assert!(!proof.leaves().is_empty());
///
/// // The session memoized the derivation: proving the same goal
/// // again splices the stored sub-proof instead of re-searching.
/// search.prove(&goal, &creds).expect("still provable");
/// assert!(search.stats().memo_hits >= 1);
/// ```
pub struct ProofSearch {
    cfg: ProverConfig,
    session: SessionState,
}

impl ProofSearch {
    /// A fresh session with an empty memo table.
    pub fn new(cfg: ProverConfig) -> Self {
        ProofSearch {
            cfg,
            session: SessionState::default(),
        }
    }

    /// The limits this session searches under.
    pub fn config(&self) -> ProverConfig {
        self.cfg
    }

    /// Attempt to construct a proof of `goal` from `credentials`,
    /// consulting (and growing) the session memo.
    ///
    /// Returns `None` when the bounded search fails; this does *not*
    /// mean the goal is underivable. Anything returned passes
    /// [`crate::check`](fn@crate::check::check) against `credentials`.
    pub fn prove(&mut self, goal: &Formula, credentials: &[Formula]) -> Option<Proof> {
        let mut norm: Vec<Formula> = credentials.iter().map(normalize).collect();
        norm.sort_unstable();
        norm.dedup();
        let fp = fingerprint_normalized(&norm);
        self.prove_keyed(goal, credentials, fp)
    }

    /// Prove a whole batch, sharing the search frontier: members are
    /// partitioned into groups by (normalized goal, normalized
    /// credential set); each group is searched **once** and the
    /// resulting proof spliced into every member. Distinct groups
    /// still share memoized subgoals through the session table
    /// (guarded by the leaf check), so e.g. two groups differing only
    /// in request-specific utterances share the delegation-chain
    /// derivations underneath.
    ///
    /// Returns one entry per input, in order.
    pub fn prove_batch(&mut self, goals: &[BatchGoal<'_>]) -> Vec<Option<Proof>> {
        self.prove_batch_explained(goals)
            .into_iter()
            .map(|o| o.proof)
            .collect()
    }

    /// [`ProofSearch::prove_batch`], with each failure explained by
    /// its refutation witness (see [`ProveOutcome`]).
    pub fn prove_batch_explained(&mut self, goals: &[BatchGoal<'_>]) -> Vec<ProveOutcome> {
        // Grouping compares the actual normalized credential lists —
        // never just their hashes — so a fingerprint collision cannot
        // hand one request another's proof.
        let mut groups: BTreeMap<(Formula, Vec<Formula>), Vec<usize>> = BTreeMap::new();
        for (i, g) in goals.iter().enumerate() {
            let mut norm: Vec<Formula> = g.credentials.iter().map(normalize).collect();
            norm.sort_unstable();
            norm.dedup();
            groups.entry((normalize(g.goal), norm)).or_default().push(i);
        }
        let mut out: Vec<Option<ProveOutcome>> = vec![None; goals.len()];
        self.session.stats.batch_groups += groups.len() as u64;
        for ((_, norm_creds), members) in groups {
            let fp = fingerprint_normalized(&norm_creds);
            let lead = members[0];
            let outcome = self.prove_keyed_explained(goals[lead].goal, goals[lead].credentials, fp);
            if outcome.proof.is_some() {
                // Counted only when something was actually spliced: a
                // failed group search shares the *refutation*, not a
                // proof.
                self.session.stats.batch_shared += (members.len() - 1) as u64;
            }
            for &i in &members {
                out[i] = Some(outcome.clone());
            }
        }
        out.into_iter()
            .map(|o| o.expect("every member grouped"))
            .collect()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> SearchStats {
        self.session.stats
    }

    /// Number of memoized subgoal entries currently held.
    pub fn memo_len(&self) -> usize {
        self.session.entries
    }

    /// Drop every memoized entry (statistics survive). Soft state:
    /// subsequent searches just start cold.
    pub fn flush(&mut self) {
        self.session.clear();
    }

    fn prove_keyed(&mut self, goal: &Formula, credentials: &[Formula], fp: u128) -> Option<Proof> {
        self.prove_keyed_explained(goal, credentials, fp).proof
    }

    fn prove_keyed_explained(
        &mut self,
        goal: &Formula,
        credentials: &[Formula],
        fp: u128,
    ) -> ProveOutcome {
        let norm_credentials: Vec<(Formula, Formula)> = credentials
            .iter()
            .map(|c| (normalize(c), c.clone()))
            .collect();
        let norm_set: HashSet<Formula> = norm_credentials.iter().map(|(n, _)| n.clone()).collect();
        let mut s = Search {
            credentials,
            norm_credentials,
            norm_set,
            fp,
            cfg: self.cfg,
            subgoals: 0,
            budget_exhausted: false,
            hypotheses: Vec::new(),
            witness: None,
            handoff_edges: compute_handoff_edges(credentials),
            session: &mut self.session,
        };
        let proof = s.solve(goal, self.cfg.max_depth);
        // Whatever the search refuted most deeply is the explanation a
        // denial reports; a budget-starved failure that refuted
        // nothing falls back to the goal itself.
        let witness = s.witness.take().map(|(f, _)| f);
        // Never hand back a proof that the checker would reject —
        // memoized splices included.
        let proof = proof.filter(|p| {
            let asm = Assumptions::from_iter(credentials.iter());
            matches!(crate::check::check(p, &asm), Ok(c) if normalize(&c) == normalize(goal))
        });
        let refuted = if proof.is_some() {
            None
        } else {
            Some(witness.unwrap_or_else(|| normalize(goal)))
        };
        ProveOutcome { proof, refuted }
    }
}

/// Order-insensitive fingerprint of a credential set (normalized,
/// sorted, deduplicated). Two credential sets holding the same
/// formulas — regardless of order or `¬`/`→ false` spelling —
/// fingerprint identically. [`ProofSearch`] uses it to scope
/// memoized refutations; it is exported for diagnostics and tests.
/// (The async pipeline's batch-coalescing hint is a *different*,
/// incrementally-maintained hash: `LabelStore::shape` in
/// `nexus-core`.)
pub fn credential_fingerprint(credentials: &[Formula]) -> u128 {
    let mut norm: Vec<Formula> = credentials.iter().map(normalize).collect();
    norm.sort_unstable();
    norm.dedup();
    fingerprint_normalized(&norm)
}

fn fingerprint_normalized(norm: &[Formula]) -> u128 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    // Two independently-seeded 64-bit SipHashes; DefaultHasher::new()
    // is keyed deterministically, so fingerprints are stable within a
    // process (all they are ever compared against).
    let mut hi = DefaultHasher::new();
    let mut lo = DefaultHasher::new();
    0xa5a5_5a5au32.hash(&mut hi);
    0x1234_fedcu32.hash(&mut lo);
    for f in norm {
        f.hash(&mut hi);
        f.hash(&mut lo);
    }
    ((hi.finish() as u128) << 64) | hi.finish().wrapping_add(lo.finish()) as u128
}

struct Search<'a> {
    credentials: &'a [Formula],
    /// (normalized, original) credential pairs, normalized once per
    /// search instead of once per subgoal probe.
    norm_credentials: Vec<(Formula, Formula)>,
    /// The normalized credentials as a set (memo leaf verification).
    norm_set: HashSet<Formula>,
    /// Fingerprint of the credential set (scopes refutation memos).
    fp: u128,
    cfg: ProverConfig,
    subgoals: usize,
    /// Set once the subgoal budget trips: failures after this point
    /// are budget artifacts and must not be memoized as refutations.
    budget_exhausted: bool,
    hypotheses: Vec<Formula>,
    /// The most specific refuted subgoal seen so far: the normalized
    /// formula whose (hypothesis-free) search failed with the least
    /// remaining depth — i.e. deepest in the recursion, closest to the
    /// missing credential. Surfaced as the denial explanation.
    witness: Option<(Formula, usize)>,
    /// Delegation edges derivable by the handoff rule from
    /// credentials of the form `S says (A speaksfor B)` where S is B
    /// or an ancestor of B: (from, to, scope, proof).
    handoff_edges: Vec<(
        Principal,
        Principal,
        Option<std::collections::BTreeSet<String>>,
        Proof,
    )>,
    session: &'a mut SessionState,
}

/// Proof that `from speaksfor from.⋯.to` via chained subprincipal
/// axioms; `None` if `to` is not a proper descendant of `from`.
fn subprin_chain(from: &Principal, to: &Principal) -> Option<Proof> {
    if !from.is_ancestor_of(to) {
        return None;
    }
    let comps = to.components();
    let skip = from.components().len();
    let mut cur = from.clone();
    let mut proof: Option<Proof> = None;
    for c in comps.iter().skip(skip) {
        let step = Proof::SubPrin(cur.clone(), c.to_string());
        cur = cur.sub(c.to_string());
        proof = Some(match proof {
            None => step,
            Some(prev) => Proof::SpeaksForTrans(Box::new(prev), Box::new(step)),
        });
    }
    proof
}

fn compute_handoff_edges(
    credentials: &[Formula],
) -> Vec<(
    Principal,
    Principal,
    Option<std::collections::BTreeSet<String>>,
    Proof,
)> {
    let mut out = Vec::new();
    for c in credentials {
        if let Formula::Says(speaker, inner) = c {
            if let Formula::SpeaksFor { from, to, scope } = inner.as_ref() {
                if speaker == to {
                    // B says (A sf B) ⇒ A sf B.
                    out.push((
                        from.clone(),
                        to.clone(),
                        scope.clone(),
                        Proof::Handoff(Box::new(Proof::assume(c.clone()))),
                    ));
                } else if speaker.is_ancestor_of(to) {
                    // S says (A sf S.x): push the statement into S.x's
                    // worldview via the subprincipal axiom, then hand
                    // off.
                    if let Some(chain) = subprin_chain(speaker, to) {
                        let pushed = Proof::SpeaksForElim(
                            Box::new(chain),
                            Box::new(Proof::assume(c.clone())),
                        );
                        out.push((
                            from.clone(),
                            to.clone(),
                            scope.clone(),
                            Proof::Handoff(Box::new(pushed)),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Attempt to construct a proof of `goal` from `credentials` in a
/// fresh one-shot [`ProofSearch`] session.
///
/// Returns `None` when the bounded search fails; this does *not* mean
/// the goal is underivable.
pub fn prove(goal: &Formula, credentials: &[Formula], cfg: ProverConfig) -> Option<Proof> {
    ProofSearch::new(cfg).prove(goal, credentials)
}

impl<'a> Search<'a> {
    /// Remember `ng` as the refutation witness if it is the most
    /// specific refutation so far (least remaining depth = deepest in
    /// the recursion). Ties keep the earlier formula.
    fn note_witness(&mut self, ng: &Formula, depth: usize) {
        if self.witness.as_ref().is_none_or(|(_, d)| depth < *d) {
            self.witness = Some((ng.clone(), depth));
        }
    }

    fn budget(&mut self) -> bool {
        self.subgoals += 1;
        if self.subgoals > self.cfg.max_subgoals {
            self.budget_exhausted = true;
            return false;
        }
        true
    }

    fn credential_matches(&self, ng: &Formula) -> Option<Proof> {
        self.norm_credentials
            .iter()
            .find(|(n, _)| n == ng)
            .map(|(_, c)| Proof::assume(c.clone()))
    }

    fn hypothesis_matches(&self, ng: &Formula) -> Option<Proof> {
        self.hypotheses
            .iter()
            .find(|h| normalize(h) == *ng)
            .map(|h| Proof::Hypo(h.clone()))
    }

    /// Is this subgoal worth memoizing? Trivial goals are cheaper to
    /// re-derive than to look up; `Pred` leaves fail immediately.
    fn memo_worthy(ng: &Formula) -> bool {
        matches!(
            ng,
            Formula::Says(..)
                | Formula::SpeaksFor { .. }
                | Formula::And(..)
                | Formula::Or(..)
                | Formula::Implies(..)
        )
    }

    fn solve(&mut self, goal: &Formula, depth: usize) -> Option<Proof> {
        if !self.budget() || !goal.vars().is_empty() {
            return None;
        }
        let ng = normalize(goal);
        if let Some(p) = self.credential_matches(&ng) {
            return Some(p);
        }
        if let Some(p) = self.hypothesis_matches(&ng) {
            return Some(p);
        }
        // The memo applies only in an empty hypothesis context:
        // entries must not capture (or be answered from) derivations
        // that lean on a hypothesis some other request never
        // introduced.
        let memoizable = self.hypotheses.is_empty() && Self::memo_worthy(&ng);
        if memoizable {
            if let Some(entry) = self.session.shared.get(&ng) {
                // Splice only if the requester holds every leaf the
                // memoized derivation rests on.
                if entry.leaves.iter().all(|l| self.norm_set.contains(l)) {
                    self.session.stats.memo_hits += 1;
                    return Some(entry.proof.clone());
                }
            }
            if let Some(&failed_depth) = self.session.refuted.get(&self.fp).and_then(|m| m.get(&ng))
            {
                // A search with at least this much depth already
                // failed under the identical credential set.
                if depth <= failed_depth {
                    self.session.stats.memo_hits += 1;
                    self.note_witness(&ng, depth);
                    return None;
                }
            }
            self.session.stats.memo_misses += 1;
        }
        if depth == 0 {
            return None;
        }
        let result = self.solve_inner(goal, depth);
        if memoizable && self.session.entries < self.cfg.max_memo {
            match &result {
                Some(p) => {
                    let leaves: Vec<Formula> = p.leaves().into_iter().map(normalize).collect();
                    if self
                        .session
                        .shared
                        .insert(
                            ng,
                            SharedEntry {
                                proof: p.clone(),
                                leaves,
                            },
                        )
                        .is_none()
                    {
                        self.session.entries += 1;
                    }
                }
                // Budget-starved failures are artifacts of *this*
                // search, not refutations; never memoize them.
                None if !self.budget_exhausted => {
                    self.note_witness(&ng, depth);
                    let slot = self
                        .session
                        .refuted
                        .entry(self.fp)
                        .or_default()
                        .entry(ng)
                        .or_insert_with(|| {
                            self.session.entries += 1;
                            0
                        });
                    *slot = (*slot).max(depth);
                }
                None => {}
            }
        }
        result
    }

    fn solve_inner(&mut self, goal: &Formula, depth: usize) -> Option<Proof> {
        match goal {
            Formula::True => Some(Proof::TrueIntro),
            Formula::False => None,
            Formula::And(a, b) => {
                let pa = self.solve(a, depth - 1)?;
                let pb = self.solve(b, depth - 1)?;
                Some(Proof::AndIntro(Box::new(pa), Box::new(pb)))
            }
            Formula::Or(a, b) => {
                if let Some(pa) = self.solve(a, depth - 1) {
                    return Some(Proof::OrIntroL(Box::new(pa), b.as_ref().clone()));
                }
                self.solve(b, depth - 1)
                    .map(|pb| Proof::OrIntroR(a.as_ref().clone(), Box::new(pb)))
            }
            Formula::Implies(a, b) => {
                self.hypotheses.push(a.as_ref().clone());
                let body = self.solve(b, depth - 1);
                self.hypotheses.pop();
                body.map(|p| Proof::ImpliesIntro {
                    hypo: a.as_ref().clone(),
                    body: Box::new(p),
                })
            }
            Formula::Not(a) => {
                self.hypotheses.push(a.as_ref().clone());
                let body = self.solve(&Formula::False, depth - 1);
                self.hypotheses.pop();
                body.map(|p| Proof::NotIntro {
                    hypo: a.as_ref().clone(),
                    body: Box::new(p),
                })
            }
            Formula::Cmp(op, x, y) => match (x, y) {
                (Term::Int(_), Term::Int(_)) | (Term::Str(_), Term::Str(_)) => {
                    let proof = Proof::CmpEval(*op, x.clone(), y.clone());
                    crate::check::check(&proof, &Assumptions::new())
                        .ok()
                        .map(|_| proof)
                }
                _ => None,
            },
            Formula::Says(p, s) => self.solve_says(p, s, depth),
            Formula::SpeaksFor { from, to, scope } => {
                self.solve_speaksfor(from, to, scope.as_ref(), goal)
            }
            Formula::Pred(..) => None,
        }
    }

    fn solve_says(&mut self, p: &Principal, s: &Formula, depth: usize) -> Option<Proof> {
        // Delegation: a credential Q says s with a speaksfor path Q → p.
        let ns = normalize(s);
        let speakers: Vec<(Principal, Formula)> = self
            .credentials
            .iter()
            .filter_map(|c| match c {
                Formula::Says(q, inner) if normalize(inner) == ns => Some((q.clone(), c.clone())),
                _ => None,
            })
            .collect();
        for (q, cred) in speakers {
            if let Some(chain) = self.delegation_chain(&q, p, s) {
                let mut proof = Proof::assume(cred);
                for edge in chain {
                    proof = Proof::SpeaksForElim(Box::new(edge), Box::new(proof));
                }
                return Some(proof);
            }
        }
        // Distribution: credential p says (x -> s); prove p says x.
        let candidates: Vec<(Formula, Formula)> = self
            .credentials
            .iter()
            .filter_map(|c| match c {
                Formula::Says(q, inner) if q == p => match normalize(inner) {
                    Formula::Implies(x, b) if *b == ns => Some((c.clone(), (*x).clone())),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        for (cred, x) in candidates {
            if let Some(arg) = self.solve(&Formula::Says(p.clone(), Box::new(x)), depth - 1) {
                return Some(Proof::SaysApp(Box::new(Proof::assume(cred)), Box::new(arg)));
            }
        }
        // Unit: prove s outright, then lift.
        self.solve(s, depth - 1)
            .map(|body| Proof::SaysIntro(p.clone(), Box::new(body)))
    }

    /// Find a proof chain establishing that statements of `stmt`'s shape
    /// transfer from `from` to `to`; returns the list of speaksfor
    /// proofs to apply (innermost first).
    fn delegation_chain(
        &mut self,
        from: &Principal,
        to: &Principal,
        stmt: &Formula,
    ) -> Option<Vec<Proof>> {
        if from == to {
            return Some(vec![]);
        }
        // BFS over the delegation graph. Edges:
        //  - credentials `A speaksfor B [on σ]` where σ covers stmt,
        //  - subprincipal steps X → X.τ along the path toward `to`.
        #[derive(Clone)]
        struct Node {
            principal: Principal,
            path: Vec<Proof>,
        }
        let mut seen: HashSet<Principal> = HashSet::new();
        let mut queue = VecDeque::new();
        seen.insert(from.clone());
        queue.push_back(Node {
            principal: from.clone(),
            path: vec![],
        });
        let mut steps = 0;
        while let Some(node) = queue.pop_front() {
            steps += 1;
            if steps > 512 {
                return None;
            }
            // Credential edges.
            for c in self.credentials {
                if let Formula::SpeaksFor {
                    from: a,
                    to: b,
                    scope,
                } = c
                {
                    if a == &node.principal && !seen.contains(b) {
                        let covered = match scope {
                            None => true,
                            Some(s) => stmt.within_scope(s),
                        };
                        if covered {
                            let mut path = node.path.clone();
                            path.push(Proof::assume(c.clone()));
                            if b == to {
                                return Some(path);
                            }
                            seen.insert(b.clone());
                            queue.push_back(Node {
                                principal: b.clone(),
                                path,
                            });
                        }
                    }
                }
            }
            // Handoff edges: `S says (A sf B)` with S speaking for B.
            for (a, b, scope, proof) in &self.handoff_edges {
                if a == &node.principal && !seen.contains(b) {
                    let covered = match scope {
                        None => true,
                        Some(s) => stmt.within_scope(s),
                    };
                    if covered {
                        let mut path = node.path.clone();
                        path.push(proof.clone());
                        if b == to {
                            return Some(path);
                        }
                        seen.insert(b.clone());
                        queue.push_back(Node {
                            principal: b.clone(),
                            path,
                        });
                    }
                }
            }
            // Subprincipal edge toward the target.
            if node.principal.is_ancestor_of(to) || &node.principal == to {
                // Walk one component toward `to`.
                let target_comps = to.components();
                let have = node.principal.components().len();
                let root_matches = node.principal.root() == to.root();
                if root_matches && have < target_comps.len() {
                    let next = target_comps[have].to_string();
                    let child = node.principal.sub(next.clone());
                    if !seen.contains(&child) {
                        let mut path = node.path.clone();
                        path.push(Proof::SubPrin(node.principal.clone(), next));
                        if &child == to {
                            return Some(path);
                        }
                        seen.insert(child.clone());
                        queue.push_back(Node {
                            principal: child,
                            path,
                        });
                    }
                }
            }
        }
        None
    }

    fn solve_speaksfor(
        &mut self,
        from: &Principal,
        to: &Principal,
        scope: Option<&std::collections::BTreeSet<String>>,
        goal: &Formula,
    ) -> Option<Proof> {
        if scope.is_some() {
            // Scoped speaksfor goals: exact credential match (handled
            // by the caller) or an exactly-matching handoff edge —
            // synthesizing others would need scope-weakening rules we
            // don't admit.
            let want_scope = scope.cloned();
            return self
                .handoff_edges
                .iter()
                .find(|(a, b, s, _)| a == from && b == to && s == &want_scope)
                .map(|(_, _, _, p)| p.clone());
        }
        if from == to {
            return Some(Proof::SpeaksForRefl(from.clone()));
        }
        if from.is_ancestor_of(to) {
            // Chain of SubPrin + Trans along the component path.
            let comps = to.components();
            let skip = from.components().len();
            let mut cur = from.clone();
            let mut proof: Option<Proof> = None;
            for c in comps.iter().skip(skip) {
                let step = Proof::SubPrin(cur.clone(), c.to_string());
                cur = cur.sub(c.to_string());
                proof = Some(match proof {
                    None => step,
                    Some(prev) => Proof::SpeaksForTrans(Box::new(prev), Box::new(step)),
                });
            }
            return proof;
        }
        // Transitive closure over unscoped credential edges.
        let chain = self.delegation_chain_unscoped(from, to)?;
        let mut iter = chain.into_iter();
        let first = iter.next()?;
        let mut proof = first;
        for step in iter {
            proof = Proof::SpeaksForTrans(Box::new(proof), Box::new(step));
        }
        // Sanity: conclusion should match the goal.
        let asm = Assumptions::from_iter(self.credentials.iter());
        match crate::check::check(&proof, &asm) {
            Ok(c) if normalize(&c) == normalize(goal) => Some(proof),
            _ => None,
        }
    }

    /// Like `delegation_chain` but restricted to unscoped edges (for
    /// proving bare `speaksfor` goals via transitivity).
    fn delegation_chain_unscoped(
        &mut self,
        from: &Principal,
        to: &Principal,
    ) -> Option<Vec<Proof>> {
        #[derive(Clone)]
        struct Node {
            principal: Principal,
            path: Vec<Proof>,
        }
        let mut seen: HashSet<Principal> = HashSet::new();
        let mut queue = VecDeque::new();
        seen.insert(from.clone());
        queue.push_back(Node {
            principal: from.clone(),
            path: vec![],
        });
        while let Some(node) = queue.pop_front() {
            for c in self.credentials {
                if let Formula::SpeaksFor {
                    from: a,
                    to: b,
                    scope: None,
                } = c
                {
                    if a == &node.principal && !seen.contains(b) {
                        let mut path = node.path.clone();
                        path.push(Proof::assume(c.clone()));
                        if b == to {
                            return Some(path);
                        }
                        seen.insert(b.clone());
                        queue.push_back(Node {
                            principal: b.clone(),
                            path,
                        });
                    }
                }
            }
            // Unscoped handoff edges.
            for (a, b, scope, proof) in &self.handoff_edges {
                if scope.is_none() && a == &node.principal && !seen.contains(b) {
                    let mut path = node.path.clone();
                    path.push(proof.clone());
                    if b == to {
                        return Some(path);
                    }
                    seen.insert(b.clone());
                    queue.push_back(Node {
                        principal: b.clone(),
                        path,
                    });
                }
            }
            // Subprincipal edges toward target.
            if node.principal.is_ancestor_of(to) {
                let target_comps = to.components();
                let have = node.principal.components().len();
                if node.principal.root() == to.root() && have < target_comps.len() {
                    let next = target_comps[have].to_string();
                    let child = node.principal.sub(next.clone());
                    if !seen.contains(&child) {
                        let mut path = node.path.clone();
                        path.push(Proof::SubPrin(node.principal.clone(), next));
                        if &child == to {
                            return Some(path);
                        }
                        seen.insert(child.clone());
                        queue.push_back(Node {
                            principal: child,
                            path,
                        });
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check;
    use crate::parser::parse;

    fn creds(labels: &[&str]) -> Vec<Formula> {
        labels.iter().map(|s| parse(s).unwrap()).collect()
    }

    fn prove_ok(goal: &str, labels: &[&str]) -> Proof {
        let g = parse(goal).unwrap();
        let cs = creds(labels);
        let proof = prove(&g, &cs, ProverConfig::default())
            .unwrap_or_else(|| panic!("no proof found for {goal}"));
        let asm = Assumptions::from_iter(cs.iter());
        let concl = check(&proof, &asm).expect("prover returned invalid proof");
        assert_eq!(normalize(&concl), normalize(&g));
        proof
    }

    fn prove_fails(goal: &str, labels: &[&str]) {
        let g = parse(goal).unwrap();
        let cs = creds(labels);
        assert!(
            prove(&g, &cs, ProverConfig::default()).is_none(),
            "unexpected proof for {goal}"
        );
    }

    #[test]
    fn direct_credential() {
        prove_ok("A says p", &["A says p"]);
    }

    #[test]
    fn conjunction_of_credentials() {
        prove_ok("A says p and B says q", &["A says p", "B says q"]);
    }

    #[test]
    fn disjunction_left_right() {
        prove_ok("A says p or B says q", &["A says p"]);
        prove_ok("A says p or B says q", &["B says q"]);
        prove_fails("A says p or B says q", &["C says r"]);
    }

    #[test]
    fn implication_goal() {
        prove_ok("p -> p", &[]);
        prove_ok("p -> (q -> p)", &[]);
    }

    #[test]
    fn comparison_evaluation() {
        prove_ok("3 < 5", &[]);
        prove_fails("5 < 3", &[]);
    }

    #[test]
    fn delegation_single_hop() {
        prove_ok("B says p", &["A speaksfor B", "A says p"]);
    }

    #[test]
    fn delegation_two_hops() {
        prove_ok("C says p", &["A speaksfor B", "B speaksfor C", "A says p"]);
    }

    #[test]
    fn scoped_delegation_respected() {
        prove_ok(
            "Owner says TimeNow < 20110319",
            &[
                "NTP speaksfor Owner on TimeNow",
                "NTP says TimeNow < 20110319",
            ],
        );
        prove_fails(
            "Owner says isTypeSafe(PGM)",
            &["NTP speaksfor Owner on TimeNow", "NTP says isTypeSafe(PGM)"],
        );
    }

    #[test]
    fn subprincipal_statements_flow_down() {
        prove_ok("NK.p23 says p", &["NK says p"]);
    }

    #[test]
    fn speaksfor_goal_via_transitivity() {
        prove_ok("A speaksfor C", &["A speaksfor B", "B speaksfor C"]);
        prove_fails("C speaksfor A", &["A speaksfor B", "B speaksfor C"]);
    }

    #[test]
    fn speaksfor_goal_reflexive_and_subprincipal() {
        prove_ok("A speaksfor A", &[]);
        prove_ok("NK speaksfor NK.p23.thread1", &[]);
        prove_fails("NK.p23 speaksfor NK", &[]);
    }

    #[test]
    fn says_distribution() {
        prove_ok("A says q", &["A says (p -> q)", "A says p"]);
    }

    #[test]
    fn says_unit_lifting() {
        // 3 < 5 is provable outright, so A says 3 < 5 follows by unit.
        prove_ok("A says 3 < 5", &[]);
    }

    #[test]
    fn revocation_pattern() {
        prove_ok("A says S", &["A says (Valid(S) -> S)", "A says Valid(S)"]);
    }

    #[test]
    fn paper_goal_formula_end_to_end() {
        // Instantiated goal from §2.5:
        //   Owner says TimeNow < Mar19
        //   ∧ X says openFile(filename)     [X := /proc/ipd/12]
        //   ∧ SafetyCertifier says safe(X)
        let goal = "Owner says TimeNow < 20110319 \
                    and /proc/ipd/12 says openFile(secret) \
                    and SafetyCertifier says safe(/proc/ipd/12)";
        prove_ok(
            goal,
            &[
                "NTP speaksfor Owner on TimeNow",
                "NTP says TimeNow < 20110319",
                "/proc/ipd/12 says openFile(secret)",
                "SafetyCertifier says safe(/proc/ipd/12)",
            ],
        );
    }

    #[test]
    fn no_proof_from_unrelated_false() {
        // Locality: A says false must not leak into B's worldview.
        prove_fails("B says g", &["A says false"]);
    }

    #[test]
    fn deep_delegation_chain() {
        let mut labels: Vec<String> = Vec::new();
        for i in 0..10 {
            labels.push(format!("P{} speaksfor P{}", i, i + 1));
        }
        labels.push("P0 says p".to_string());
        let refs: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
        prove_ok("P10 says p", &refs);
    }

    #[test]
    fn negation_goal_via_refutation() {
        // ¬p from credential p → false.
        prove_ok("not p", &["p -> false"]);
    }

    #[test]
    fn handoff_direct() {
        // B itself delegates: B says (A sf B) ⇒ A sf B.
        prove_ok("A speaksfor B", &["B says (A speaksfor B)"]);
        prove_ok("B says p", &["B says (A speaksfor B)", "A says p"]);
    }

    #[test]
    fn handoff_via_resource_manager() {
        // §2.6: when /proc/ipd/6 creates /dir/file, the fileserver
        // deposits `FS says /proc/ipd/6 speaksfor FS./dir/file`.
        // The owner can then discharge the default policy
        // `FS./dir/file says <op>` with its own statement.
        prove_ok(
            "FS./dir/file says write",
            &[
                "FS says (/proc/ipd/6 speaksfor FS./dir/file)",
                "/proc/ipd/6 says write",
            ],
        );
        // An unrelated process cannot.
        prove_fails(
            "FS./dir/file says write",
            &[
                "FS says (/proc/ipd/6 speaksfor FS./dir/file)",
                "/proc/ipd/66 says write",
            ],
        );
    }

    #[test]
    fn handoff_requires_authority_over_target() {
        // C may not hand off B's authority.
        prove_fails("A speaksfor B", &["C says (A speaksfor B)"]);
    }

    #[test]
    fn scoped_handoff() {
        prove_ok(
            "NTP speaksfor Server on TimeNow",
            &["Server says (NTP speaksfor Server on TimeNow)"],
        );
        prove_ok(
            "Server says TimeNow < 5",
            &[
                "Server says (NTP speaksfor Server on TimeNow)",
                "NTP says TimeNow < 5",
            ],
        );
        prove_fails(
            "Server says other(x)",
            &[
                "Server says (NTP speaksfor Server on TimeNow)",
                "NTP says other(x)",
            ],
        );
    }

    // ---- ProofSearch sessions ----

    #[test]
    fn session_memoizes_proved_goals() {
        let cs = creds(&["A speaksfor B", "B speaksfor C", "A says p"]);
        let g = parse("C says p").unwrap();
        let mut s = ProofSearch::new(ProverConfig::default());
        let p1 = s.prove(&g, &cs).expect("provable");
        let misses_after_first = s.stats().memo_misses;
        assert!(misses_after_first > 0, "first search must populate memo");
        let p2 = s.prove(&g, &cs).expect("still provable");
        assert_eq!(p1, p2, "memoized splice must reproduce the derivation");
        assert!(s.stats().memo_hits >= 1, "{:?}", s.stats());
        assert_eq!(
            s.stats().memo_misses,
            misses_after_first,
            "second search must be answered entirely from the memo"
        );
    }

    #[test]
    fn session_memoizes_refutations_per_credential_set() {
        let with = creds(&["A says p"]);
        let without = creds(&["B says q"]);
        let g = parse("A says p").unwrap();
        let mut s = ProofSearch::new(ProverConfig::default());
        assert!(s.prove(&g, &without).is_none());
        // The refutation is scoped to `without`'s fingerprint: the
        // richer credential set must still find the proof.
        assert!(s.prove(&g, &with).is_some());
        // And the refutation still answers for the original set.
        assert!(s.prove(&g, &without).is_none());
    }

    #[test]
    fn failed_searches_explain_themselves_with_a_refuted_subgoal() {
        // The first conjunct is provable via the A→B chain; the second
        // is not. The witness must be the blocking *subgoal*
        // (`B says q`), not merely the top-level conjunction.
        let have = creds(&["A speaksfor B", "A says p"]);
        let goal = parse("B says p and B says q").unwrap();
        let mut s = ProofSearch::new(ProverConfig::default());
        let out = s.prove_batch_explained(&[BatchGoal {
            goal: &goal,
            credentials: &have,
        }]);
        assert!(out[0].proof.is_none());
        let refuted = out[0]
            .refuted
            .clone()
            .expect("failure must carry a witness");
        assert_eq!(
            normalize(&refuted),
            normalize(&parse("B says q").unwrap()),
            "witness should be the deepest refuted subgoal"
        );
        // Successes carry no witness.
        let ok_goal = parse("B says p").unwrap();
        let out = s.prove_batch_explained(&[BatchGoal {
            goal: &ok_goal,
            credentials: &have,
        }]);
        assert!(out[0].proof.is_some());
        assert!(out[0].refuted.is_none());
        // A re-run answered from the memoized refutation still
        // explains itself.
        let out = s.prove_batch_explained(&[BatchGoal {
            goal: &goal,
            credentials: &have,
        }]);
        assert!(out[0].proof.is_none());
        assert!(out[0].refuted.is_some());
    }

    #[test]
    fn memoized_subgoal_not_reused_after_credential_movement() {
        // The prover-cache analog of the setgoal sabotage test: a
        // subgoal proved while the credential was held must not leak
        // into a search run after the credential moved away.
        let before = creds(&["Gate speaksfor Owner", "Gate says ok"]);
        let after = creds(&["Gate speaksfor Owner"]); // `Gate says ok` transferred away
        let g = parse("Owner says ok").unwrap();
        let mut s = ProofSearch::new(ProverConfig::default());
        let p = s.prove(&g, &before).expect("provable while held");
        assert!(p
            .leaves()
            .iter()
            .any(|l| normalize(l) == normalize(&parse("Gate says ok").unwrap())));
        assert!(
            s.prove(&g, &after).is_none(),
            "memoized derivation leaked a credential the requester no longer holds"
        );
        // Flushing (the epoch-invalidation hook) keeps it that way.
        s.flush();
        assert_eq!(s.memo_len(), 0);
        assert!(s.prove(&g, &after).is_none());
        assert!(s.prove(&g, &before).is_some(), "cold search still works");
    }

    #[test]
    fn shared_memo_only_splices_held_leaves() {
        // Two requesters share a delegation chain but only one holds
        // the payload credential: the memoized chain subgoals may be
        // shared, the payload-dependent proof may not.
        let rich = creds(&["A speaksfor B", "A says p", "A says q"]);
        let poor = creds(&["A speaksfor B", "A says p"]);
        let mut s = ProofSearch::new(ProverConfig::default());
        assert!(s.prove(&parse("B says q").unwrap(), &rich).is_some());
        assert!(
            s.prove(&parse("B says q").unwrap(), &poor).is_none(),
            "spliced a proof resting on a credential the requester lacks"
        );
        assert!(s.prove(&parse("B says p").unwrap(), &poor).is_some());
    }

    #[test]
    fn prove_batch_shares_identical_groups() {
        let shared: Vec<Formula> = creds(&["A speaksfor B", "A says p"]);
        let g = parse("B says p").unwrap();
        let batch: Vec<BatchGoal<'_>> = (0..6)
            .map(|_| BatchGoal {
                goal: &g,
                credentials: &shared,
            })
            .collect();
        let mut s = ProofSearch::new(ProverConfig::default());
        let out = s.prove_batch(&batch);
        assert_eq!(out.len(), 6);
        assert!(out.iter().all(|p| p.is_some()));
        let st = s.stats();
        assert_eq!(st.batch_groups, 1, "identical members form one group");
        assert_eq!(st.batch_shared, 5, "five members rode the leader's search");
        // Every spliced proof checks against the member's credentials.
        let asm = Assumptions::from_iter(shared.iter());
        for p in out.into_iter().flatten() {
            let c = check(&p, &asm).expect("spliced proof must check");
            assert_eq!(normalize(&c), normalize(&g));
        }
    }

    #[test]
    fn prove_batch_mixed_groups_stay_isolated() {
        let holder = creds(&["Gate says open"]);
        let stranger = creds(&["Other says open"]);
        let g = parse("Gate says open").unwrap();
        let batch = vec![
            BatchGoal {
                goal: &g,
                credentials: &holder,
            },
            BatchGoal {
                goal: &g,
                credentials: &stranger,
            },
            BatchGoal {
                goal: &g,
                credentials: &holder,
            },
        ];
        let mut s = ProofSearch::new(ProverConfig::default());
        let out = s.prove_batch(&batch);
        assert!(out[0].is_some());
        assert!(
            out[1].is_none(),
            "stranger must not ride the holders' proof"
        );
        assert!(out[2].is_some());
        assert_eq!(s.stats().batch_groups, 2);
        assert_eq!(s.stats().batch_shared, 1);
    }

    #[test]
    fn fingerprints_are_order_insensitive_and_spelling_insensitive() {
        let a = creds(&["A says p", "B says q", "not r"]);
        let b = creds(&["B says q", "r -> false", "A says p"]);
        assert_eq!(credential_fingerprint(&a), credential_fingerprint(&b));
        let c = creds(&["A says p"]);
        assert_ne!(credential_fingerprint(&a), credential_fingerprint(&c));
    }

    #[test]
    fn memo_cap_disables_recording_not_search() {
        let cfg = ProverConfig {
            max_memo: 0,
            ..ProverConfig::default()
        };
        let cs = creds(&["A speaksfor B", "A says p"]);
        let g = parse("B says p").unwrap();
        let mut s = ProofSearch::new(cfg);
        assert!(s.prove(&g, &cs).is_some());
        assert_eq!(s.memo_len(), 0, "cap must hold");
        assert!(s.prove(&g, &cs).is_some(), "search still works uncached");
    }

    #[test]
    fn deeper_search_not_blocked_by_shallow_refutation() {
        // A refutation recorded at depth d must not answer a query
        // arriving with *more* depth to spend.
        let cs = creds(&["A says p"]);
        let g = parse("B says (C says (A says p))").unwrap(); // needs nested SaysIntro
        let shallow = ProverConfig {
            max_depth: 1,
            ..ProverConfig::default()
        };
        let mut s = ProofSearch::new(shallow);
        assert!(s.prove(&g, &cs).is_none(), "depth 1 cannot nest says");
        // Same session, deeper config would be a different ProofSearch;
        // simulate by a fresh session sharing nothing — the scoped
        // refutation in `s` was recorded with its failing depth, so a
        // deeper search in the same session must re-search. We can't
        // reconfigure a session, so assert the depth guard directly:
        // a second shallow query is a memo hit...
        let hits_before = s.stats().memo_hits;
        assert!(s.prove(&g, &cs).is_none());
        assert!(s.stats().memo_hits > hits_before);
        // ...and a default-depth one-shot search succeeds.
        assert!(prove(&g, &cs, ProverConfig::default()).is_some());
    }
}
