//! Bounded backward-chaining proof search.
//!
//! Guards only *check* proofs; constructing them is the client's
//! problem (§2.6). This module is the client-side helper: given the
//! labels in hand (plus any statements an authority is expected to
//! vouch for), it searches for a proof of a goal formula.
//!
//! The search is sound (anything it returns passes [`crate::check`];
//! the tests enforce this) but deliberately incomplete: NAL derivation
//! is undecidable, so the prover bounds recursion depth and explores a
//! practical fragment — conjunctions, disjunctions, implications,
//! negation-as-refutation, literal comparisons, `says` via unit /
//! distribution / delegation chains (including subprincipal axioms and
//! scoped delegation), and `speaksfor` via reflexivity, subprincipal
//! chains, and transitive closure over delegation credentials.

use crate::check::{normalize, Assumptions};
use crate::formula::Formula;
use crate::principal::Principal;
use crate::proof::Proof;
use crate::term::Term;
use std::collections::{HashSet, VecDeque};

/// Prover limits.
#[derive(Debug, Clone, Copy)]
pub struct ProverConfig {
    /// Maximum backward-chaining depth.
    pub max_depth: usize,
    /// Maximum number of subgoals explored.
    pub max_subgoals: usize,
}

impl Default for ProverConfig {
    fn default() -> Self {
        ProverConfig {
            max_depth: 24,
            max_subgoals: 4096,
        }
    }
}

struct Search<'a> {
    credentials: &'a [Formula],
    cfg: ProverConfig,
    subgoals: usize,
    hypotheses: Vec<Formula>,
    /// Delegation edges derivable by the handoff rule from
    /// credentials of the form `S says (A speaksfor B)` where S is B
    /// or an ancestor of B: (from, to, scope, proof).
    handoff_edges: Vec<(
        Principal,
        Principal,
        Option<std::collections::BTreeSet<String>>,
        Proof,
    )>,
}

/// Proof that `from speaksfor from.⋯.to` via chained subprincipal
/// axioms; `None` if `to` is not a proper descendant of `from`.
fn subprin_chain(from: &Principal, to: &Principal) -> Option<Proof> {
    if !from.is_ancestor_of(to) {
        return None;
    }
    let comps = to.components();
    let skip = from.components().len();
    let mut cur = from.clone();
    let mut proof: Option<Proof> = None;
    for c in comps.iter().skip(skip) {
        let step = Proof::SubPrin(cur.clone(), c.to_string());
        cur = cur.sub(c.to_string());
        proof = Some(match proof {
            None => step,
            Some(prev) => Proof::SpeaksForTrans(Box::new(prev), Box::new(step)),
        });
    }
    proof
}

fn compute_handoff_edges(
    credentials: &[Formula],
) -> Vec<(
    Principal,
    Principal,
    Option<std::collections::BTreeSet<String>>,
    Proof,
)> {
    let mut out = Vec::new();
    for c in credentials {
        if let Formula::Says(speaker, inner) = c {
            if let Formula::SpeaksFor { from, to, scope } = inner.as_ref() {
                if speaker == to {
                    // B says (A sf B) ⇒ A sf B.
                    out.push((
                        from.clone(),
                        to.clone(),
                        scope.clone(),
                        Proof::Handoff(Box::new(Proof::assume(c.clone()))),
                    ));
                } else if speaker.is_ancestor_of(to) {
                    // S says (A sf S.x): push the statement into S.x's
                    // worldview via the subprincipal axiom, then hand
                    // off.
                    if let Some(chain) = subprin_chain(speaker, to) {
                        let pushed = Proof::SpeaksForElim(
                            Box::new(chain),
                            Box::new(Proof::assume(c.clone())),
                        );
                        out.push((
                            from.clone(),
                            to.clone(),
                            scope.clone(),
                            Proof::Handoff(Box::new(pushed)),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Attempt to construct a proof of `goal` from `credentials`.
///
/// Returns `None` when the bounded search fails; this does *not* mean
/// the goal is underivable.
pub fn prove(goal: &Formula, credentials: &[Formula], cfg: ProverConfig) -> Option<Proof> {
    let mut s = Search {
        credentials,
        cfg,
        subgoals: 0,
        hypotheses: Vec::new(),
        handoff_edges: compute_handoff_edges(credentials),
    };
    let proof = s.solve(goal, cfg.max_depth)?;
    // Never hand back a proof that the checker would reject.
    let asm = Assumptions::from_iter(credentials.iter());
    match crate::check::check(&proof, &asm) {
        Ok(c) if normalize(&c) == normalize(goal) => Some(proof),
        _ => None,
    }
}

impl<'a> Search<'a> {
    fn budget(&mut self) -> bool {
        self.subgoals += 1;
        self.subgoals <= self.cfg.max_subgoals
    }

    fn credential_matches(&self, goal: &Formula) -> Option<Proof> {
        let ng = normalize(goal);
        self.credentials
            .iter()
            .find(|c| normalize(c) == ng)
            .map(|c| Proof::assume(c.clone()))
    }

    fn hypothesis_matches(&self, goal: &Formula) -> Option<Proof> {
        let ng = normalize(goal);
        self.hypotheses
            .iter()
            .find(|h| normalize(h) == ng)
            .map(|h| Proof::Hypo(h.clone()))
    }

    fn solve(&mut self, goal: &Formula, depth: usize) -> Option<Proof> {
        if !self.budget() || !goal.vars().is_empty() {
            return None;
        }
        if let Some(p) = self.credential_matches(goal) {
            return Some(p);
        }
        if let Some(p) = self.hypothesis_matches(goal) {
            return Some(p);
        }
        if depth == 0 {
            return None;
        }
        match goal {
            Formula::True => Some(Proof::TrueIntro),
            Formula::False => None,
            Formula::And(a, b) => {
                let pa = self.solve(a, depth - 1)?;
                let pb = self.solve(b, depth - 1)?;
                Some(Proof::AndIntro(Box::new(pa), Box::new(pb)))
            }
            Formula::Or(a, b) => {
                if let Some(pa) = self.solve(a, depth - 1) {
                    return Some(Proof::OrIntroL(Box::new(pa), b.as_ref().clone()));
                }
                self.solve(b, depth - 1)
                    .map(|pb| Proof::OrIntroR(a.as_ref().clone(), Box::new(pb)))
            }
            Formula::Implies(a, b) => {
                self.hypotheses.push(a.as_ref().clone());
                let body = self.solve(b, depth - 1);
                self.hypotheses.pop();
                body.map(|p| Proof::ImpliesIntro {
                    hypo: a.as_ref().clone(),
                    body: Box::new(p),
                })
            }
            Formula::Not(a) => {
                self.hypotheses.push(a.as_ref().clone());
                let body = self.solve(&Formula::False, depth - 1);
                self.hypotheses.pop();
                body.map(|p| Proof::NotIntro {
                    hypo: a.as_ref().clone(),
                    body: Box::new(p),
                })
            }
            Formula::Cmp(op, x, y) => match (x, y) {
                (Term::Int(_), Term::Int(_)) | (Term::Str(_), Term::Str(_)) => {
                    let proof = Proof::CmpEval(*op, x.clone(), y.clone());
                    crate::check::check(&proof, &Assumptions::new())
                        .ok()
                        .map(|_| proof)
                }
                _ => None,
            },
            Formula::Says(p, s) => self.solve_says(p, s, depth),
            Formula::SpeaksFor { from, to, scope } => {
                self.solve_speaksfor(from, to, scope.as_ref(), goal)
            }
            Formula::Pred(..) => None,
        }
    }

    fn solve_says(&mut self, p: &Principal, s: &Formula, depth: usize) -> Option<Proof> {
        // Delegation: a credential Q says s with a speaksfor path Q → p.
        let ns = normalize(s);
        let speakers: Vec<(Principal, Formula)> = self
            .credentials
            .iter()
            .filter_map(|c| match c {
                Formula::Says(q, inner) if normalize(inner) == ns => Some((q.clone(), c.clone())),
                _ => None,
            })
            .collect();
        for (q, cred) in speakers {
            if let Some(chain) = self.delegation_chain(&q, p, s) {
                let mut proof = Proof::assume(cred);
                for edge in chain {
                    proof = Proof::SpeaksForElim(Box::new(edge), Box::new(proof));
                }
                return Some(proof);
            }
        }
        // Distribution: credential p says (x -> s); prove p says x.
        let candidates: Vec<(Formula, Formula)> = self
            .credentials
            .iter()
            .filter_map(|c| match c {
                Formula::Says(q, inner) if q == p => match normalize(inner) {
                    Formula::Implies(x, b) if *b == ns => Some((c.clone(), (*x).clone())),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        for (cred, x) in candidates {
            if let Some(arg) = self.solve(&Formula::Says(p.clone(), Box::new(x)), depth - 1) {
                return Some(Proof::SaysApp(Box::new(Proof::assume(cred)), Box::new(arg)));
            }
        }
        // Unit: prove s outright, then lift.
        self.solve(s, depth - 1)
            .map(|body| Proof::SaysIntro(p.clone(), Box::new(body)))
    }

    /// Find a proof chain establishing that statements of `stmt`'s shape
    /// transfer from `from` to `to`; returns the list of speaksfor
    /// proofs to apply (innermost first).
    fn delegation_chain(
        &mut self,
        from: &Principal,
        to: &Principal,
        stmt: &Formula,
    ) -> Option<Vec<Proof>> {
        if from == to {
            return Some(vec![]);
        }
        // BFS over the delegation graph. Edges:
        //  - credentials `A speaksfor B [on σ]` where σ covers stmt,
        //  - subprincipal steps X → X.τ along the path toward `to`.
        #[derive(Clone)]
        struct Node {
            principal: Principal,
            path: Vec<Proof>,
        }
        let mut seen: HashSet<Principal> = HashSet::new();
        let mut queue = VecDeque::new();
        seen.insert(from.clone());
        queue.push_back(Node {
            principal: from.clone(),
            path: vec![],
        });
        let mut steps = 0;
        while let Some(node) = queue.pop_front() {
            steps += 1;
            if steps > 512 {
                return None;
            }
            // Credential edges.
            for c in self.credentials {
                if let Formula::SpeaksFor {
                    from: a,
                    to: b,
                    scope,
                } = c
                {
                    if a == &node.principal && !seen.contains(b) {
                        let covered = match scope {
                            None => true,
                            Some(s) => stmt.within_scope(s),
                        };
                        if covered {
                            let mut path = node.path.clone();
                            path.push(Proof::assume(c.clone()));
                            if b == to {
                                return Some(path);
                            }
                            seen.insert(b.clone());
                            queue.push_back(Node {
                                principal: b.clone(),
                                path,
                            });
                        }
                    }
                }
            }
            // Handoff edges: `S says (A sf B)` with S speaking for B.
            for (a, b, scope, proof) in &self.handoff_edges {
                if a == &node.principal && !seen.contains(b) {
                    let covered = match scope {
                        None => true,
                        Some(s) => stmt.within_scope(s),
                    };
                    if covered {
                        let mut path = node.path.clone();
                        path.push(proof.clone());
                        if b == to {
                            return Some(path);
                        }
                        seen.insert(b.clone());
                        queue.push_back(Node {
                            principal: b.clone(),
                            path,
                        });
                    }
                }
            }
            // Subprincipal edge toward the target.
            if node.principal.is_ancestor_of(to) || &node.principal == to {
                // Walk one component toward `to`.
                let target_comps = to.components();
                let have = node.principal.components().len();
                let root_matches = node.principal.root() == to.root();
                if root_matches && have < target_comps.len() {
                    let next = target_comps[have].to_string();
                    let child = node.principal.sub(next.clone());
                    if !seen.contains(&child) {
                        let mut path = node.path.clone();
                        path.push(Proof::SubPrin(node.principal.clone(), next));
                        if &child == to {
                            return Some(path);
                        }
                        seen.insert(child.clone());
                        queue.push_back(Node {
                            principal: child,
                            path,
                        });
                    }
                }
            }
        }
        None
    }

    fn solve_speaksfor(
        &mut self,
        from: &Principal,
        to: &Principal,
        scope: Option<&std::collections::BTreeSet<String>>,
        goal: &Formula,
    ) -> Option<Proof> {
        if scope.is_some() {
            // Scoped speaksfor goals: exact credential match (handled
            // by the caller) or an exactly-matching handoff edge —
            // synthesizing others would need scope-weakening rules we
            // don't admit.
            let want_scope = scope.cloned();
            return self
                .handoff_edges
                .iter()
                .find(|(a, b, s, _)| a == from && b == to && s == &want_scope)
                .map(|(_, _, _, p)| p.clone());
        }
        if from == to {
            return Some(Proof::SpeaksForRefl(from.clone()));
        }
        if from.is_ancestor_of(to) {
            // Chain of SubPrin + Trans along the component path.
            let comps = to.components();
            let skip = from.components().len();
            let mut cur = from.clone();
            let mut proof: Option<Proof> = None;
            for c in comps.iter().skip(skip) {
                let step = Proof::SubPrin(cur.clone(), c.to_string());
                cur = cur.sub(c.to_string());
                proof = Some(match proof {
                    None => step,
                    Some(prev) => Proof::SpeaksForTrans(Box::new(prev), Box::new(step)),
                });
            }
            return proof;
        }
        // Transitive closure over unscoped credential edges.
        let probe = Formula::True; // unscoped edges only: within_scope unused
        let chain = self.delegation_chain_unscoped(from, to, &probe)?;
        let mut iter = chain.into_iter();
        let first = iter.next()?;
        let mut proof = first;
        for step in iter {
            proof = Proof::SpeaksForTrans(Box::new(proof), Box::new(step));
        }
        // Sanity: conclusion should match the goal.
        let asm = Assumptions::from_iter(self.credentials.iter());
        match crate::check::check(&proof, &asm) {
            Ok(c) if normalize(&c) == normalize(goal) => Some(proof),
            _ => None,
        }
    }

    /// Like `delegation_chain` but restricted to unscoped edges (for
    /// proving bare `speaksfor` goals via transitivity).
    fn delegation_chain_unscoped(
        &mut self,
        from: &Principal,
        to: &Principal,
        _probe: &Formula,
    ) -> Option<Vec<Proof>> {
        #[derive(Clone)]
        struct Node {
            principal: Principal,
            path: Vec<Proof>,
        }
        let mut seen: HashSet<Principal> = HashSet::new();
        let mut queue = VecDeque::new();
        seen.insert(from.clone());
        queue.push_back(Node {
            principal: from.clone(),
            path: vec![],
        });
        while let Some(node) = queue.pop_front() {
            for c in self.credentials {
                if let Formula::SpeaksFor {
                    from: a,
                    to: b,
                    scope: None,
                } = c
                {
                    if a == &node.principal && !seen.contains(b) {
                        let mut path = node.path.clone();
                        path.push(Proof::assume(c.clone()));
                        if b == to {
                            return Some(path);
                        }
                        seen.insert(b.clone());
                        queue.push_back(Node {
                            principal: b.clone(),
                            path,
                        });
                    }
                }
            }
            // Unscoped handoff edges.
            for (a, b, scope, proof) in &self.handoff_edges {
                if scope.is_none() && a == &node.principal && !seen.contains(b) {
                    let mut path = node.path.clone();
                    path.push(proof.clone());
                    if b == to {
                        return Some(path);
                    }
                    seen.insert(b.clone());
                    queue.push_back(Node {
                        principal: b.clone(),
                        path,
                    });
                }
            }
            // Subprincipal edges toward target.
            if node.principal.is_ancestor_of(to) {
                let target_comps = to.components();
                let have = node.principal.components().len();
                if node.principal.root() == to.root() && have < target_comps.len() {
                    let next = target_comps[have].to_string();
                    let child = node.principal.sub(next.clone());
                    if !seen.contains(&child) {
                        let mut path = node.path.clone();
                        path.push(Proof::SubPrin(node.principal.clone(), next));
                        if &child == to {
                            return Some(path);
                        }
                        seen.insert(child.clone());
                        queue.push_back(Node {
                            principal: child,
                            path,
                        });
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check;
    use crate::parser::parse;

    fn creds(labels: &[&str]) -> Vec<Formula> {
        labels.iter().map(|s| parse(s).unwrap()).collect()
    }

    fn prove_ok(goal: &str, labels: &[&str]) -> Proof {
        let g = parse(goal).unwrap();
        let cs = creds(labels);
        let proof = prove(&g, &cs, ProverConfig::default())
            .unwrap_or_else(|| panic!("no proof found for {goal}"));
        let asm = Assumptions::from_iter(cs.iter());
        let concl = check(&proof, &asm).expect("prover returned invalid proof");
        assert_eq!(normalize(&concl), normalize(&g));
        proof
    }

    fn prove_fails(goal: &str, labels: &[&str]) {
        let g = parse(goal).unwrap();
        let cs = creds(labels);
        assert!(
            prove(&g, &cs, ProverConfig::default()).is_none(),
            "unexpected proof for {goal}"
        );
    }

    #[test]
    fn direct_credential() {
        prove_ok("A says p", &["A says p"]);
    }

    #[test]
    fn conjunction_of_credentials() {
        prove_ok("A says p and B says q", &["A says p", "B says q"]);
    }

    #[test]
    fn disjunction_left_right() {
        prove_ok("A says p or B says q", &["A says p"]);
        prove_ok("A says p or B says q", &["B says q"]);
        prove_fails("A says p or B says q", &["C says r"]);
    }

    #[test]
    fn implication_goal() {
        prove_ok("p -> p", &[]);
        prove_ok("p -> (q -> p)", &[]);
    }

    #[test]
    fn comparison_evaluation() {
        prove_ok("3 < 5", &[]);
        prove_fails("5 < 3", &[]);
    }

    #[test]
    fn delegation_single_hop() {
        prove_ok("B says p", &["A speaksfor B", "A says p"]);
    }

    #[test]
    fn delegation_two_hops() {
        prove_ok("C says p", &["A speaksfor B", "B speaksfor C", "A says p"]);
    }

    #[test]
    fn scoped_delegation_respected() {
        prove_ok(
            "Owner says TimeNow < 20110319",
            &[
                "NTP speaksfor Owner on TimeNow",
                "NTP says TimeNow < 20110319",
            ],
        );
        prove_fails(
            "Owner says isTypeSafe(PGM)",
            &["NTP speaksfor Owner on TimeNow", "NTP says isTypeSafe(PGM)"],
        );
    }

    #[test]
    fn subprincipal_statements_flow_down() {
        prove_ok("NK.p23 says p", &["NK says p"]);
    }

    #[test]
    fn speaksfor_goal_via_transitivity() {
        prove_ok("A speaksfor C", &["A speaksfor B", "B speaksfor C"]);
        prove_fails("C speaksfor A", &["A speaksfor B", "B speaksfor C"]);
    }

    #[test]
    fn speaksfor_goal_reflexive_and_subprincipal() {
        prove_ok("A speaksfor A", &[]);
        prove_ok("NK speaksfor NK.p23.thread1", &[]);
        prove_fails("NK.p23 speaksfor NK", &[]);
    }

    #[test]
    fn says_distribution() {
        prove_ok("A says q", &["A says (p -> q)", "A says p"]);
    }

    #[test]
    fn says_unit_lifting() {
        // 3 < 5 is provable outright, so A says 3 < 5 follows by unit.
        prove_ok("A says 3 < 5", &[]);
    }

    #[test]
    fn revocation_pattern() {
        prove_ok("A says S", &["A says (Valid(S) -> S)", "A says Valid(S)"]);
    }

    #[test]
    fn paper_goal_formula_end_to_end() {
        // Instantiated goal from §2.5:
        //   Owner says TimeNow < Mar19
        //   ∧ X says openFile(filename)     [X := /proc/ipd/12]
        //   ∧ SafetyCertifier says safe(X)
        let goal = "Owner says TimeNow < 20110319 \
                    and /proc/ipd/12 says openFile(secret) \
                    and SafetyCertifier says safe(/proc/ipd/12)";
        prove_ok(
            goal,
            &[
                "NTP speaksfor Owner on TimeNow",
                "NTP says TimeNow < 20110319",
                "/proc/ipd/12 says openFile(secret)",
                "SafetyCertifier says safe(/proc/ipd/12)",
            ],
        );
    }

    #[test]
    fn no_proof_from_unrelated_false() {
        // Locality: A says false must not leak into B's worldview.
        prove_fails("B says g", &["A says false"]);
    }

    #[test]
    fn deep_delegation_chain() {
        let mut labels: Vec<String> = Vec::new();
        for i in 0..10 {
            labels.push(format!("P{} speaksfor P{}", i, i + 1));
        }
        labels.push("P0 says p".to_string());
        let refs: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
        prove_ok("P10 says p", &refs);
    }

    #[test]
    fn negation_goal_via_refutation() {
        // ¬p from credential p → false.
        prove_ok("not p", &["p -> false"]);
    }

    #[test]
    fn handoff_direct() {
        // B itself delegates: B says (A sf B) ⇒ A sf B.
        prove_ok("A speaksfor B", &["B says (A speaksfor B)"]);
        prove_ok("B says p", &["B says (A speaksfor B)", "A says p"]);
    }

    #[test]
    fn handoff_via_resource_manager() {
        // §2.6: when /proc/ipd/6 creates /dir/file, the fileserver
        // deposits `FS says /proc/ipd/6 speaksfor FS./dir/file`.
        // The owner can then discharge the default policy
        // `FS./dir/file says <op>` with its own statement.
        prove_ok(
            "FS./dir/file says write",
            &[
                "FS says (/proc/ipd/6 speaksfor FS./dir/file)",
                "/proc/ipd/6 says write",
            ],
        );
        // An unrelated process cannot.
        prove_fails(
            "FS./dir/file says write",
            &[
                "FS says (/proc/ipd/6 speaksfor FS./dir/file)",
                "/proc/ipd/66 says write",
            ],
        );
    }

    #[test]
    fn handoff_requires_authority_over_target() {
        // C may not hand off B's authority.
        prove_fails("A speaksfor B", &["C says (A speaksfor B)"]);
    }

    #[test]
    fn scoped_handoff() {
        prove_ok(
            "NTP speaksfor Server on TimeNow",
            &["Server says (NTP speaksfor Server on TimeNow)"],
        );
        prove_ok(
            "Server says TimeNow < 5",
            &[
                "Server says (NTP speaksfor Server on TimeNow)",
                "NTP says TimeNow < 5",
            ],
        );
        prove_fails(
            "Server says other(x)",
            &[
                "Server says (NTP speaksfor Server on TimeNow)",
                "NTP says other(x)",
            ],
        );
    }
}
