//! # Attested storage (§3.3)
//!
//! Data confidentiality and integrity across reboots, rooted in the
//! TPM's tiny secure storage. The TPM offers only two integrity
//! registers (v1.1 DIRs) or a few KB of NVRAM (v1.2) — far too little
//! to store application state — so the Nexus *virtualizes* it:
//!
//! * [`merkle`] — Merkle hash trees decouple hashing cost from file
//!   size and let single blocks be verified (demand paging).
//! * [`vdir`] — **Virtual Data Integrity Registers**: an unlimited
//!   number of 32-byte integrity slots, kept in a kernel hash tree
//!   whose root lives in the real TPM DIRs via a 4-step
//!   crash-consistent update protocol. Replayed or modified on-disk
//!   state is caught at boot by a root-hash mismatch.
//! * [`vkey`] — **Virtual Keys**: unlimited signing/encryption keys,
//!   persisted by sealing to the TPM (PCR-bound, so only the same
//!   measured kernel can recover them).
//! * [`ssr`] — **Secure Storage Regions**: integrity-protected,
//!   optionally encrypted (counter-mode AES, per-block) persistent
//!   stores built on VDIRs; tamper- and replay-proof even on remote
//!   or untrusted disks.
//! * [`disk`] — the block/file device abstraction, with fault
//!   injection for crash-consistency tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disk;
pub mod error;
pub mod merkle;
pub mod ssr;
pub mod vdir;
pub mod vkey;

pub use disk::{Disk, RamDisk};
pub use error::StorageError;
pub use merkle::MerkleTree;
pub use ssr::{SsrConfig, SsrManager};
pub use vdir::{VdirId, VdirTable, STATE_CURRENT, STATE_NEW};
pub use vkey::{VkeyId, VkeyTable, WrappedKey};
