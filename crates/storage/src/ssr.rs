//! Secure Storage Regions (§3.3).
//!
//! An SSR is an integrity-protected, optionally encrypted, persistent
//! data store kept on *untrusted* secondary storage. Integrity comes
//! from a per-SSR Merkle tree whose root lives in a VDIR (and thus,
//! transitively, in the TPM's hardware registers): replaying an old
//! disk image or modifying dormant data produces a root mismatch.
//! Confidentiality uses counter-mode AES with a per-(block, version)
//! IV, so blocks are encrypted independently — updating one plaintext
//! block never forces re-encryption of its successors, and single
//! blocks can be demand-paged and verified in isolation.

use crate::disk::Disk;
use crate::error::StorageError;
use crate::merkle::MerkleTree;
use crate::vdir::{VdirId, VdirTable};
use crate::vkey::{VkeyId, VkeyTable};
use nexus_tpm::{Digest, Tpm};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Path of the (untrusted, self-verifying) SSR metadata file.
const META_FILE: &str = "ssr/meta";

/// Per-SSR configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SsrConfig {
    /// Block size in bytes. The paper's evaluation uses 1 kB blocks
    /// (small files pay a padding penalty — visible in Figure 8's
    /// hashing curve).
    pub block_size: usize,
    /// Encrypt blocks with this symmetric VKEY (None = integrity
    /// only).
    pub encrypt_with: Option<VkeyId>,
}

impl Default for SsrConfig {
    fn default() -> Self {
        SsrConfig {
            block_size: 1024,
            encrypt_with: None,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct SsrMeta {
    vdir: VdirId,
    cfg: SsrConfig,
    nonce_base: [u8; 8],
    /// Leaf digests of the (ciphertext) blocks. Untrusted on disk;
    /// validated against the VDIR root at open.
    leaves: Vec<Digest>,
    /// Per-block write version, part of the CTR IV so rewriting a
    /// block never reuses a keystream.
    versions: Vec<u64>,
}

#[derive(Debug, Default, Serialize, Deserialize)]
struct MetaTable {
    ssrs: BTreeMap<String, SsrMeta>,
}

/// Manager for all SSRs on one device.
#[derive(Debug, Default)]
pub struct SsrManager {
    meta: MetaTable,
}

type Aes256Ctr = ctr::Ctr64BE<aes::Aes256>;
use aes::cipher::{KeyIvInit, StreamCipher};

fn block_iv(nonce_base: &[u8; 8], index: usize, version: u64) -> [u8; 16] {
    let mut iv = [0u8; 16];
    iv[..8].copy_from_slice(nonce_base);
    iv[8..12].copy_from_slice(&(index as u32).to_le_bytes());
    iv[12..16].copy_from_slice(&(version as u32).to_le_bytes());
    iv
}

fn block_file(name: &str, index: usize) -> String {
    format!("ssr/{name}/{index}")
}

impl SsrManager {
    /// Fresh manager (first boot).
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an SSR.
    pub fn create(
        &mut self,
        name: &str,
        cfg: SsrConfig,
        vdirs: &mut VdirTable,
        tpm: &mut Tpm,
    ) -> Result<(), StorageError> {
        if self.meta.ssrs.contains_key(name) {
            return Err(StorageError::Encoding(format!("SSR {name} exists")));
        }
        let vdir = vdirs.create();
        let mut nonce_base = [0u8; 8];
        tpm.get_random(&mut nonce_base);
        let meta = SsrMeta {
            vdir,
            cfg,
            nonce_base,
            leaves: Vec::new(),
            versions: Vec::new(),
        };
        vdirs.write(vdir, MerkleTree::from_leaves(vec![]).root())?;
        self.meta.ssrs.insert(name.to_string(), meta);
        Ok(())
    }

    /// Destroy an SSR and its blocks.
    pub fn destroy(
        &mut self,
        name: &str,
        disk: &mut dyn Disk,
        vdirs: &mut VdirTable,
    ) -> Result<(), StorageError> {
        let meta = self
            .meta
            .ssrs
            .remove(name)
            .ok_or_else(|| StorageError::NoSuchSsr(name.to_string()))?;
        for i in 0..meta.leaves.len() {
            disk.delete_file(&block_file(name, i))?;
        }
        vdirs.destroy(meta.vdir)?;
        Ok(())
    }

    fn meta_of(&self, name: &str) -> Result<&SsrMeta, StorageError> {
        self.meta
            .ssrs
            .get(name)
            .ok_or_else(|| StorageError::NoSuchSsr(name.to_string()))
    }

    /// Number of blocks in an SSR.
    pub fn block_count(&self, name: &str) -> Result<usize, StorageError> {
        Ok(self.meta_of(name)?.leaves.len())
    }

    /// Write block `index` (padding to the block size; indices may
    /// extend the region by exactly one block at a time).
    pub fn write_block(
        &mut self,
        name: &str,
        index: usize,
        data: &[u8],
        disk: &mut dyn Disk,
        vdirs: &mut VdirTable,
        vkeys: &VkeyTable,
    ) -> Result<(), StorageError> {
        self.write_block_inner(name, index, data, disk, vkeys)?;
        self.reanchor(name, vdirs)
    }

    fn write_block_inner(
        &mut self,
        name: &str,
        index: usize,
        data: &[u8],
        disk: &mut dyn Disk,
        vkeys: &VkeyTable,
    ) -> Result<(), StorageError> {
        let meta = self
            .meta
            .ssrs
            .get_mut(name)
            .ok_or_else(|| StorageError::NoSuchSsr(name.to_string()))?;
        if index > meta.leaves.len() {
            return Err(StorageError::BadBlock(index));
        }
        let mut block = data.to_vec();
        block.resize(meta.cfg.block_size, 0);
        let version = if index < meta.versions.len() {
            meta.versions[index] + 1
        } else {
            0
        };
        if let Some(key) = meta.cfg.encrypt_with {
            let iv = block_iv(&meta.nonce_base, index, version);
            let k = vkeys.symmetric_key(key)?;
            let mut cipher = Aes256Ctr::new(&k, &iv);
            cipher.apply_keystream(&mut block);
        }
        let leaf = nexus_tpm::hash(&block);
        disk.write_file(&block_file(name, index), &block)?;
        if index == meta.leaves.len() {
            meta.leaves.push(leaf);
            meta.versions.push(version);
        } else {
            meta.leaves[index] = leaf;
            meta.versions[index] = version;
        }
        Ok(())
    }

    /// Recompute and anchor the Merkle root for `name` in its VDIR.
    fn reanchor(&self, name: &str, vdirs: &mut VdirTable) -> Result<(), StorageError> {
        let meta = self.meta_of(name)?;
        let root = MerkleTree::from_leaves(meta.leaves.clone()).root();
        vdirs.write(meta.vdir, root)
    }

    /// Verify that the metadata's leaves match the VDIR anchor.
    fn verify_anchor(&self, name: &str, vdirs: &VdirTable) -> Result<(), StorageError> {
        let meta = self.meta_of(name)?;
        let tree = MerkleTree::from_leaves(meta.leaves.clone());
        if tree.root() != vdirs.read(meta.vdir)? {
            return Err(StorageError::IntegrityViolation(format!(
                "SSR {name}: metadata does not match VDIR root"
            )));
        }
        Ok(())
    }

    /// Read and verify block `index` — demand paging: only this block
    /// is read and hashed; the remaining leaves come from metadata and
    /// are anchored by the VDIR root.
    pub fn read_block(
        &self,
        name: &str,
        index: usize,
        disk: &dyn Disk,
        vdirs: &VdirTable,
        vkeys: &VkeyTable,
    ) -> Result<Vec<u8>, StorageError> {
        self.verify_anchor(name, vdirs)?;
        self.read_block_inner(name, index, disk, vkeys)
    }

    /// Block read without the anchor check (callers must have
    /// verified the anchor for this SSR already).
    fn read_block_inner(
        &self,
        name: &str,
        index: usize,
        disk: &dyn Disk,
        vkeys: &VkeyTable,
    ) -> Result<Vec<u8>, StorageError> {
        let meta = self.meta_of(name)?;
        if index >= meta.leaves.len() {
            return Err(StorageError::BadBlock(index));
        }
        let mut block = disk.read_file(&block_file(name, index))?;
        if nexus_tpm::hash(&block) != meta.leaves[index] {
            return Err(StorageError::IntegrityViolation(format!(
                "SSR {name} block {index}: on-disk data does not match hash tree"
            )));
        }
        if let Some(key) = meta.cfg.encrypt_with {
            let iv = block_iv(&meta.nonce_base, index, meta.versions[index]);
            let k = vkeys.symmetric_key(key)?;
            let mut cipher = Aes256Ctr::new(&k, &iv);
            cipher.apply_keystream(&mut block);
        }
        Ok(block)
    }

    /// Write a whole byte string (padding the tail block).
    pub fn write_all(
        &mut self,
        name: &str,
        data: &[u8],
        disk: &mut dyn Disk,
        vdirs: &mut VdirTable,
        vkeys: &VkeyTable,
    ) -> Result<(), StorageError> {
        let bs = self.meta_of(name)?.cfg.block_size;
        let blocks: Vec<&[u8]> = if data.is_empty() {
            vec![&[]]
        } else {
            data.chunks(bs).collect()
        };
        for (i, chunk) in blocks.iter().enumerate() {
            self.write_block_inner(name, i, chunk, disk, vkeys)?;
        }
        self.reanchor(name, vdirs)
    }

    /// Read the whole region (including tail padding).
    pub fn read_all(
        &self,
        name: &str,
        disk: &dyn Disk,
        vdirs: &VdirTable,
        vkeys: &VkeyTable,
    ) -> Result<Vec<u8>, StorageError> {
        self.verify_anchor(name, vdirs)?;
        let n = self.block_count(name)?;
        let mut out = Vec::new();
        for i in 0..n {
            out.extend_from_slice(&self.read_block_inner(name, i, disk, vkeys)?);
        }
        Ok(out)
    }

    /// Persist manager metadata (untrusted cache; the VDIRs anchor it)
    /// and flush the VDIR table through the 4-step protocol.
    pub fn sync(
        &self,
        disk: &mut dyn Disk,
        vdirs: &VdirTable,
        tpm: &mut Tpm,
    ) -> Result<(), StorageError> {
        let bytes =
            serde_json::to_vec(&self.meta).map_err(|e| StorageError::Encoding(e.to_string()))?;
        disk.write_file(META_FILE, &bytes)?;
        vdirs.flush(disk, tpm)
    }

    /// Re-open after a reboot: load metadata and verify every SSR's
    /// Merkle root against its VDIR (recovered separately through
    /// [`VdirTable::recover`]). Tampered or replayed metadata fails
    /// here.
    pub fn open(disk: &dyn Disk, vdirs: &VdirTable) -> Result<SsrManager, StorageError> {
        let bytes = disk.read_file(META_FILE)?;
        let meta: MetaTable =
            serde_json::from_slice(&bytes).map_err(|e| StorageError::Encoding(e.to_string()))?;
        for (name, m) in &meta.ssrs {
            let root = MerkleTree::from_leaves(m.leaves.clone()).root();
            if vdirs.read(m.vdir)? != root {
                return Err(StorageError::IntegrityViolation(format!(
                    "SSR {name}: recovered metadata does not match VDIR"
                )));
            }
        }
        Ok(SsrManager { meta })
    }

    /// Names of all SSRs.
    pub fn names(&self) -> Vec<String> {
        self.meta.ssrs.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::RamDisk;

    struct World {
        disk: RamDisk,
        tpm: Tpm,
        vdirs: VdirTable,
        vkeys: VkeyTable,
        ssrs: SsrManager,
    }

    fn world(seed: u64) -> World {
        let mut tpm = Tpm::new_with_seed(seed);
        tpm.pcrs_mut().extend(4, b"nexus");
        tpm.take_ownership().unwrap();
        let mut disk = RamDisk::new();
        let vdirs = VdirTable::init_first_boot(&mut disk, &mut tpm).unwrap();
        World {
            disk,
            tpm,
            vdirs,
            vkeys: VkeyTable::new(),
            ssrs: SsrManager::new(),
        }
    }

    #[test]
    fn write_read_round_trip_plain() {
        let mut w = world(1);
        w.ssrs
            .create("tokens", SsrConfig::default(), &mut w.vdirs, &mut w.tpm)
            .unwrap();
        let data = vec![0x5au8; 3000];
        w.ssrs
            .write_all("tokens", &data, &mut w.disk, &mut w.vdirs, &w.vkeys)
            .unwrap();
        let back = w
            .ssrs
            .read_all("tokens", &w.disk, &w.vdirs, &w.vkeys)
            .unwrap();
        assert_eq!(&back[..3000], &data[..]);
        assert_eq!(back.len(), 3072, "padded to block size");
    }

    #[test]
    fn encrypted_blocks_are_ciphertext_on_disk() {
        let mut w = world(2);
        let key = w.vkeys.create_symmetric(&mut w.tpm);
        let cfg = SsrConfig {
            block_size: 64,
            encrypt_with: Some(key),
        };
        w.ssrs
            .create("secret", cfg, &mut w.vdirs, &mut w.tpm)
            .unwrap();
        let plaintext = b"attack at dawn";
        w.ssrs
            .write_block("secret", 0, plaintext, &mut w.disk, &mut w.vdirs, &w.vkeys)
            .unwrap();
        let on_disk = w.disk.read_file("ssr/secret/0").unwrap();
        assert!(!on_disk.windows(plaintext.len()).any(|win| win == plaintext));
        let back = w
            .ssrs
            .read_block("secret", 0, &w.disk, &w.vdirs, &w.vkeys)
            .unwrap();
        assert_eq!(&back[..plaintext.len()], plaintext);
    }

    #[test]
    fn rewriting_a_block_changes_its_iv() {
        // CTR keystream reuse would leak plaintext XOR; versions
        // prevent it: same plaintext, same block, different ciphertext.
        let mut w = world(3);
        let key = w.vkeys.create_symmetric(&mut w.tpm);
        let cfg = SsrConfig {
            block_size: 32,
            encrypt_with: Some(key),
        };
        w.ssrs.create("s", cfg, &mut w.vdirs, &mut w.tpm).unwrap();
        w.ssrs
            .write_block("s", 0, b"same", &mut w.disk, &mut w.vdirs, &w.vkeys)
            .unwrap();
        let ct1 = w.disk.read_file("ssr/s/0").unwrap();
        w.ssrs
            .write_block("s", 0, b"same", &mut w.disk, &mut w.vdirs, &w.vkeys)
            .unwrap();
        let ct2 = w.disk.read_file("ssr/s/0").unwrap();
        assert_ne!(ct1, ct2);
    }

    #[test]
    fn tampered_block_detected() {
        let mut w = world(4);
        w.ssrs
            .create("t", SsrConfig::default(), &mut w.vdirs, &mut w.tpm)
            .unwrap();
        w.ssrs
            .write_block("t", 0, b"data", &mut w.disk, &mut w.vdirs, &w.vkeys)
            .unwrap();
        w.disk.corrupt("ssr/t/0", 0).unwrap();
        assert!(matches!(
            w.ssrs.read_block("t", 0, &w.disk, &w.vdirs, &w.vkeys),
            Err(StorageError::IntegrityViolation(_))
        ));
    }

    #[test]
    fn replayed_block_detected() {
        let mut w = world(5);
        w.ssrs
            .create("r", SsrConfig::default(), &mut w.vdirs, &mut w.tpm)
            .unwrap();
        w.ssrs
            .write_block("r", 0, b"v1", &mut w.disk, &mut w.vdirs, &w.vkeys)
            .unwrap();
        let old = w.disk.snapshot();
        w.ssrs
            .write_block("r", 0, b"v2", &mut w.disk, &mut w.vdirs, &w.vkeys)
            .unwrap();
        // Replay just the data file: hash-tree mismatch.
        w.disk
            .write_file("ssr/r/0", old.get("ssr/r/0").unwrap())
            .unwrap();
        assert!(matches!(
            w.ssrs.read_block("r", 0, &w.disk, &w.vdirs, &w.vkeys),
            Err(StorageError::IntegrityViolation(_))
        ));
    }

    #[test]
    fn survives_reboot_via_sync_and_open() {
        let mut w = world(6);
        w.ssrs
            .create("persist", SsrConfig::default(), &mut w.vdirs, &mut w.tpm)
            .unwrap();
        w.ssrs
            .write_all("persist", b"important", &mut w.disk, &mut w.vdirs, &w.vkeys)
            .unwrap();
        w.ssrs.sync(&mut w.disk, &w.vdirs, &mut w.tpm).unwrap();

        // Reboot.
        w.tpm.power_cycle();
        w.tpm.pcrs_mut().extend(4, b"nexus");
        let vdirs = VdirTable::recover(&w.disk, &w.tpm).unwrap();
        let ssrs = SsrManager::open(&w.disk, &vdirs).unwrap();
        let data = ssrs.read_all("persist", &w.disk, &vdirs, &w.vkeys).unwrap();
        assert_eq!(&data[..9], b"important");
    }

    #[test]
    fn full_disk_replay_detected_at_boot() {
        let mut w = world(7);
        w.ssrs
            .create("x", SsrConfig::default(), &mut w.vdirs, &mut w.tpm)
            .unwrap();
        w.ssrs
            .write_all("x", b"v1", &mut w.disk, &mut w.vdirs, &w.vkeys)
            .unwrap();
        w.ssrs.sync(&mut w.disk, &w.vdirs, &mut w.tpm).unwrap();
        let old_image = w.disk.snapshot();

        w.ssrs
            .write_all("x", b"v2", &mut w.disk, &mut w.vdirs, &w.vkeys)
            .unwrap();
        w.ssrs.sync(&mut w.disk, &w.vdirs, &mut w.tpm).unwrap();

        // Re-image the disk wholesale; the hardware DIRs still hold
        // the v2 root, so VDIR recovery aborts.
        w.disk.restore(old_image);
        w.tpm.power_cycle();
        w.tpm.pcrs_mut().extend(4, b"nexus");
        assert_eq!(
            VdirTable::recover(&w.disk, &w.tpm).unwrap_err(),
            StorageError::BootAbort
        );
    }

    #[test]
    fn destroy_removes_blocks() {
        let mut w = world(8);
        w.ssrs
            .create("d", SsrConfig::default(), &mut w.vdirs, &mut w.tpm)
            .unwrap();
        w.ssrs
            .write_all("d", b"bye", &mut w.disk, &mut w.vdirs, &w.vkeys)
            .unwrap();
        w.ssrs.destroy("d", &mut w.disk, &mut w.vdirs).unwrap();
        assert!(!w.disk.exists("ssr/d/0"));
        assert!(matches!(
            w.ssrs.read_block("d", 0, &w.disk, &w.vdirs, &w.vkeys),
            Err(StorageError::NoSuchSsr(_))
        ));
    }

    #[test]
    fn sparse_extension_rejected() {
        let mut w = world(9);
        w.ssrs
            .create("s", SsrConfig::default(), &mut w.vdirs, &mut w.tpm)
            .unwrap();
        assert!(matches!(
            w.ssrs
                .write_block("s", 5, b"x", &mut w.disk, &mut w.vdirs, &w.vkeys),
            Err(StorageError::BadBlock(5))
        ));
    }
}
