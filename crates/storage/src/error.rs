//! Storage error type.

use std::fmt;

/// Errors from attested-storage operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Simulated power failure: the device stopped accepting writes.
    PowerFailure,
    /// Named file not present on the device.
    NoSuchFile(String),
    /// Integrity check failed: on-disk data does not match the hash
    /// tree (tampering or corruption).
    IntegrityViolation(String),
    /// Boot must abort: neither state file matches a DIR — the disk
    /// was modified while the kernel was dormant (§3.3).
    BootAbort,
    /// VDIR id not allocated.
    NoSuchVdir(u32),
    /// VKEY id not allocated.
    NoSuchVkey(u32),
    /// Key type mismatch (e.g. sign with an encryption key).
    WrongKeyKind,
    /// Wrapped key failed to unwrap (wrong wrapping key or tampered).
    UnwrapFailed,
    /// SSR not found.
    NoSuchSsr(String),
    /// Block index out of range.
    BadBlock(usize),
    /// Underlying TPM refused (not owned / PCR mismatch).
    Tpm(String),
    /// Serialization failure.
    Encoding(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::PowerFailure => write!(f, "simulated power failure"),
            StorageError::NoSuchFile(n) => write!(f, "no such file: {n}"),
            StorageError::IntegrityViolation(m) => write!(f, "integrity violation: {m}"),
            StorageError::BootAbort => {
                write!(
                    f,
                    "boot aborted: on-disk state matches no integrity register"
                )
            }
            StorageError::NoSuchVdir(i) => write!(f, "no such VDIR: {i}"),
            StorageError::NoSuchVkey(i) => write!(f, "no such VKEY: {i}"),
            StorageError::WrongKeyKind => write!(f, "operation not supported by this key kind"),
            StorageError::UnwrapFailed => write!(f, "failed to unwrap key"),
            StorageError::NoSuchSsr(n) => write!(f, "no such SSR: {n}"),
            StorageError::BadBlock(i) => write!(f, "block index {i} out of range"),
            StorageError::Tpm(m) => write!(f, "TPM: {m}"),
            StorageError::Encoding(m) => write!(f, "encoding: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<nexus_tpm::TpmError> for StorageError {
    fn from(e: nexus_tpm::TpmError) -> Self {
        StorageError::Tpm(e.to_string())
    }
}
