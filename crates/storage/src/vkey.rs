//! Virtual Keys (§3.3).
//!
//! The TPM's key storage is as limited as its data registers, so the
//! Nexus virtualizes it: VKEYs live in protected kernel memory and
//! support creation, destruction, externalization (optionally wrapped
//! under another VKEY), internalization, and the usual cryptographic
//! operations for their kind. The whole table persists across reboots
//! by sealing to the TPM, so only the same measured kernel recovers
//! the keys.
//!
//! Because every VKEY operation can be guarded by a goal formula,
//! policies like group signatures fall out: a `sign` goal dischargeable
//! by group members, a different `externalize` goal for key managers.

use crate::error::StorageError;
use aes::cipher::{KeyIvInit, StreamCipher};
use ed25519_dalek::{Signature, Signer, SigningKey, Verifier, VerifyingKey};
use nexus_tpm::{PcrSelection, SealedBlob, Tpm};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

type Aes256Ctr = ctr::Ctr64BE<aes::Aes256>;

/// Handle to a VKEY.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VkeyId(pub u32);

/// Key material, by kind.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum Material {
    /// Ed25519 signing key (32-byte seed).
    Signing([u8; 32]),
    /// AES-256 symmetric key.
    Symmetric([u8; 32]),
}

/// An externalized VKEY, encrypted under another VKEY.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WrappedKey {
    nonce: [u8; 16],
    ciphertext: Vec<u8>,
    tag: nexus_tpm::Digest,
}

#[derive(Debug, Default, Serialize, Deserialize, PartialEq, Eq)]
struct TableState {
    keys: BTreeMap<u32, Material>,
    next: u32,
    counter: u64,
}

/// The kernel's VKEY table.
#[derive(Debug, Default)]
pub struct VkeyTable {
    state: TableState,
}

impl VkeyTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    fn fresh_bytes(&mut self, tpm: &mut Tpm) -> [u8; 32] {
        let mut b = [0u8; 32];
        tpm.get_random(&mut b);
        b
    }

    /// Create a signing VKEY.
    pub fn create_signing(&mut self, tpm: &mut Tpm) -> VkeyId {
        let seed = self.fresh_bytes(tpm);
        self.insert(Material::Signing(seed))
    }

    /// Create a symmetric (encryption) VKEY.
    pub fn create_symmetric(&mut self, tpm: &mut Tpm) -> VkeyId {
        let key = self.fresh_bytes(tpm);
        self.insert(Material::Symmetric(key))
    }

    fn insert(&mut self, m: Material) -> VkeyId {
        let id = self.state.next;
        self.state.next += 1;
        self.state.keys.insert(id, m);
        VkeyId(id)
    }

    fn get(&self, id: VkeyId) -> Result<&Material, StorageError> {
        self.state
            .keys
            .get(&id.0)
            .ok_or(StorageError::NoSuchVkey(id.0))
    }

    /// Destroy a VKEY.
    pub fn destroy(&mut self, id: VkeyId) -> Result<(), StorageError> {
        self.state
            .keys
            .remove(&id.0)
            .map(|_| ())
            .ok_or(StorageError::NoSuchVkey(id.0))
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.state.keys.len()
    }

    /// True if no keys.
    pub fn is_empty(&self) -> bool {
        self.state.keys.is_empty()
    }

    // ---- signing keys ----

    /// Sign with a signing VKEY.
    pub fn sign(&self, id: VkeyId, message: &[u8]) -> Result<Vec<u8>, StorageError> {
        match self.get(id)? {
            Material::Signing(seed) => {
                let sk = SigningKey::from_bytes(seed);
                Ok(sk.sign(message).to_bytes().to_vec())
            }
            _ => Err(StorageError::WrongKeyKind),
        }
    }

    /// Public half of a signing VKEY.
    pub fn public_key(&self, id: VkeyId) -> Result<VerifyingKey, StorageError> {
        match self.get(id)? {
            Material::Signing(seed) => Ok(SigningKey::from_bytes(seed).verifying_key()),
            _ => Err(StorageError::WrongKeyKind),
        }
    }

    /// Verify a signature made by a signing VKEY.
    pub fn verify(&self, id: VkeyId, message: &[u8], sig: &[u8]) -> Result<bool, StorageError> {
        let vk = self.public_key(id)?;
        Ok(Signature::from_slice(sig)
            .map(|s| vk.verify(message, &s).is_ok())
            .unwrap_or(false))
    }

    // ---- symmetric keys ----

    /// Raw key bytes of a symmetric VKEY (used by the SSR layer for
    /// counter-mode block encryption).
    pub fn symmetric_key(&self, id: VkeyId) -> Result<[u8; 32], StorageError> {
        match self.get(id)? {
            Material::Symmetric(k) => Ok(*k),
            _ => Err(StorageError::WrongKeyKind),
        }
    }

    /// Encrypt (AES-256-CTR) with a symmetric VKEY.
    pub fn encrypt(
        &self,
        id: VkeyId,
        nonce: &[u8; 16],
        data: &[u8],
    ) -> Result<Vec<u8>, StorageError> {
        let key = self.symmetric_key(id)?;
        let mut out = data.to_vec();
        let mut cipher = Aes256Ctr::new(&key, nonce);
        cipher.apply_keystream(&mut out);
        Ok(out)
    }

    /// Decrypt with a symmetric VKEY (CTR: same as encrypt).
    pub fn decrypt(
        &self,
        id: VkeyId,
        nonce: &[u8; 16],
        data: &[u8],
    ) -> Result<Vec<u8>, StorageError> {
        self.encrypt(id, nonce, data)
    }

    // ---- externalization ----

    /// Externalize `id`, wrapped under symmetric VKEY `wrap_with`.
    pub fn externalize(
        &mut self,
        id: VkeyId,
        wrap_with: VkeyId,
        tpm: &mut Tpm,
    ) -> Result<WrappedKey, StorageError> {
        let material =
            serde_json::to_vec(self.get(id)?).map_err(|e| StorageError::Encoding(e.to_string()))?;
        let wrap_key = self.symmetric_key(wrap_with)?;
        let mut nonce = [0u8; 16];
        tpm.get_random(&mut nonce);
        let mut ciphertext = material;
        let mut cipher = Aes256Ctr::new(&wrap_key, &nonce);
        cipher.apply_keystream(&mut ciphertext);
        let tag = nexus_tpm::hash_concat(&[b"vkey-wrap", &wrap_key, &nonce, &ciphertext]);
        Ok(WrappedKey {
            nonce,
            ciphertext,
            tag,
        })
    }

    /// Internalize a wrapped key using `unwrap_with`.
    pub fn internalize(
        &mut self,
        wrapped: &WrappedKey,
        unwrap_with: VkeyId,
    ) -> Result<VkeyId, StorageError> {
        let wrap_key = self.symmetric_key(unwrap_with)?;
        let expect =
            nexus_tpm::hash_concat(&[b"vkey-wrap", &wrap_key, &wrapped.nonce, &wrapped.ciphertext]);
        if expect != wrapped.tag {
            return Err(StorageError::UnwrapFailed);
        }
        let mut plain = wrapped.ciphertext.clone();
        let mut cipher = Aes256Ctr::new(&wrap_key, &wrapped.nonce);
        cipher.apply_keystream(&mut plain);
        let material: Material =
            serde_json::from_slice(&plain).map_err(|_| StorageError::UnwrapFailed)?;
        Ok(self.insert(material))
    }

    // ---- persistence ----

    /// Seal the whole table to the TPM (PCR-bound): only the same
    /// measured kernel can restore it.
    pub fn persist(&self, tpm: &mut Tpm) -> Result<SealedBlob, StorageError> {
        let bytes =
            serde_json::to_vec(&self.state).map_err(|e| StorageError::Encoding(e.to_string()))?;
        Ok(tpm.seal(&PcrSelection::boot_chain(), &bytes)?)
    }

    /// Restore a previously persisted table.
    pub fn restore(tpm: &Tpm, blob: &SealedBlob) -> Result<VkeyTable, StorageError> {
        let bytes = tpm.unseal(blob)?;
        let state =
            serde_json::from_slice(&bytes).map_err(|e| StorageError::Encoding(e.to_string()))?;
        Ok(VkeyTable { state })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn booted(seed: u64) -> Tpm {
        let mut t = Tpm::new_with_seed(seed);
        t.pcrs_mut().extend(4, b"nexus");
        t.take_ownership().unwrap();
        t
    }

    #[test]
    fn signing_round_trip() {
        let mut tpm = booted(1);
        let mut vk = VkeyTable::new();
        let id = vk.create_signing(&mut tpm);
        let sig = vk.sign(id, b"msg").unwrap();
        assert!(vk.verify(id, b"msg", &sig).unwrap());
        assert!(!vk.verify(id, b"other", &sig).unwrap());
    }

    #[test]
    fn symmetric_round_trip() {
        let mut tpm = booted(2);
        let mut vk = VkeyTable::new();
        let id = vk.create_symmetric(&mut tpm);
        let nonce = [3u8; 16];
        let ct = vk.encrypt(id, &nonce, b"plaintext").unwrap();
        assert_ne!(ct, b"plaintext");
        assert_eq!(vk.decrypt(id, &nonce, &ct).unwrap(), b"plaintext");
    }

    #[test]
    fn kind_mismatch_rejected() {
        let mut tpm = booted(3);
        let mut vk = VkeyTable::new();
        let s = vk.create_signing(&mut tpm);
        let e = vk.create_symmetric(&mut tpm);
        assert_eq!(
            vk.encrypt(s, &[0; 16], b"x"),
            Err(StorageError::WrongKeyKind)
        );
        assert_eq!(vk.sign(e, b"x"), Err(StorageError::WrongKeyKind));
    }

    #[test]
    fn destroy_and_missing() {
        let mut tpm = booted(4);
        let mut vk = VkeyTable::new();
        let id = vk.create_signing(&mut tpm);
        vk.destroy(id).unwrap();
        assert_eq!(vk.sign(id, b"x"), Err(StorageError::NoSuchVkey(id.0)));
        assert_eq!(vk.destroy(id), Err(StorageError::NoSuchVkey(id.0)));
    }

    #[test]
    fn externalize_internalize_round_trip() {
        let mut tpm = booted(5);
        let mut vk = VkeyTable::new();
        let signer = vk.create_signing(&mut tpm);
        let wrapper = vk.create_symmetric(&mut tpm);
        let sig_before = vk.sign(signer, b"m").unwrap();

        let wrapped = vk.externalize(signer, wrapper, &mut tpm).unwrap();
        let back = vk.internalize(&wrapped, wrapper).unwrap();
        let sig_after = vk.sign(back, b"m").unwrap();
        assert_eq!(sig_before, sig_after, "same key material restored");
    }

    #[test]
    fn internalize_with_wrong_key_fails() {
        let mut tpm = booted(6);
        let mut vk = VkeyTable::new();
        let signer = vk.create_signing(&mut tpm);
        let w1 = vk.create_symmetric(&mut tpm);
        let w2 = vk.create_symmetric(&mut tpm);
        let wrapped = vk.externalize(signer, w1, &mut tpm).unwrap();
        assert_eq!(
            vk.internalize(&wrapped, w2),
            Err(StorageError::UnwrapFailed)
        );
    }

    #[test]
    fn tampered_wrap_fails() {
        let mut tpm = booted(7);
        let mut vk = VkeyTable::new();
        let signer = vk.create_signing(&mut tpm);
        let w = vk.create_symmetric(&mut tpm);
        let mut wrapped = vk.externalize(signer, w, &mut tpm).unwrap();
        wrapped.ciphertext[0] ^= 1;
        assert_eq!(vk.internalize(&wrapped, w), Err(StorageError::UnwrapFailed));
    }

    #[test]
    fn persistence_survives_same_kernel_reboot_only() {
        let mut tpm = booted(8);
        let mut vk = VkeyTable::new();
        let id = vk.create_signing(&mut tpm);
        let pk = vk.public_key(id).unwrap();
        let blob = vk.persist(&mut tpm).unwrap();

        // Same kernel: restores.
        tpm.power_cycle();
        tpm.pcrs_mut().extend(4, b"nexus");
        let restored = VkeyTable::restore(&tpm, &blob).unwrap();
        assert_eq!(restored.public_key(id).unwrap(), pk);

        // Modified kernel: unseal fails.
        tpm.power_cycle();
        tpm.pcrs_mut().extend(4, b"evil");
        assert!(matches!(
            VkeyTable::restore(&tpm, &blob),
            Err(StorageError::Tpm(_))
        ));
    }
}
