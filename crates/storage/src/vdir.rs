//! Virtual Data Integrity Registers (§3.3).
//!
//! The TPM provides just two hardware DIRs. The Nexus multiplexes them
//! into an arbitrary number of *VDIRs* by keeping all VDIR values in a
//! kernel table whose digest is stored in the hardware registers. The
//! table is persisted to two state files on (untrusted) secondary
//! storage with a 4-step protocol that survives asynchronous power
//! failure:
//!
//! 1. write the new table to `/proc/state/new`,
//! 2. write the new root hash into DIRnew,
//! 3. write the new root hash into DIRcur,
//! 4. write the new table to `/proc/state/current`.
//!
//! On boot both files are read and hashed against the two DIRs: if
//! only one matches, that file holds the state; if both match, `new`
//! is the latest; if neither matches, the disk was modified while the
//! kernel was dormant and **boot aborts**.

use crate::disk::Disk;
use crate::error::StorageError;
use nexus_tpm::{Digest, Tpm};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Handle to a VDIR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VdirId(pub u32);

/// Hardware register indices.
const DIR_NEW: usize = 0;
const DIR_CUR: usize = 1;

/// On-disk path of the current-state file.
pub const STATE_CURRENT: &str = "/proc/state/current";
/// On-disk path of the new-state file.
pub const STATE_NEW: &str = "/proc/state/new";

#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
struct TableState {
    vdirs: BTreeMap<u32, Digest>,
    next: u32,
}

/// The kernel's VDIR table.
#[derive(Debug, Default)]
pub struct VdirTable {
    state: TableState,
}

impl VdirTable {
    /// Fresh, empty table (first boot).
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a VDIR initialized to the zero digest.
    pub fn create(&mut self) -> VdirId {
        let id = self.state.next;
        self.state.next += 1;
        self.state.vdirs.insert(id, Digest::ZERO);
        VdirId(id)
    }

    /// Read a VDIR.
    pub fn read(&self, id: VdirId) -> Result<Digest, StorageError> {
        self.state
            .vdirs
            .get(&id.0)
            .copied()
            .ok_or(StorageError::NoSuchVdir(id.0))
    }

    /// Write a VDIR **in memory**. Durability requires
    /// [`VdirTable::flush`].
    pub fn write(&mut self, id: VdirId, value: Digest) -> Result<(), StorageError> {
        match self.state.vdirs.get_mut(&id.0) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(StorageError::NoSuchVdir(id.0)),
        }
    }

    /// Destroy a VDIR.
    pub fn destroy(&mut self, id: VdirId) -> Result<(), StorageError> {
        self.state
            .vdirs
            .remove(&id.0)
            .map(|_| ())
            .ok_or(StorageError::NoSuchVdir(id.0))
    }

    /// Number of allocated VDIRs.
    pub fn len(&self) -> usize {
        self.state.vdirs.len()
    }

    /// True if none allocated.
    pub fn is_empty(&self) -> bool {
        self.state.vdirs.is_empty()
    }

    fn encode(&self) -> Result<Vec<u8>, StorageError> {
        serde_json::to_vec(&self.state).map_err(|e| StorageError::Encoding(e.to_string()))
    }

    fn decode(bytes: &[u8]) -> Result<TableState, StorageError> {
        serde_json::from_slice(bytes).map_err(|e| StorageError::Encoding(e.to_string()))
    }

    /// The 4-step crash-consistent flush. A success return means all
    /// four steps completed; any error leaves a recoverable prefix on
    /// disk and in the DIRs.
    pub fn flush(&self, disk: &mut dyn Disk, tpm: &mut Tpm) -> Result<(), StorageError> {
        let bytes = self.encode()?;
        let root = nexus_tpm::hash(&bytes);
        disk.write_file(STATE_NEW, &bytes)?; // (1)
        tpm.write_dir(DIR_NEW, root)?; // (2)
        tpm.write_dir(DIR_CUR, root)?; // (3)
        disk.write_file(STATE_CURRENT, &bytes)?; // (4)
        Ok(())
    }

    /// First-boot initialization: flush the empty table so subsequent
    /// recoveries have a consistent baseline.
    pub fn init_first_boot(disk: &mut dyn Disk, tpm: &mut Tpm) -> Result<VdirTable, StorageError> {
        let table = VdirTable::new();
        table.flush(disk, tpm)?;
        Ok(table)
    }

    /// Boot-time recovery (§3.3). Reads both state files, checks their
    /// hashes against the DIRs, and returns the latest consistent
    /// table — or [`StorageError::BootAbort`] if the on-disk state was
    /// modified while the kernel was dormant.
    pub fn recover(disk: &dyn Disk, tpm: &Tpm) -> Result<VdirTable, StorageError> {
        let dir_new = tpm.read_dir(DIR_NEW)?;
        let dir_cur = tpm.read_dir(DIR_CUR)?;
        let file_new = disk.read_file(STATE_NEW).ok();
        let file_cur = disk.read_file(STATE_CURRENT).ok();
        let new_matches = file_new
            .as_deref()
            .map(|b| nexus_tpm::hash(b) == dir_new)
            .unwrap_or(false);
        let cur_matches = file_cur
            .as_deref()
            .map(|b| nexus_tpm::hash(b) == dir_cur)
            .unwrap_or(false);
        let bytes = match (new_matches, cur_matches) {
            // Both match: `new` contains the latest state.
            (true, _) => file_new.expect("checked"),
            (false, true) => file_cur.expect("checked"),
            (false, false) => return Err(StorageError::BootAbort),
        };
        Ok(VdirTable {
            state: Self::decode(&bytes)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::RamDisk;

    fn booted_tpm(seed: u64) -> Tpm {
        let mut t = Tpm::new_with_seed(seed);
        t.pcrs_mut().extend(4, b"nexus");
        t.take_ownership().unwrap();
        t
    }

    fn reboot(tpm: &mut Tpm) {
        tpm.power_cycle();
        tpm.pcrs_mut().extend(4, b"nexus");
    }

    #[test]
    fn create_read_write_destroy() {
        let mut t = VdirTable::new();
        let id = t.create();
        assert_eq!(t.read(id).unwrap(), Digest::ZERO);
        let d = nexus_tpm::hash(b"root");
        t.write(id, d).unwrap();
        assert_eq!(t.read(id).unwrap(), d);
        t.destroy(id).unwrap();
        assert!(matches!(t.read(id), Err(StorageError::NoSuchVdir(_))));
    }

    #[test]
    fn flush_and_recover_round_trip() {
        let mut disk = RamDisk::new();
        let mut tpm = booted_tpm(1);
        let mut table = VdirTable::init_first_boot(&mut disk, &mut tpm).unwrap();
        let id = table.create();
        table.write(id, nexus_tpm::hash(b"v1")).unwrap();
        table.flush(&mut disk, &mut tpm).unwrap();

        reboot(&mut tpm);
        let recovered = VdirTable::recover(&disk, &tpm).unwrap();
        assert_eq!(recovered.read(id).unwrap(), nexus_tpm::hash(b"v1"));
    }

    /// Cut power at every step boundary of the 4-step protocol and
    /// verify the table recovers to either the old or the new state —
    /// never aborts, never yields a third state.
    #[test]
    fn crash_at_every_step_is_recoverable() {
        // Step boundaries: the flush performs disk writes at steps 1
        // and 4, TPM writes at 2 and 3. We model crashes after k disk
        // writes for k=0,1 combined with TPM progress implicitly: a
        // disk failure at step 1 stops the protocol before any DIR
        // write; a failure at step 4 leaves both DIRs updated.
        for fail_at_write in [0u64, 1] {
            let mut disk = RamDisk::new();
            let mut tpm = booted_tpm(10 + fail_at_write);
            let mut table = VdirTable::init_first_boot(&mut disk, &mut tpm).unwrap();
            let id = table.create();
            table.write(id, nexus_tpm::hash(b"old")).unwrap();
            table.flush(&mut disk, &mut tpm).unwrap();

            // Attempt an update that dies mid-protocol.
            table.write(id, nexus_tpm::hash(b"new")).unwrap();
            disk.fail_after(fail_at_write);
            let err = table.flush(&mut disk, &mut tpm);
            assert_eq!(err, Err(StorageError::PowerFailure));
            disk.clear_fault();

            reboot(&mut tpm);
            let recovered = VdirTable::recover(&disk, &tpm).unwrap();
            let got = recovered.read(id).unwrap();
            assert!(
                got == nexus_tpm::hash(b"old") || got == nexus_tpm::hash(b"new"),
                "fail_at={fail_at_write}: recovered to neither old nor new"
            );
            // Specifically: dying before step 2 keeps the old state;
            // dying after step 2 commits the new state.
            if fail_at_write == 0 {
                assert_eq!(got, nexus_tpm::hash(b"old"));
            } else {
                assert_eq!(got, nexus_tpm::hash(b"new"));
            }
        }
    }

    #[test]
    fn tampered_disk_aborts_boot() {
        let mut disk = RamDisk::new();
        let mut tpm = booted_tpm(2);
        let mut table = VdirTable::init_first_boot(&mut disk, &mut tpm).unwrap();
        let id = table.create();
        table.write(id, nexus_tpm::hash(b"v1")).unwrap();
        table.flush(&mut disk, &mut tpm).unwrap();

        disk.corrupt(STATE_CURRENT, 3).unwrap();
        disk.corrupt(STATE_NEW, 3).unwrap();
        reboot(&mut tpm);
        assert_eq!(
            VdirTable::recover(&disk, &tpm).unwrap_err(),
            StorageError::BootAbort
        );
    }

    #[test]
    fn replayed_disk_image_aborts_boot() {
        // The attack the DIRs exist to stop: re-image the disk with an
        // older (validly signed!) state.
        let mut disk = RamDisk::new();
        let mut tpm = booted_tpm(3);
        let mut table = VdirTable::init_first_boot(&mut disk, &mut tpm).unwrap();
        let id = table.create();
        table.write(id, nexus_tpm::hash(b"v1")).unwrap();
        table.flush(&mut disk, &mut tpm).unwrap();
        let old_image = disk.snapshot();

        table.write(id, nexus_tpm::hash(b"v2")).unwrap();
        table.flush(&mut disk, &mut tpm).unwrap();

        // Replay the old image.
        disk.restore(old_image);
        reboot(&mut tpm);
        assert_eq!(
            VdirTable::recover(&disk, &tpm).unwrap_err(),
            StorageError::BootAbort
        );
    }

    #[test]
    fn one_corrupted_file_still_recovers() {
        let mut disk = RamDisk::new();
        let mut tpm = booted_tpm(4);
        let mut table = VdirTable::init_first_boot(&mut disk, &mut tpm).unwrap();
        let id = table.create();
        table.write(id, nexus_tpm::hash(b"v1")).unwrap();
        table.flush(&mut disk, &mut tpm).unwrap();

        disk.corrupt(STATE_CURRENT, 0).unwrap();
        reboot(&mut tpm);
        let recovered = VdirTable::recover(&disk, &tpm).unwrap();
        assert_eq!(recovered.read(id).unwrap(), nexus_tpm::hash(b"v1"));
    }

    #[test]
    fn modified_kernel_cannot_recover() {
        // DIR access is PCR-gated: a different kernel measurement
        // cannot even read the registers.
        let mut disk = RamDisk::new();
        let mut tpm = booted_tpm(5);
        let table = VdirTable::init_first_boot(&mut disk, &mut tpm).unwrap();
        table.flush(&mut disk, &mut tpm).unwrap();

        tpm.power_cycle();
        tpm.pcrs_mut().extend(4, b"evil-nexus");
        assert!(matches!(
            VdirTable::recover(&disk, &tpm),
            Err(StorageError::Tpm(_))
        ));
    }
}
