//! Merkle hash trees (§3.3).
//!
//! "A Merkle hash tree divides a file into small blocks whose hashes
//! form the leaves of a binary tree […] resulting in a single root
//! hash that protects the entire file" — and, crucially, lets the
//! Nexus "retrieve and verify only the relevant blocks", enabling
//! demand paging of SSR contents.

use nexus_tpm::{hash_concat, Digest};

/// A binary Merkle tree over leaf digests.
///
/// Levels are stored bottom-up: `levels[0]` are the leaves,
/// `levels.last()` is the single root. An odd node at the end of a
/// level is promoted by hashing alone (domain-separated from pairs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    levels: Vec<Vec<Digest>>,
}

fn parent_pair(a: &Digest, b: &Digest) -> Digest {
    hash_concat(&[b"node", &a.0, &b.0])
}

fn parent_single(a: &Digest) -> Digest {
    hash_concat(&[b"lone", &a.0])
}

impl MerkleTree {
    /// Build from leaf digests. An empty tree has a well-defined
    /// sentinel root.
    pub fn from_leaves(leaves: Vec<Digest>) -> Self {
        let mut levels = vec![leaves];
        while levels.last().expect("nonempty").len() > 1 {
            let prev = levels.last().expect("nonempty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                next.push(match pair {
                    [a, b] => parent_pair(a, b),
                    [a] => parent_single(a),
                    _ => unreachable!("chunks(2)"),
                });
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// Build over data blocks (hashing each).
    pub fn from_blocks<B: AsRef<[u8]>>(blocks: &[B]) -> Self {
        Self::from_leaves(blocks.iter().map(|b| nexus_tpm::hash(b.as_ref())).collect())
    }

    /// The root digest (sentinel for an empty tree).
    pub fn root(&self) -> Digest {
        match self.levels.last() {
            Some(level) if !level.is_empty() => level[0],
            _ => hash_concat(&[b"empty-merkle"]),
        }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels.first().map(|l| l.len()).unwrap_or(0)
    }

    /// True if no leaves.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replace leaf `i` and recompute only the path to the root —
    /// O(log n) hashes, the property that decouples update cost from
    /// file size.
    pub fn update(&mut self, i: usize, leaf: Digest) -> Option<Digest> {
        if i >= self.len() {
            return None;
        }
        self.levels[0][i] = leaf;
        let mut idx = i;
        for level in 0..self.levels.len() - 1 {
            let parent_idx = idx / 2;
            let left = idx & !1;
            let parent = if left + 1 < self.levels[level].len() {
                parent_pair(&self.levels[level][left], &self.levels[level][left + 1])
            } else {
                parent_single(&self.levels[level][left])
            };
            self.levels[level + 1][parent_idx] = parent;
            idx = parent_idx;
        }
        Some(self.root())
    }

    /// Append a leaf (rebuilds affected spine; amortized O(log n) but
    /// implemented simply as a rebuild of the right edge).
    pub fn push(&mut self, leaf: Digest) {
        let mut leaves = self.levels[0].clone();
        leaves.push(leaf);
        *self = Self::from_leaves(leaves);
    }

    /// Inclusion proof for leaf `i`: sibling digests from leaf to
    /// root, each tagged with whether the sibling is on the left.
    pub fn proof(&self, i: usize) -> Option<Vec<(Digest, bool)>> {
        if i >= self.len() {
            return None;
        }
        let mut out = Vec::new();
        let mut idx = i;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = idx ^ 1;
            if sibling < level.len() {
                out.push((level[sibling], sibling < idx));
            } else {
                // Lone node: no sibling at this level; mark with a
                // sentinel entry? — encode as promotion step, which
                // the verifier reproduces by position. We push nothing
                // and let verify() recompute via parent_single.
                out.push((Digest::ZERO, false));
            }
            idx /= 2;
        }
        Some(out)
    }

    /// Verify an inclusion proof against a root.
    pub fn verify(root: &Digest, leaf: &Digest, index: usize, proof: &[(Digest, bool)]) -> bool {
        let mut acc = *leaf;
        let mut idx = index;
        for (sibling, sibling_left) in proof {
            acc = if *sibling == Digest::ZERO && idx.is_multiple_of(2) {
                // Promotion of a lone node.
                parent_single(&acc)
            } else if *sibling_left {
                parent_pair(sibling, &acc)
            } else {
                parent_pair(&acc, sibling)
            };
            idx /= 2;
        }
        &acc == root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Digest> {
        (0..n).map(|i| nexus_tpm::hash(&[i as u8])).collect()
    }

    #[test]
    fn root_changes_with_any_leaf() {
        for n in [1usize, 2, 3, 4, 5, 8, 9, 33] {
            let base = MerkleTree::from_leaves(leaves(n));
            for i in 0..n {
                let mut t = base.clone();
                t.update(i, nexus_tpm::hash(b"tampered"));
                assert_ne!(t.root(), base.root(), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn update_matches_rebuild() {
        for n in [1usize, 2, 3, 5, 8, 13] {
            let mut incremental = MerkleTree::from_leaves(leaves(n));
            for i in 0..n {
                let new_leaf = nexus_tpm::hash(&[0xa0, i as u8]);
                incremental.update(i, new_leaf);
                let mut fresh = leaves(n);
                for (j, leaf) in fresh.iter_mut().enumerate().take(i + 1) {
                    *leaf = nexus_tpm::hash(&[0xa0, j as u8]);
                }
                let rebuilt = MerkleTree::from_leaves(fresh);
                assert_eq!(incremental.root(), rebuilt.root(), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn proofs_verify_and_reject_tampering() {
        for n in [1usize, 2, 3, 4, 7, 8, 9] {
            let ls = leaves(n);
            let t = MerkleTree::from_leaves(ls.clone());
            let root = t.root();
            for (i, leaf) in ls.iter().enumerate() {
                let proof = t.proof(i).unwrap();
                assert!(
                    MerkleTree::verify(&root, leaf, i, &proof),
                    "valid proof must verify (n={n} i={i})"
                );
                let wrong = nexus_tpm::hash(b"other");
                assert!(
                    !MerkleTree::verify(&root, &wrong, i, &proof),
                    "wrong leaf must fail (n={n} i={i})"
                );
            }
        }
    }

    #[test]
    fn proof_for_wrong_index_fails() {
        let ls = leaves(4);
        let t = MerkleTree::from_leaves(ls.clone());
        let proof = t.proof(1).unwrap();
        assert!(!MerkleTree::verify(&t.root(), &ls[0], 0, &proof));
    }

    #[test]
    fn empty_and_push() {
        let mut t = MerkleTree::from_leaves(vec![]);
        assert!(t.is_empty());
        let e = t.root();
        t.push(nexus_tpm::hash(b"a"));
        assert_eq!(t.len(), 1);
        assert_ne!(t.root(), e);
        t.push(nexus_tpm::hash(b"b"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.root(), MerkleTree::from_blocks(&[b"a", b"b"]).root());
    }

    #[test]
    fn out_of_range_ops() {
        let mut t = MerkleTree::from_leaves(leaves(3));
        assert!(t.update(3, Digest::ZERO).is_none());
        assert!(t.proof(3).is_none());
    }

    #[test]
    fn single_leaf_tree() {
        let l = nexus_tpm::hash(b"only");
        let t = MerkleTree::from_leaves(vec![l]);
        assert_eq!(t.root(), l, "single leaf is its own root");
        let proof = t.proof(0).unwrap();
        assert!(proof.is_empty());
        assert!(MerkleTree::verify(&t.root(), &l, 0, &proof));
    }
}
