//! The secondary-storage device abstraction.
//!
//! The Nexus stores SSR blocks and the two VDIR state files on
//! ordinary (untrusted!) secondary storage — the paper even runs them
//! over TFTP/NFS to remote disks, relying entirely on the hash tree
//! for integrity. This module models the device as a named-file store
//! with two adversarial features used by the test suite:
//!
//! * **fault injection** — the device can be set to "lose power" after
//!   a given number of writes, leaving any prefix of the update
//!   protocol on disk;
//! * **tampering** — files can be corrupted or replayed (snapshot /
//!   restore) to simulate an attacker re-imaging the disk while the
//!   machine is dormant.

use crate::error::StorageError;
use std::collections::HashMap;

/// A named-file storage device.
pub trait Disk: Send {
    /// Write (create or replace) a file.
    fn write_file(&mut self, name: &str, data: &[u8]) -> Result<(), StorageError>;
    /// Read a file.
    fn read_file(&self, name: &str) -> Result<Vec<u8>, StorageError>;
    /// Delete a file; `Ok` even if absent.
    fn delete_file(&mut self, name: &str) -> Result<(), StorageError>;
    /// Does the file exist?
    fn exists(&self, name: &str) -> bool;
    /// List file names with the given prefix.
    fn list(&self, prefix: &str) -> Vec<String>;
}

/// An in-memory disk with fault injection and tamper hooks.
#[derive(Debug, Default)]
pub struct RamDisk {
    files: HashMap<String, Vec<u8>>,
    /// Writes remaining before simulated power loss (`None` = no
    /// failure scheduled).
    fail_after_writes: Option<u64>,
    writes: u64,
    reads: u64,
}

impl RamDisk {
    /// Empty device.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule a power failure: the next `n` writes succeed, then the
    /// device rejects everything until [`RamDisk::clear_fault`].
    pub fn fail_after(&mut self, n: u64) {
        self.fail_after_writes = Some(n);
    }

    /// Cancel fault injection ("power restored").
    pub fn clear_fault(&mut self) {
        self.fail_after_writes = None;
    }

    /// Flip one byte of a file (tamper simulation).
    pub fn corrupt(&mut self, name: &str, offset: usize) -> Result<(), StorageError> {
        let f = self
            .files
            .get_mut(name)
            .ok_or_else(|| StorageError::NoSuchFile(name.to_string()))?;
        if offset < f.len() {
            f[offset] ^= 0xff;
        }
        Ok(())
    }

    /// Snapshot the whole device (for replay attacks).
    pub fn snapshot(&self) -> HashMap<String, Vec<u8>> {
        self.files.clone()
    }

    /// Restore a snapshot, replaying old state over current state.
    pub fn restore(&mut self, snapshot: HashMap<String, Vec<u8>>) {
        self.files = snapshot;
    }

    /// Write and read counters (for cost accounting in benches).
    pub fn io_counts(&self) -> (u64, u64) {
        (self.writes, self.reads)
    }
}

impl Disk for RamDisk {
    fn write_file(&mut self, name: &str, data: &[u8]) -> Result<(), StorageError> {
        if let Some(left) = self.fail_after_writes {
            if left == 0 {
                return Err(StorageError::PowerFailure);
            }
            self.fail_after_writes = Some(left - 1);
        }
        self.writes += 1;
        self.files.insert(name.to_string(), data.to_vec());
        Ok(())
    }

    fn read_file(&self, name: &str) -> Result<Vec<u8>, StorageError> {
        self.files
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::NoSuchFile(name.to_string()))
    }

    fn delete_file(&mut self, name: &str) -> Result<(), StorageError> {
        self.files.remove(name);
        Ok(())
    }

    fn exists(&self, name: &str) -> bool {
        self.files.contains_key(name)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        let mut v: Vec<String> = self
            .files
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_delete() {
        let mut d = RamDisk::new();
        d.write_file("/a", b"hello").unwrap();
        assert_eq!(d.read_file("/a").unwrap(), b"hello");
        assert!(d.exists("/a"));
        d.delete_file("/a").unwrap();
        assert!(!d.exists("/a"));
        assert!(matches!(
            d.read_file("/a"),
            Err(StorageError::NoSuchFile(_))
        ));
    }

    #[test]
    fn fault_injection_cuts_writes() {
        let mut d = RamDisk::new();
        d.fail_after(2);
        d.write_file("/1", b"x").unwrap();
        d.write_file("/2", b"y").unwrap();
        assert_eq!(d.write_file("/3", b"z"), Err(StorageError::PowerFailure));
        assert!(!d.exists("/3"));
        d.clear_fault();
        d.write_file("/3", b"z").unwrap();
    }

    #[test]
    fn corrupt_flips_byte() {
        let mut d = RamDisk::new();
        d.write_file("/a", b"abc").unwrap();
        d.corrupt("/a", 1).unwrap();
        assert_ne!(d.read_file("/a").unwrap(), b"abc");
        assert!(d.corrupt("/missing", 0).is_err());
    }

    #[test]
    fn snapshot_restore_replays_state() {
        let mut d = RamDisk::new();
        d.write_file("/a", b"v1").unwrap();
        let snap = d.snapshot();
        d.write_file("/a", b"v2").unwrap();
        d.restore(snap);
        assert_eq!(d.read_file("/a").unwrap(), b"v1");
    }

    #[test]
    fn list_by_prefix() {
        let mut d = RamDisk::new();
        d.write_file("ssr/x/0", b"").unwrap();
        d.write_file("ssr/x/1", b"").unwrap();
        d.write_file("ssr/y/0", b"").unwrap();
        assert_eq!(d.list("ssr/x/"), vec!["ssr/x/0", "ssr/x/1"]);
    }
}
