//! Externalized credentials (§2.4).
//!
//! Within one Nexus, labels travel between labelstores without
//! cryptography: the kernel is the secure channel. To convince a
//! *remote* principal, a label is externalized into a certificate
//! chain rooted in the TPM:
//!
//! ```text
//! EK ──signs──▶ AIK ──signs──▶ NK (+ PCR composite)
//! NK ──signs──▶ "speaker says statement" (+ boot id)
//! ```
//!
//! which a verifier reads as
//! `TPM says kernel says labelstore says process says S`.
//! The verified statement is attributed to the fully-qualified
//! subprincipal `key:<NK>.boot-<id>.<speaker>`, so statements from
//! different kernels, boots, or processes never collide.

use crate::error::CoreError;
use crate::label::Label;
use ed25519_dalek::{Signature, Verifier, VerifyingKey};
use nexus_tpm::{AikCert, KeyAttestation};
use serde::{Deserialize, Serialize};

/// An externalized label: the X.509-analogue certificate chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Certificate {
    /// The in-kernel speaker name (e.g. `/proc/ipd/12`).
    pub speaker: String,
    /// The statement, NAL concrete syntax.
    pub statement: String,
    /// The boot-instantiation id (hash prefix of the NBK public key).
    pub boot_id: String,
    /// The kernel's NK public key.
    pub nk_pub: [u8; 32],
    /// TPM attestation binding NK to the measured kernel (PCRs).
    pub nk_attestation: KeyAttestation,
    /// AIK certificate chaining to the endorsement key.
    pub aik_cert: AikCert,
    /// NK's signature over (speaker, statement, boot id).
    pub signature: Vec<u8>,
}

impl Certificate {
    /// The byte string NK signs.
    pub fn message(speaker: &str, statement: &str, boot_id: &str) -> Vec<u8> {
        let mut m = b"nexus-label-cert".to_vec();
        for part in [speaker, statement, boot_id] {
            m.extend_from_slice(&(part.len() as u64).to_le_bytes());
            m.extend_from_slice(part.as_bytes());
        }
        m
    }

    /// Verify the full chain against a trusted endorsement key and
    /// return the label, re-attributed to the fully-qualified
    /// principal.
    pub fn verify(&self, trusted_ek: &VerifyingKey) -> Result<Label, CoreError> {
        // 1. EK vouches for the AIK.
        if !self.aik_cert.verify(trusted_ek) {
            return Err(CoreError::BadCertificate(
                "AIK certificate does not chain to the trusted EK".into(),
            ));
        }
        let aik = self
            .aik_cert
            .aik()
            .ok_or_else(|| CoreError::BadCertificate("malformed AIK key".into()))?;
        // 2. AIK vouches for NK under some PCR composite.
        if !self.nk_attestation.verify(&aik) {
            return Err(CoreError::BadCertificate(
                "NK attestation does not verify under the AIK".into(),
            ));
        }
        if self.nk_attestation.subject_pub != self.nk_pub {
            return Err(CoreError::BadCertificate(
                "attestation covers a different NK".into(),
            ));
        }
        // 3. NK vouches for the label.
        let nk = VerifyingKey::from_bytes(&self.nk_pub)
            .map_err(|e| CoreError::BadCertificate(format!("malformed NK key: {e}")))?;
        let msg = Self::message(&self.speaker, &self.statement, &self.boot_id);
        let sig = Signature::from_slice(&self.signature)
            .map_err(|e| CoreError::BadCertificate(format!("malformed signature: {e}")))?;
        nk.verify(&msg, &sig)
            .map_err(|_| CoreError::BadCertificate("NK signature invalid".into()))?;
        // 4. Reconstruct the label under the fully-qualified principal.
        let statement = nexus_nal::parse(&self.statement)?;
        let speaker = self.qualified_speaker()?;
        Ok(Label { speaker, statement })
    }

    /// The fully-qualified speaker principal:
    /// `key:<nk-hex>.boot-<id>.<local speaker>`.
    pub fn qualified_speaker(&self) -> Result<nexus_nal::Principal, CoreError> {
        let nk_hex = nexus_tpm::hash(&self.nk_pub).to_hex()[..16].to_string();
        let base = nexus_nal::Principal::key(nk_hex)
            .sub(format!("boot-{}", self.boot_id))
            .sub(self.speaker.clone());
        Ok(base)
    }

    /// Serialized size in bytes (for Figure 6's cost accounting).
    pub fn encoded_len(&self) -> usize {
        serde_json::to_vec(self).map(|v| v.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelStore;
    use crate::signer::KernelSigner;
    use nexus_nal::{parse, Principal};
    use nexus_tpm::Tpm;

    fn setup() -> (Tpm, KernelSigner) {
        let mut tpm = Tpm::new_with_seed(21);
        tpm.pcrs_mut().extend(4, b"nexus-kernel");
        tpm.take_ownership().unwrap();
        let signer = KernelSigner::generate(&mut tpm).unwrap();
        (tpm, signer)
    }

    #[test]
    fn externalize_import_round_trip() {
        let (tpm, signer) = setup();
        let mut store = LabelStore::new();
        let proc12 = Principal::name("/proc/ipd/12");
        let h = store.say(&proc12, "openFile(secret)").unwrap();
        let cert = store.externalize(h, &signer).unwrap();

        let mut remote = LabelStore::new();
        let h2 = remote.import(&cert, &tpm.ek_public()).unwrap();
        let label = remote.get(h2).unwrap();
        assert_eq!(label.statement, parse("openFile(secret)").unwrap());
        // Attribution is fully qualified — never the bare local name.
        assert!(label.speaker.to_string().starts_with("key:"));
        assert!(label.speaker.to_string().ends_with("./proc/ipd/12"));
    }

    #[test]
    fn tampered_statement_rejected() {
        let (tpm, signer) = setup();
        let mut store = LabelStore::new();
        let h = store.say(&Principal::name("A"), "good").unwrap();
        let mut cert = store.externalize(h, &signer).unwrap();
        cert.statement = "evil".into();
        let mut remote = LabelStore::new();
        assert!(matches!(
            remote.import(&cert, &tpm.ek_public()),
            Err(CoreError::BadCertificate(_))
        ));
    }

    #[test]
    fn tampered_speaker_rejected() {
        let (tpm, signer) = setup();
        let mut store = LabelStore::new();
        let h = store.say(&Principal::name("A"), "good").unwrap();
        let mut cert = store.externalize(h, &signer).unwrap();
        cert.speaker = "B".into();
        assert!(cert.verify(&tpm.ek_public()).is_err());
    }

    #[test]
    fn wrong_ek_rejected() {
        let (_tpm, signer) = setup();
        let mut store = LabelStore::new();
        let h = store.say(&Principal::name("A"), "good").unwrap();
        let cert = store.externalize(h, &signer).unwrap();
        let other = Tpm::new_with_seed(99);
        assert!(cert.verify(&other.ek_public()).is_err());
    }

    #[test]
    fn substituted_nk_rejected() {
        // Attacker substitutes their own NK but keeps the original
        // attestation: mismatch detected.
        let (tpm, signer) = setup();
        let mut store = LabelStore::new();
        let h = store.say(&Principal::name("A"), "good").unwrap();
        let mut cert = store.externalize(h, &signer).unwrap();
        cert.nk_pub = [7u8; 32];
        assert!(cert.verify(&tpm.ek_public()).is_err());
    }

    #[test]
    fn distinct_boots_yield_distinct_principals() {
        let mut tpm = Tpm::new_with_seed(22);
        tpm.take_ownership().unwrap();
        let s1 = KernelSigner::generate(&mut tpm).unwrap();
        let s2 = KernelSigner::generate(&mut tpm).unwrap();
        let mut store = LabelStore::new();
        let h = store.say(&Principal::name("A"), "x").unwrap();
        let c1 = store.externalize(h, &s1).unwrap();
        let c2 = store.externalize(h, &s2).unwrap();
        let p1 = c1.verify(&tpm.ek_public()).unwrap().speaker;
        let p2 = c2.verify(&tpm.ek_public()).unwrap().speaker;
        assert_ne!(p1, p2);
    }

    #[test]
    fn encoded_len_nonzero() {
        let (_tpm, signer) = setup();
        let mut store = LabelStore::new();
        let h = store.say(&Principal::name("A"), "x").unwrap();
        let cert = store.externalize(h, &signer).unwrap();
        assert!(cert.encoded_len() > 100);
    }
}
