//! Per-request proof storage.
//!
//! Clients install proofs ahead of time (`proof set` / `proof clr` in
//! Figure 6); the kernel fetches the stored proof for the
//! (subject, operation, object) tuple on each guarded invocation. The
//! kernel interposes on updates so it can invalidate the corresponding
//! decision-cache entry (§2.8).

use crate::decision_cache::CacheKey;
use crate::resource::{OpName, ResourceId};
use nexus_nal::{Principal, Proof};
use std::collections::HashMap;

/// Proofs keyed by access-control tuple.
#[derive(Debug, Default)]
pub struct ProofStore {
    proofs: HashMap<CacheKey, Proof>,
}

impl ProofStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or replace) the proof for a tuple. Returns the cache
    /// key so the caller can invalidate the decision cache.
    pub fn set_proof(
        &mut self,
        subject: Principal,
        operation: OpName,
        object: ResourceId,
        proof: Proof,
    ) -> CacheKey {
        let key = CacheKey {
            subject,
            operation,
            object,
        };
        self.proofs.insert(key.clone(), proof);
        key
    }

    /// Remove the proof for a tuple.
    pub fn clear_proof(
        &mut self,
        subject: &Principal,
        operation: &OpName,
        object: &ResourceId,
    ) -> Option<CacheKey> {
        let key = CacheKey {
            subject: subject.clone(),
            operation: operation.clone(),
            object: object.clone(),
        };
        self.proofs.remove(&key).map(|_| key)
    }

    /// Fetch the stored proof.
    pub fn get(
        &self,
        subject: &Principal,
        operation: &OpName,
        object: &ResourceId,
    ) -> Option<&Proof> {
        let key = CacheKey {
            subject: subject.clone(),
            operation: operation.clone(),
            object: object.clone(),
        };
        self.proofs.get(&key)
    }

    /// Number of stored proofs.
    pub fn len(&self) -> usize {
        self.proofs.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.proofs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_nal::{parse, Proof};

    #[test]
    fn set_get_clear() {
        let mut ps = ProofStore::new();
        let subject = Principal::name("alice");
        let op = OpName::from("read");
        let obj = ResourceId::file("/x");
        let proof = Proof::assume(parse("A says p").unwrap());
        ps.set_proof(subject.clone(), op.clone(), obj.clone(), proof.clone());
        assert_eq!(ps.get(&subject, &op, &obj), Some(&proof));
        assert!(ps.clear_proof(&subject, &op, &obj).is_some());
        assert!(ps.get(&subject, &op, &obj).is_none());
        assert!(ps.clear_proof(&subject, &op, &obj).is_none());
    }

    #[test]
    fn proofs_are_per_tuple() {
        let mut ps = ProofStore::new();
        let a = Principal::name("a");
        let b = Principal::name("b");
        let op = OpName::from("read");
        let obj = ResourceId::file("/x");
        let pa = Proof::assume(parse("A says p").unwrap());
        let pb = Proof::assume(parse("B says q").unwrap());
        ps.set_proof(a.clone(), op.clone(), obj.clone(), pa.clone());
        ps.set_proof(b.clone(), op.clone(), obj.clone(), pb.clone());
        assert_eq!(ps.get(&a, &op, &obj), Some(&pa));
        assert_eq!(ps.get(&b, &op, &obj), Some(&pb));
        assert_eq!(ps.len(), 2);
    }
}
