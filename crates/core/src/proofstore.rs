//! Per-request proof storage.
//!
//! Clients install proofs ahead of time (`proof set` / `proof clr` in
//! Figure 6); the kernel fetches the stored proof for the
//! (subject, operation, object) tuple on each guarded invocation. The
//! kernel interposes on updates so it can invalidate the corresponding
//! decision-cache entry (§2.8).

use crate::decision_cache::CacheKey;
use crate::resource::{OpName, ResourceId};
use crate::snapshot::Snapshot;
use nexus_nal::{Principal, Proof};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Proofs keyed by access-control tuple. Internally synchronized so
/// the kernel can install and fetch proofs through `&self` from many
/// threads. The table sits behind an epoch-stamped [`Snapshot`]
/// (values are `Arc`ed so re-publication is shallow): fetches on the
/// authorization path never block behind a `set_proof` in progress.
/// Writers bump the public epoch first, then mutate and publish, so
/// the kernel's validate-after-read check (epoch compare +
/// [`ProofStore::version`] compare) catches both completed and
/// in-flight proof changes.
#[derive(Debug, Default)]
pub struct ProofStore {
    proofs: Snapshot<HashMap<CacheKey, Arc<Proof>>>,
    /// Bumped on every update — consumed by the kernel to detect
    /// concurrent proof changes when filling the decision cache.
    epoch: AtomicU64,
}

impl ProofStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or replace) the proof for a tuple. Returns the cache
    /// key so the caller can invalidate the decision cache.
    pub fn set_proof(
        &self,
        subject: Principal,
        operation: OpName,
        object: ResourceId,
        proof: Proof,
    ) -> CacheKey {
        let key = CacheKey {
            subject,
            operation,
            object,
        };
        self.proofs.update(|proofs| {
            // Epoch first, inside the writer lock (see struct docs).
            self.epoch.fetch_add(1, Ordering::Relaxed);
            proofs.insert(key.clone(), Arc::new(proof));
        });
        key
    }

    /// Remove the proof for a tuple.
    pub fn clear_proof(
        &self,
        subject: &Principal,
        operation: &OpName,
        object: &ResourceId,
    ) -> Option<CacheKey> {
        let key = CacheKey {
            subject: subject.clone(),
            operation: operation.clone(),
            object: object.clone(),
        };
        self.proofs.update(|proofs| {
            proofs.remove(&key).map(|_| {
                self.epoch.fetch_add(1, Ordering::Relaxed);
                key.clone()
            })
        })
    }

    /// Update epoch (monotonic; bumped on every set/clear).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Snapshot publication version (monotone; moves on every
    /// publish). Compared alongside [`ProofStore::epoch`] by the
    /// kernel's read-stamp validation: the version catches a writer
    /// that bumped the epoch but had not yet published when the
    /// reader sampled the table.
    pub fn version(&self) -> u64 {
        self.proofs.version()
    }

    /// Fetch the stored proof (cloned out of the store, so nothing is
    /// held while the guard checks it).
    pub fn get(
        &self,
        subject: &Principal,
        operation: &OpName,
        object: &ResourceId,
    ) -> Option<Proof> {
        let key = CacheKey {
            subject: subject.clone(),
            operation: operation.clone(),
            object: object.clone(),
        };
        self.proofs
            .read(|proofs, _| proofs.get(&key).map(|p| (**p).clone()))
    }

    /// Apply `f` to the stored proof for a tuple *without cloning it
    /// out* — and without taking any lock: `f` borrows the proof
    /// straight out of the current snapshot. `None` when no proof is
    /// stored. Used by the pipeline's external-authority
    /// classification, which only needs to scan the proof's leaves.
    pub fn inspect<R>(
        &self,
        subject: &Principal,
        operation: &OpName,
        object: &ResourceId,
        f: impl FnOnce(&Proof) -> R,
    ) -> Option<R> {
        let key = CacheKey {
            subject: subject.clone(),
            operation: operation.clone(),
            object: object.clone(),
        };
        self.proofs.read(|proofs, _| proofs.get(&key).map(|p| f(p)))
    }

    /// Number of stored proofs.
    pub fn len(&self) -> usize {
        self.proofs.read(|proofs, _| proofs.len())
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_nal::{parse, Proof};

    #[test]
    fn set_get_clear() {
        let ps = ProofStore::new();
        let subject = Principal::name("alice");
        let op = OpName::from("read");
        let obj = ResourceId::file("/x");
        let proof = Proof::assume(parse("A says p").unwrap());
        ps.set_proof(subject.clone(), op.clone(), obj.clone(), proof.clone());
        assert_eq!(ps.get(&subject, &op, &obj), Some(proof.clone()));
        assert!(ps.clear_proof(&subject, &op, &obj).is_some());
        assert!(ps.get(&subject, &op, &obj).is_none());
        assert!(ps.clear_proof(&subject, &op, &obj).is_none());
    }

    #[test]
    fn proofs_are_per_tuple() {
        let ps = ProofStore::new();
        let a = Principal::name("a");
        let b = Principal::name("b");
        let op = OpName::from("read");
        let obj = ResourceId::file("/x");
        let pa = Proof::assume(parse("A says p").unwrap());
        let pb = Proof::assume(parse("B says q").unwrap());
        ps.set_proof(a.clone(), op.clone(), obj.clone(), pa.clone());
        ps.set_proof(b.clone(), op.clone(), obj.clone(), pb.clone());
        assert_eq!(ps.get(&a, &op, &obj), Some(pa.clone()));
        assert_eq!(ps.get(&b, &op, &obj), Some(pb.clone()));
        assert_eq!(ps.len(), 2);
    }

    #[test]
    fn seqlock_proof_reads_race_installs_without_blocking_or_tearing() {
        // Readers race a writer that keeps replacing the stored proof
        // between two well-formed values; a read must return one of
        // them (or None before the first install) — never a mix — and
        // any observed install implies the epoch already moved.
        let ps = std::sync::Arc::new(ProofStore::new());
        let subject = Principal::name("alice");
        let op = OpName::from("read");
        let obj = ResourceId::file("/x");
        let pa = Proof::assume(parse("A says p").unwrap());
        let pb = Proof::assume(parse("B says q").unwrap());
        let writer = {
            let ps = std::sync::Arc::clone(&ps);
            let (subject, op, obj) = (subject.clone(), op.clone(), obj.clone());
            let (pa, pb) = (pa.clone(), pb.clone());
            std::thread::spawn(move || {
                for i in 0..2_000 {
                    let p = if i % 2 == 0 { pa.clone() } else { pb.clone() };
                    ps.set_proof(subject.clone(), op.clone(), obj.clone(), p);
                }
            })
        };
        for _ in 0..10_000 {
            if let Some(got) = ps.get(&subject, &op, &obj) {
                assert!(got == pa || got == pb, "torn proof read: {got:?}");
                assert!(ps.epoch() >= 1);
            }
        }
        writer.join().unwrap();
    }
}
