//! Per-request proof storage.
//!
//! Clients install proofs ahead of time (`proof set` / `proof clr` in
//! Figure 6); the kernel fetches the stored proof for the
//! (subject, operation, object) tuple on each guarded invocation. The
//! kernel interposes on updates so it can invalidate the corresponding
//! decision-cache entry (§2.8).

use crate::decision_cache::CacheKey;
use crate::resource::{OpName, ResourceId};
use nexus_nal::{Principal, Proof};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Proofs keyed by access-control tuple. Internally synchronized so
/// the kernel can install and fetch proofs through `&self` from many
/// threads.
#[derive(Debug, Default)]
pub struct ProofStore {
    proofs: RwLock<HashMap<CacheKey, Proof>>,
    /// Bumped on every update — consumed by the kernel to detect
    /// concurrent proof changes when filling the decision cache.
    epoch: AtomicU64,
}

impl ProofStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or replace) the proof for a tuple. Returns the cache
    /// key so the caller can invalidate the decision cache.
    pub fn set_proof(
        &self,
        subject: Principal,
        operation: OpName,
        object: ResourceId,
        proof: Proof,
    ) -> CacheKey {
        let key = CacheKey {
            subject,
            operation,
            object,
        };
        let mut proofs = self.proofs.write();
        self.epoch.fetch_add(1, Ordering::Relaxed);
        proofs.insert(key.clone(), proof);
        key
    }

    /// Remove the proof for a tuple.
    pub fn clear_proof(
        &self,
        subject: &Principal,
        operation: &OpName,
        object: &ResourceId,
    ) -> Option<CacheKey> {
        let key = CacheKey {
            subject: subject.clone(),
            operation: operation.clone(),
            object: object.clone(),
        };
        let mut proofs = self.proofs.write();
        proofs.remove(&key).map(|_| {
            self.epoch.fetch_add(1, Ordering::Relaxed);
            key
        })
    }

    /// Update epoch (monotonic; bumped on every set/clear).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Fetch the stored proof (cloned out of the store, so no lock is
    /// held while the guard checks it).
    pub fn get(
        &self,
        subject: &Principal,
        operation: &OpName,
        object: &ResourceId,
    ) -> Option<Proof> {
        let key = CacheKey {
            subject: subject.clone(),
            operation: operation.clone(),
            object: object.clone(),
        };
        self.proofs.read().get(&key).cloned()
    }

    /// Apply `f` to the stored proof for a tuple *without cloning it
    /// out* (the read lock is held for the duration of `f`, so keep
    /// it cheap and lock-free). `None` when no proof is stored. Used
    /// by the pipeline's external-authority classification, which
    /// only needs to scan the proof's leaves.
    pub fn inspect<R>(
        &self,
        subject: &Principal,
        operation: &OpName,
        object: &ResourceId,
        f: impl FnOnce(&Proof) -> R,
    ) -> Option<R> {
        let key = CacheKey {
            subject: subject.clone(),
            operation: operation.clone(),
            object: object.clone(),
        };
        self.proofs.read().get(&key).map(f)
    }

    /// Number of stored proofs.
    pub fn len(&self) -> usize {
        self.proofs.read().len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.proofs.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_nal::{parse, Proof};

    #[test]
    fn set_get_clear() {
        let ps = ProofStore::new();
        let subject = Principal::name("alice");
        let op = OpName::from("read");
        let obj = ResourceId::file("/x");
        let proof = Proof::assume(parse("A says p").unwrap());
        ps.set_proof(subject.clone(), op.clone(), obj.clone(), proof.clone());
        assert_eq!(ps.get(&subject, &op, &obj), Some(proof.clone()));
        assert!(ps.clear_proof(&subject, &op, &obj).is_some());
        assert!(ps.get(&subject, &op, &obj).is_none());
        assert!(ps.clear_proof(&subject, &op, &obj).is_none());
    }

    #[test]
    fn proofs_are_per_tuple() {
        let ps = ProofStore::new();
        let a = Principal::name("a");
        let b = Principal::name("b");
        let op = OpName::from("read");
        let obj = ResourceId::file("/x");
        let pa = Proof::assume(parse("A says p").unwrap());
        let pb = Proof::assume(parse("B says q").unwrap());
        ps.set_proof(a.clone(), op.clone(), obj.clone(), pa.clone());
        ps.set_proof(b.clone(), op.clone(), obj.clone(), pb.clone());
        assert_eq!(ps.get(&a, &op, &obj), Some(pa.clone()));
        assert_eq!(ps.get(&b, &op, &obj), Some(pb.clone()));
        assert_eq!(ps.len(), 2);
    }
}
