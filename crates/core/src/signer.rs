//! The kernel's signing identity (§2.4).
//!
//! On first boot the Nexus uses the TPM to create a *Nexus key* NK
//! bound to the boot-time PCR values, plus a per-boot *Nexus boot key*
//! NBK identifying the boot instantiation. Processes are named as
//! subprincipals of NK‖hash(NBK_pub). Externalized labels are signed
//! with NK and accompanied by the TPM's attestation of NK, so a remote
//! verifier reconstructs the chain
//! `TPM says kernel says labelstore says process says S`.

use crate::credential::Certificate;
use crate::label::Label;
use ed25519_dalek::{Signer, SigningKey, VerifyingKey};
use nexus_tpm::{AikCert, KeyAttestation, PcrSelection, Tpm};

/// Holds NK/NBK and the TPM attestation artifacts needed to
/// externalize labels.
pub struct KernelSigner {
    nk: SigningKey,
    nbk: SigningKey,
    nk_attestation: KeyAttestation,
    aik_cert: AikCert,
}

impl KernelSigner {
    /// Create the kernel identity on an owned TPM: generates NK and
    /// NBK and has the TPM certify NK under the current boot-chain
    /// composite.
    pub fn generate(tpm: &mut Tpm) -> Result<KernelSigner, nexus_tpm::TpmError> {
        let mut seed = [0u8; 32];
        tpm.get_random(&mut seed);
        let nk = SigningKey::from_bytes(&seed);
        tpm.get_random(&mut seed);
        let nbk = SigningKey::from_bytes(&seed);
        let nk_attestation =
            tpm.certify_key(nk.verifying_key().to_bytes(), &PcrSelection::boot_chain())?;
        let aik_cert = tpm.aik_cert()?;
        Ok(KernelSigner {
            nk,
            nbk,
            nk_attestation,
            aik_cert,
        })
    }

    /// NK public key.
    pub fn nk_public(&self) -> VerifyingKey {
        self.nk.verifying_key()
    }

    /// Hex digest of the NBK public key — the boot-instantiation id
    /// appearing in fully-qualified principal names.
    pub fn boot_id(&self) -> String {
        let d = nexus_tpm::hash(self.nbk.verifying_key().as_bytes());
        d.to_hex()[..16].to_string()
    }

    /// The TPM's attestation binding NK to the measured kernel.
    pub fn nk_attestation(&self) -> &KeyAttestation {
        &self.nk_attestation
    }

    /// The AIK certificate chaining to the EK.
    pub fn aik_cert(&self) -> &AikCert {
        &self.aik_cert
    }

    /// Sign a label into an externalized certificate.
    pub fn sign_label(&self, label: &Label) -> Certificate {
        let statement = label.statement.to_string();
        let speaker = label.speaker.to_string();
        let boot_id = self.boot_id();
        let msg = Certificate::message(&speaker, &statement, &boot_id);
        let signature = self.nk.sign(&msg).to_bytes().to_vec();
        Certificate {
            speaker,
            statement,
            boot_id,
            nk_pub: self.nk.verifying_key().to_bytes(),
            nk_attestation: self.nk_attestation.clone(),
            aik_cert: self.aik_cert.clone(),
            signature,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_produces_attested_nk() {
        let mut tpm = Tpm::new_with_seed(11);
        tpm.pcrs_mut().extend(4, b"nexus-kernel");
        tpm.take_ownership().unwrap();
        let signer = KernelSigner::generate(&mut tpm).unwrap();
        let aik = signer.aik_cert().aik().unwrap();
        assert!(signer.nk_attestation().verify(&aik));
        assert!(signer.aik_cert().verify(&tpm.ek_public()));
        assert_eq!(signer.boot_id().len(), 16);
    }

    #[test]
    fn distinct_boots_have_distinct_ids() {
        let mut tpm = Tpm::new_with_seed(12);
        tpm.take_ownership().unwrap();
        let a = KernelSigner::generate(&mut tpm).unwrap();
        let b = KernelSigner::generate(&mut tpm).unwrap();
        assert_ne!(a.boot_id(), b.boot_id());
    }

    #[test]
    fn requires_owned_tpm() {
        let mut tpm = Tpm::new_with_seed(13);
        assert!(KernelSigner::generate(&mut tpm).is_err());
    }
}
