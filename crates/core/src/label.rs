//! Labels and labelstores (§2.2–2.3).
//!
//! A label is an attributed statement `P says S` created by invoking
//! the `say` system call. Because `say` traps into the kernel over a
//! secure channel, the kernel can attribute the statement to the
//! calling process *without any cryptography* — this is the heart of
//! the paper's "cryptography avoidance" (Figure 6's three orders of
//! magnitude). The labelstore holds labels; they can be transferred
//! between stores, externalized into signed certificates, imported
//! back, and deleted.

use crate::credential::Certificate;
use crate::error::CoreError;
use crate::signer::KernelSigner;
use nexus_nal::{parse, Formula, Principal};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Handle to a label within a labelstore (returned by `say`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LabelHandle(pub u64);

/// An attributed, unforgeable statement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Label {
    /// The speaker the kernel attributed the statement to.
    pub speaker: Principal,
    /// The statement made.
    pub statement: Formula,
}

impl Label {
    /// The label as a NAL formula: `speaker says statement`.
    pub fn formula(&self) -> Formula {
        self.statement.clone().says(self.speaker.clone())
    }
}

/// A kernel-maintained store of labels belonging to one principal
/// (typically one process).
#[derive(Debug, Default)]
pub struct LabelStore {
    labels: HashMap<u64, Label>,
    next: u64,
    /// Cached label shape (see [`LabelStore::shape`]): a commutative
    /// (wrapping-sum) combination of per-label hashes, updated in
    /// O(1) on every mutation so submission-time reads are one atomic
    /// load and `say` stays O(1) in store size. Behind an `Arc` so
    /// the kernel's hot-path index ([`LabelStore::shape_handle`]) can
    /// read the live shape without holding whatever lock owns the
    /// store itself.
    shape: Arc<AtomicU64>,
    /// Memoized credential-set snapshot for [`LabelStore::formulas_snapshot`]:
    /// rebuilt lazily after a mutation, shared by `Arc` so the
    /// evaluation path clones a pointer, not the formula vector.
    formulas_cache: Mutex<Option<Arc<Vec<Formula>>>>,
    /// Bumped on every label mutation; returned alongside the
    /// snapshot so consumers can validate after reading.
    formulas_version: AtomicU64,
}

/// The per-label contribution to a store's shape: a hash of the
/// normalized formula, combined commutatively so insertion order
/// never matters and delete exactly cancels insert.
fn shape_of(label: &Label) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    nexus_nal::check::normalize(&label.formula()).hash(&mut h);
    h.finish()
}

impl LabelStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The `say` system call: attribute `statement` (NAL concrete
    /// syntax) to `caller` and deposit the label. The kernel enforces
    /// that a process speaks only in its own name — or that of its
    /// subprincipals (a process may mint statements for objects it
    /// implements, just as the filesystem speaks for `FS./dir/file`).
    pub fn say(&mut self, caller: &Principal, statement: &str) -> Result<LabelHandle, CoreError> {
        let f = parse(statement)?;
        self.say_parsed(caller, caller.clone(), f)
    }

    /// `say` with an explicit speaker, still subject to the
    /// caller-speaks-for-speaker rule.
    pub fn say_as(
        &mut self,
        caller: &Principal,
        speaker: Principal,
        statement: &str,
    ) -> Result<LabelHandle, CoreError> {
        let f = parse(statement)?;
        self.say_parsed(caller, speaker, f)
    }

    /// `say` with a pre-parsed statement.
    pub fn say_parsed(
        &mut self,
        caller: &Principal,
        speaker: Principal,
        statement: Formula,
    ) -> Result<LabelHandle, CoreError> {
        if &speaker != caller && !caller.is_ancestor_of(&speaker) {
            return Err(CoreError::NotSpeaker {
                caller: caller.to_string(),
                speaker: speaker.to_string(),
            });
        }
        Ok(self.insert(Label { speaker, statement }))
    }

    /// Insert a label the kernel itself vouches for (e.g. the
    /// `Nexus says IPC.x speaksfor /proc/ipd/y` port-binding labels).
    /// Not reachable from user programs.
    pub fn insert(&mut self, label: Label) -> LabelHandle {
        let h = self.next;
        self.next += 1;
        self.shape.fetch_add(shape_of(&label), Ordering::Relaxed);
        self.labels.insert(h, label);
        self.invalidate_formulas();
        LabelHandle(h)
    }

    /// Drop the memoized credential-set snapshot after a mutation.
    fn invalidate_formulas(&mut self) {
        self.formulas_version.fetch_add(1, Ordering::Release);
        *self.formulas_cache.lock() = None;
    }

    /// Read a label.
    pub fn get(&self, h: LabelHandle) -> Result<&Label, CoreError> {
        self.labels.get(&h.0).ok_or(CoreError::NoSuchLabel(h.0))
    }

    /// Delete a label.
    pub fn delete(&mut self, h: LabelHandle) -> Result<Label, CoreError> {
        let label = self
            .labels
            .remove(&h.0)
            .ok_or(CoreError::NoSuchLabel(h.0))?;
        self.shape.fetch_sub(shape_of(&label), Ordering::Relaxed);
        self.invalidate_formulas();
        Ok(label)
    }

    /// Move a label to another store (e.g. handing a credential to a
    /// peer process).
    pub fn transfer(
        &mut self,
        h: LabelHandle,
        to: &mut LabelStore,
    ) -> Result<LabelHandle, CoreError> {
        let label = self.delete(h)?;
        Ok(to.insert(label))
    }

    /// Externalize a label into a signed certificate chain
    /// ("TPM says kernel says labelstore says process says S", §2.4).
    /// This is the expensive path: asymmetric signing.
    pub fn externalize(
        &self,
        h: LabelHandle,
        signer: &KernelSigner,
    ) -> Result<Certificate, CoreError> {
        let label = self.get(h)?;
        Ok(signer.sign_label(label))
    }

    /// Import an externalized certificate: verify the chain back to
    /// the TPM's endorsement key and deposit the label spoken by the
    /// fully-qualified principal. The expensive path again:
    /// asymmetric verification.
    pub fn import(
        &mut self,
        cert: &Certificate,
        trusted_ek: &ed25519_dalek::VerifyingKey,
    ) -> Result<LabelHandle, CoreError> {
        let label = cert.verify(trusted_ek)?;
        Ok(self.insert(label))
    }

    /// All label formulas in the store — what gets handed to the guard
    /// as the credential set.
    pub fn formulas(&self) -> Vec<Formula> {
        (*self.formulas_snapshot().0).clone()
    }

    /// The credential set as a shared, memoized snapshot plus the
    /// label-mutation version it corresponds to. The first call after
    /// a mutation rebuilds (and sorts) the vector; subsequent calls
    /// clone an `Arc`. The evaluation path prepares every request
    /// through this, so a wide credential set is cloned per *mutation*
    /// rather than per request.
    pub fn formulas_snapshot(&self) -> (Arc<Vec<Formula>>, u64) {
        let version = self.formulas_version.load(Ordering::Acquire);
        let mut cache = self.formulas_cache.lock();
        let arc = match &*cache {
            Some(arc) => Arc::clone(arc),
            None => {
                let mut v: Vec<(u64, Formula)> =
                    self.labels.iter().map(|(h, l)| (*h, l.formula())).collect();
                v.sort_by_key(|(h, _)| *h);
                let arc = Arc::new(v.into_iter().map(|(_, f)| f).collect::<Vec<_>>());
                *cache = Some(Arc::clone(&arc));
                arc
            }
        };
        (arc, version)
    }

    /// The store's *label shape*: an order-insensitive fingerprint of
    /// the held (normalized) formulas. Two processes holding the same
    /// credentials shape identically; the async pipeline coalesces on
    /// it so batches maximize prover frontier sharing. A hint only —
    /// collisions affect batching, never verdicts.
    pub fn shape(&self) -> u64 {
        self.shape.load(Ordering::Relaxed)
    }

    /// A shared handle onto the live shape word, for the kernel's
    /// submission-path index: the shape can then be read with one
    /// atomic load, without acquiring the lock that owns the store
    /// (the ISSUE-6 satellite bugfix — `LabelStore::shape()` used to
    /// be reached through `ipds.read()` on every submission).
    pub fn shape_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.shape)
    }

    /// Find the handle of a label by content (lowest handle wins when
    /// duplicates exist). Content resolution cannot distinguish a
    /// replicated label from an identically-worded locally-said one,
    /// so the replication layer tracks the exact handle each remote
    /// mint produced and uses this lookup only as a fallback for
    /// untracked records.
    pub fn find_handle(&self, speaker: &Principal, statement: &Formula) -> Option<LabelHandle> {
        self.labels
            .iter()
            .filter(|(_, l)| &l.speaker == speaker && &l.statement == statement)
            .map(|(h, _)| *h)
            .min()
            .map(LabelHandle)
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if no labels.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_nal::parse;

    fn p(n: &str) -> Principal {
        Principal::name(n)
    }

    #[test]
    fn say_attributes_to_caller() {
        let mut store = LabelStore::new();
        let proc12 = p("/proc/ipd/12");
        let h = store.say(&proc12, "openFile(secret)").unwrap();
        let label = store.get(h).unwrap();
        assert_eq!(label.speaker, proc12);
        assert_eq!(
            label.formula(),
            parse("/proc/ipd/12 says openFile(secret)").unwrap()
        );
    }

    #[test]
    fn say_rejects_impersonation() {
        let mut store = LabelStore::new();
        let attacker = p("/proc/ipd/66");
        let victim = p("/proc/ipd/12");
        let err = store.say_as(&attacker, victim, "ok");
        assert!(matches!(err, Err(CoreError::NotSpeaker { .. })));
    }

    #[test]
    fn say_allows_subprincipal_speech() {
        // The filesystem may speak for files it implements.
        let mut store = LabelStore::new();
        let fs = p("FS");
        let file = fs.sub("/dir/file");
        let h = store.say_as(&fs, file.clone(), "created").unwrap();
        assert_eq!(store.get(h).unwrap().speaker, file);
    }

    #[test]
    fn delete_and_missing_handles() {
        let mut store = LabelStore::new();
        let h = store.say(&p("A"), "x").unwrap();
        store.delete(h).unwrap();
        assert!(matches!(store.get(h), Err(CoreError::NoSuchLabel(_))));
        assert!(matches!(store.delete(h), Err(CoreError::NoSuchLabel(_))));
    }

    #[test]
    fn transfer_moves_between_stores() {
        let mut a = LabelStore::new();
        let mut b = LabelStore::new();
        let h = a.say(&p("A"), "x").unwrap();
        let h2 = a.transfer(h, &mut b).unwrap();
        assert!(a.is_empty());
        assert_eq!(b.get(h2).unwrap().formula(), parse("A says x").unwrap());
    }

    #[test]
    fn formulas_sorted_by_insertion() {
        let mut store = LabelStore::new();
        store.say(&p("A"), "one").unwrap();
        store.say(&p("A"), "two").unwrap();
        let fs = store.formulas();
        assert_eq!(fs[0], parse("A says one").unwrap());
        assert_eq!(fs[1], parse("A says two").unwrap());
    }

    #[test]
    fn shape_is_order_insensitive_and_tracks_mutation() {
        let mut a = LabelStore::new();
        let mut b = LabelStore::new();
        assert_eq!(a.shape(), b.shape(), "empty stores shape identically");
        a.say(&p("A"), "one").unwrap();
        let ha = a.say(&p("A"), "two").unwrap();
        b.say(&p("A"), "two").unwrap();
        let hb = b.say(&p("A"), "one").unwrap();
        assert_eq!(a.shape(), b.shape(), "insertion order must not matter");
        a.delete(ha).unwrap();
        assert_ne!(a.shape(), b.shape());
        b.delete(hb).unwrap();
        assert_ne!(a.shape(), b.shape(), "different residues differ");
        // Delete exactly cancels insert.
        let before = a.shape();
        let hx = a.say(&p("A"), "x").unwrap();
        a.delete(hx).unwrap();
        assert_eq!(a.shape(), before);
        // Normalized spellings shape identically.
        let mut c = LabelStore::new();
        let mut d = LabelStore::new();
        c.say(&p("A"), "not x").unwrap();
        d.say(&p("A"), "x -> false").unwrap();
        assert_eq!(c.shape(), d.shape());
    }

    #[test]
    fn seqlock_shape_handle_tracks_mutations_without_the_store() {
        let mut store = LabelStore::new();
        let handle = store.shape_handle();
        assert_eq!(handle.load(Ordering::Relaxed), 0);
        let h = store.say(&p("A"), "x").unwrap();
        assert_eq!(handle.load(Ordering::Relaxed), store.shape());
        assert_ne!(handle.load(Ordering::Relaxed), 0);
        store.delete(h).unwrap();
        assert_eq!(handle.load(Ordering::Relaxed), 0, "delete cancels insert");
    }

    #[test]
    fn seqlock_formulas_snapshot_memoizes_and_invalidates() {
        let mut store = LabelStore::new();
        store.say(&p("A"), "one").unwrap();
        let (s1, v1) = store.formulas_snapshot();
        let (s2, v2) = store.formulas_snapshot();
        assert!(Arc::ptr_eq(&s1, &s2), "unchanged store must share the Arc");
        assert_eq!(v1, v2);
        store.say(&p("A"), "two").unwrap();
        let (s3, v3) = store.formulas_snapshot();
        assert!(v3 > v2, "mutation must move the version");
        assert_eq!(s3.len(), 2);
        assert_eq!(
            *s1,
            vec![parse("A says one").unwrap()],
            "old snapshot intact"
        );
        assert_eq!(store.formulas(), *s3);
    }

    #[test]
    fn find_handle_matches_content_and_prefers_lowest() {
        let mut store = LabelStore::new();
        let h1 = store.say(&p("CA"), "ok").unwrap();
        store.say(&p("CA"), "other").unwrap();
        let h3 = store.say(&p("CA"), "ok").unwrap();
        let stmt = parse("ok").unwrap();
        assert_eq!(store.find_handle(&p("CA"), &stmt), Some(h1));
        store.delete(h1).unwrap();
        assert_eq!(store.find_handle(&p("CA"), &stmt), Some(h3));
        store.delete(h3).unwrap();
        assert_eq!(store.find_handle(&p("CA"), &stmt), None);
        assert_eq!(store.find_handle(&p("CB"), &stmt), None);
    }

    #[test]
    fn parse_errors_propagate() {
        let mut store = LabelStore::new();
        assert!(matches!(
            store.say(&p("A"), "says says"),
            Err(CoreError::Parse(_))
        ));
    }
}
