//! Guards: proof-checking reference monitors (§2.6, §2.9).
//!
//! A guard receives (subject, operation, object, proof, labels),
//! instantiates the goal formula for the operation, checks the proof,
//! validates every leaf against the supplied credentials or a
//! registered authority, and answers allow/deny together with a
//! *cacheability* bit: decisions whose proofs rest only on
//! indefinitely-valid labels may be stored in the kernel decision
//! cache; any authority dependence makes the decision uncacheable.
//!
//! The guard keeps its own cache of proof-checking work (§2.9):
//! structural soundness of a (proof, goal) pair never changes, so it
//! is memoized; *credential matching* — do the leaves hold right now?
//! — is re-done on every request, which is exactly the paper's split
//! (Figure 4's `no cred` case costs ~20% over `pass` even when
//! everything else is cached).

use crate::authority::AuthorityRegistry;
use crate::error::CoreError;
use crate::resource::{OpName, ResourceId};
use nexus_nal::check::{check, normalize, Assumptions};
use nexus_nal::{
    BatchGoal, CheckError, Formula, Principal, Proof, ProofSearch, ProveOutcome, ProverConfig,
    Subst, Term,
};
use parking_lot::Mutex;
use sha2::{Digest as _, Sha256};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// A guarded access request.
#[derive(Debug, Clone)]
pub struct AccessRequest<'a> {
    /// The requesting principal.
    pub subject: &'a Principal,
    /// The operation being attempted.
    pub operation: &'a OpName,
    /// The resource operated on.
    pub object: &'a ResourceId,
    /// The client-supplied proof.
    pub proof: Option<&'a Proof>,
    /// The client's credentials (label formulas), already
    /// authenticated by the kernel (labelstore) or by certificate
    /// verification at import time.
    pub labels: &'a [Formula],
}

/// Why a request was denied.
#[derive(Debug, Clone, PartialEq)]
pub enum DenyReason {
    /// No proof was supplied (and none stored).
    NoProof,
    /// The proof is structurally unsound.
    Unsound(CheckError),
    /// The proof is sound but proves something other than the goal.
    WrongConclusion {
        /// What the proof establishes.
        proved: Box<Formula>,
        /// What the goal requires.
        goal: Box<Formula>,
    },
    /// A proof leaf is not among the supplied credentials and no
    /// authority covers it.
    MissingCredential(Formula),
    /// An authority was consulted and said no.
    AuthorityDenied(Formula),
}

/// The guard's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Allow the operation?
    pub allow: bool,
    /// May the kernel cache this decision? True only when the proof's
    /// leaves are all indefinitely-valid labels.
    pub cacheable: bool,
    /// Deny rationale (None when allowed).
    pub reason: Option<DenyReason>,
}

impl Decision {
    fn allow(cacheable: bool) -> Decision {
        Decision {
            allow: true,
            cacheable,
            reason: None,
        }
    }

    fn deny(cacheable: bool, reason: DenyReason) -> Decision {
        Decision {
            allow: false,
            cacheable,
            reason: Some(reason),
        }
    }
}

/// Guard cache configuration (§2.9).
#[derive(Debug, Clone, Copy)]
pub struct GuardCacheConfig {
    /// Maximum number of memoized (proof, goal) checks.
    pub capacity: usize,
    /// Per-root-principal quota, limiting exhaustion attacks by
    /// incessant spawning of subprincipals: quotas attach to the root
    /// of the process tree.
    pub per_principal_quota: usize,
}

impl Default for GuardCacheConfig {
    fn default() -> Self {
        GuardCacheConfig {
            capacity: 1024,
            per_principal_quota: 256,
        }
    }
}

/// Guard statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardStats {
    /// Total checks performed.
    pub checks: u64,
    /// Proof-checking work skipped via the guard cache.
    pub cache_hits: u64,
    /// Full proof checks.
    pub cache_misses: u64,
    /// Authority consultations.
    pub authority_queries: u64,
    /// Entries evicted from the guard cache.
    pub evictions: u64,
    /// Checks served through [`Guard::check_batch`] that shared an
    /// amortized goal normalization with the rest of their batch.
    pub batched: u64,
}

/// Statistics of the guard's batch-prover session (the auto-prove
/// path for requests arriving without a stored or supplied proof).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProverStats {
    /// Subgoals answered from the prover memo instead of searched.
    pub memo_hits: u64,
    /// Memoizable subgoals that had to be searched.
    pub memo_misses: u64,
    /// Frontier-sharing groups formed across batches (one proof
    /// search per group).
    pub batch_groups: u64,
    /// Batch members whose entire proof was spliced from their
    /// group leader's search.
    pub batch_shared: u64,
    /// Session flushes forced by epoch movement (credential/label
    /// movement invalidates the memo exactly like the decision cache).
    pub flushes: u64,
    /// Auto-prove goals that yielded a proof.
    pub proved: u64,
    /// Auto-prove goals the bounded search gave up on.
    pub failed: u64,
}

/// The guard's persistent [`ProofSearch`] session: one memo table
/// shared by every auto-proving batch, dropped whenever the observed
/// epoch moves.
struct ProverSession {
    epoch: u64,
    search: ProofSearch,
}

#[derive(Clone)]
struct CachedCheck {
    /// Structural check outcome; on success carries the conclusion
    /// and its normalization (normalizing is allocation-heavy, so it
    /// is memoized alongside soundness).
    result: Result<(Formula, Formula), CheckError>,
    /// The proof's credential leaves (cloned out so credential
    /// matching can run without re-walking the proof).
    leaves: Vec<Formula>,
    owner: Principal,
}

/// The guard's memoization state, updated as one unit under a lock.
#[derive(Default)]
struct GuardCache {
    entries: HashMap<(u64, u64), CachedCheck>,
    /// Insertion order per owning root principal, for preferential
    /// eviction.
    order: HashMap<Principal, VecDeque<(u64, u64)>>,
}

/// The guard. Internally synchronized: `check` takes `&self`, so one
/// guard can serve concurrent requests (the memo cache is a mutex,
/// statistics are atomics, and everything else is immutable
/// configuration).
pub struct Guard {
    cfg: GuardCacheConfig,
    cache: Mutex<GuardCache>,
    checks: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    authority_queries: AtomicU64,
    evictions: AtomicU64,
    batched: AtomicU64,
    prover: Mutex<Option<ProverSession>>,
    prover_hits: AtomicU64,
    prover_misses: AtomicU64,
    prover_groups: AtomicU64,
    prover_shared: AtomicU64,
    prover_flushes: AtomicU64,
    prover_proved: AtomicU64,
    prover_failed: AtomicU64,
}

impl Guard {
    /// Guard with default cache configuration.
    pub fn new() -> Self {
        Self::with_config(GuardCacheConfig::default())
    }

    /// Guard with explicit cache configuration.
    pub fn with_config(cfg: GuardCacheConfig) -> Self {
        Guard {
            cfg,
            cache: Mutex::new(GuardCache::default()),
            checks: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            authority_queries: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            batched: AtomicU64::new(0),
            prover: Mutex::new(None),
            prover_hits: AtomicU64::new(0),
            prover_misses: AtomicU64::new(0),
            prover_groups: AtomicU64::new(0),
            prover_shared: AtomicU64::new(0),
            prover_flushes: AtomicU64::new(0),
            prover_proved: AtomicU64::new(0),
            prover_failed: AtomicU64::new(0),
        }
    }

    /// Instantiate a goal formula for a request: `$subject`,
    /// `$operation`, `$object` bind to the request parameters.
    pub fn instantiate_goal(goal: &Formula, req: &AccessRequest<'_>) -> Formula {
        let s = Subst::new()
            .bind_principal("subject", req.subject.clone())
            .bind("operation", Term::sym(req.operation.0.clone()))
            .bind("object", Term::sym(req.object.0.clone()));
        s.apply(goal)
    }

    /// Evaluate a request against a goal formula.
    ///
    /// `authorities` supplies the registry used to validate leaves
    /// that reference dynamic state.
    pub fn check(
        &self,
        req: &AccessRequest<'_>,
        goal: &Formula,
        authorities: &AuthorityRegistry,
    ) -> Decision {
        let goal = Self::instantiate_goal(goal, req);
        let norm_goal = normalize(&goal);
        self.check_instantiated(req, &goal, &norm_goal, authorities)
    }

    /// Evaluate a whole batch of requests that share one goal formula
    /// (the async pipeline's coalesced batches): when the goal is
    /// ground — mentions none of `$subject`/`$operation`/`$object` —
    /// instantiation is the identity and its NAL normalization is
    /// computed once for the batch instead of once per request.
    /// Non-ground goals fall back to per-request evaluation.
    pub fn check_batch(
        &self,
        reqs: &[AccessRequest<'_>],
        goal: &Formula,
        authorities: &AuthorityRegistry,
    ) -> Vec<Decision> {
        if goal.is_ground() && reqs.len() > 1 {
            let norm_goal = normalize(goal);
            self.batched.fetch_add(reqs.len() as u64, Ordering::Relaxed);
            reqs.iter()
                .map(|req| self.check_instantiated(req, goal, &norm_goal, authorities))
                .collect()
        } else {
            reqs.iter()
                .map(|req| self.check(req, goal, authorities))
                .collect()
        }
    }

    /// The shared evaluation core: `goal` is already instantiated for
    /// the request and `norm_goal` is its normalization (amortized by
    /// [`Guard::check_batch`]).
    fn check_instantiated(
        &self,
        req: &AccessRequest<'_>,
        goal: &Formula,
        norm_goal: &Formula,
        authorities: &AuthorityRegistry,
    ) -> Decision {
        self.checks.fetch_add(1, Ordering::Relaxed);
        // Trivial goals need no proof: `true` is the "default ALLOW"
        // policy of Figure 4's `no goal` case.
        if *norm_goal == Formula::True {
            return Decision::allow(true);
        }
        let proof = match req.proof {
            Some(p) => p,
            // A missing proof is a static denial: installing a proof
            // later invalidates the decision-cache entry (§2.8), so
            // the kernel may cache it.
            None => return Decision::deny(true, DenyReason::NoProof),
        };

        // 1. Structural check (memoized, including the conclusion's
        //    normalization).
        let (result, leaves) = self.check_structure(proof, req.subject);
        let (concl, norm_concl) = match result {
            Ok(c) => c,
            // Unsoundness is a property of the proof alone: cacheable
            // (a proof update invalidates the entry).
            Err(e) => return Decision::deny(true, DenyReason::Unsound(e)),
        };
        if norm_concl != *norm_goal {
            // Depends only on (proof, goal): cacheable — setgoal
            // invalidates the subregion, proof update the entry.
            return Decision::deny(
                true,
                DenyReason::WrongConclusion {
                    proved: Box::new(concl),
                    goal: Box::new(goal.clone()),
                },
            );
        }

        // 2. Credential matching — never cached (§2.9).
        let label_set = Assumptions::from_iter(req.labels.iter());
        let mut cacheable = true;
        for leaf in &leaves {
            if label_set.contains(leaf) {
                continue;
            }
            // Authority fallback: leaf must be `P says S` with a
            // registered authority for P.
            if let Formula::Says(p, s) = leaf {
                if let Some(answer) = authorities.query(p, s) {
                    self.authority_queries.fetch_add(1, Ordering::Relaxed);
                    cacheable = false; // dynamic state ⇒ uncacheable
                    if answer {
                        continue;
                    }
                    return Decision::deny(false, DenyReason::AuthorityDenied(leaf.clone()));
                }
            }
            return Decision::deny(false, DenyReason::MissingCredential(leaf.clone()));
        }
        Decision::allow(cacheable)
    }

    /// Structural proof check with memoization. Soundness of a proof
    /// never changes, so the (proof, goal-independent) result — the
    /// conclusion plus its normalization — and the leaf list are
    /// cached keyed by proof digest.
    fn check_structure(
        &self,
        proof: &Proof,
        subject: &Principal,
    ) -> (Result<(Formula, Formula), CheckError>, Vec<Formula>) {
        let key = (Self::digest_proof(proof), 0u64);
        if let Some(hit) = self.cache.lock().entries.get(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return (hit.result.clone(), hit.leaves.clone());
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        // Validate rule applications with the proof's own leaves
        // admitted; credential presence is checked separately. The
        // lock is *not* held across the check itself — concurrent
        // checks of the same fresh proof just both do the work and
        // insert identical entries.
        let leaves: Vec<Formula> = proof.leaves().into_iter().cloned().collect();
        let asm = Assumptions::from_iter(leaves.iter());
        let result = check(proof, &asm).map(|concl| {
            let norm = normalize(&concl);
            (concl, norm)
        });
        self.insert_cached(
            key,
            CachedCheck {
                result: result.clone(),
                leaves: leaves.clone(),
                owner: subject.root().clone(),
            },
        );
        (result, leaves)
    }

    fn digest_proof(proof: &Proof) -> u64 {
        let bytes = serde_json::to_vec(proof).unwrap_or_default();
        let mut h = Sha256::new();
        h.update(&bytes);
        let out = h.finalize();
        u64::from_le_bytes(out[..8].try_into().expect("sha256 is 32 bytes"))
    }

    fn insert_cached(&self, key: (u64, u64), value: CachedCheck) {
        let owner = value.owner.clone();
        let mut cache = self.cache.lock();
        // Concurrent misses on the same fresh proof race to insert
        // the same memo; the loser must not push a duplicate key into
        // the eviction queue (it would corrupt quota accounting).
        if cache.entries.contains_key(&key) {
            return;
        }
        // Per-principal quota: evict the same principal's oldest.
        let own_queue_len = cache.order.get(&owner).map(|q| q.len()).unwrap_or(0);
        if own_queue_len >= self.cfg.per_principal_quota {
            self.evict_from(&mut cache, &owner);
        } else if cache.entries.len() >= self.cfg.capacity {
            // Prefer evicting the requesting principal's own entries
            // (§2.9), falling back to the heaviest user.
            if own_queue_len > 0 {
                self.evict_from(&mut cache, &owner);
            } else if let Some(heaviest) = cache
                .order
                .iter()
                .max_by_key(|(_, q)| q.len())
                .map(|(p, _)| p.clone())
            {
                self.evict_from(&mut cache, &heaviest);
            }
        }
        cache.order.entry(owner).or_default().push_back(key);
        cache.entries.insert(key, value);
    }

    fn evict_from(&self, cache: &mut GuardCache, owner: &Principal) {
        if let Some(queue) = cache.order.get_mut(owner) {
            if let Some(old) = queue.pop_front() {
                cache.entries.remove(&old);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            if queue.is_empty() {
                cache.order.remove(owner);
            }
        }
    }

    /// Auto-prove a batch of (goal, credentials) pairs — requests that
    /// arrived without a stored or supplied proof — through the
    /// guard's persistent [`ProofSearch`] session, so identical
    /// subgoal derivations across (and beyond) the batch are computed
    /// once and spliced into each request's proof.
    ///
    /// `epoch` is the caller's credential/label-movement epoch: when
    /// it differs from the one the session last observed, the memo
    /// table is flushed before proving — the prover-cache analog of
    /// the decision cache's epoch-validated fills. (Reuse is already
    /// fingerprint- and leaf-guarded inside the session; the flush
    /// additionally guarantees nothing from a dead epoch is ever
    /// consulted.) A `cfg` differing from the session's current one
    /// also resets the session, so changed limits always take effect.
    /// Returns one optional proof per input, in order.
    ///
    /// Concurrency: the session sits behind one mutex held for the
    /// whole batch search, so concurrent auto-proving serializes —
    /// a deliberate trade. The memo makes every post-first search of
    /// a (goal, credential) shape near-free, the decision-cache and
    /// stored-/supplied-proof paths never take this lock, and the
    /// search is budget-bounded ([`ProverConfig::max_subgoals`]), so
    /// the wait is bounded too. Workloads dominated by *distinct*
    /// proof searches can opt out per kernel config
    /// (`NexusConfig::batch_prover = false` restores the lock-free
    /// one-shot prover).
    pub fn prove_batch(
        &self,
        epoch: u64,
        goals: &[BatchGoal<'_>],
        cfg: ProverConfig,
    ) -> Vec<Option<Proof>> {
        self.prove_batch_explained(epoch, goals, cfg)
            .into_iter()
            .map(|o| o.proof)
            .collect()
    }

    /// [`prove_batch`](Self::prove_batch), but each failure also
    /// carries the refuted subgoal the search got stuck on (see
    /// [`ProveOutcome`]) — the raw material for audit-journal denial
    /// events.
    pub fn prove_batch_explained(
        &self,
        epoch: u64,
        goals: &[BatchGoal<'_>],
        cfg: ProverConfig,
    ) -> Vec<ProveOutcome> {
        let mut slot = self.prover.lock();
        let session = match slot.as_mut() {
            Some(s) if s.epoch == epoch && s.search.config() == cfg => s,
            Some(s) => {
                // Epoch moved (credentials migrated) or the caller
                // changed the search limits: start a fresh memo either
                // way — stale entries must not serve the new epoch,
                // and old entries may reflect old limits.
                if s.epoch != epoch {
                    self.prover_flushes.fetch_add(1, Ordering::Relaxed);
                }
                s.epoch = epoch;
                s.search = ProofSearch::new(cfg);
                s
            }
            None => {
                *slot = Some(ProverSession {
                    epoch,
                    search: ProofSearch::new(cfg),
                });
                slot.as_mut().expect("just installed")
            }
        };
        let before = session.search.stats();
        let out = session.search.prove_batch_explained(goals);
        let after = session.search.stats();
        self.prover_hits
            .fetch_add(after.memo_hits - before.memo_hits, Ordering::Relaxed);
        self.prover_misses
            .fetch_add(after.memo_misses - before.memo_misses, Ordering::Relaxed);
        self.prover_groups
            .fetch_add(after.batch_groups - before.batch_groups, Ordering::Relaxed);
        self.prover_shared
            .fetch_add(after.batch_shared - before.batch_shared, Ordering::Relaxed);
        let proved = out.iter().filter(|p| p.proof.is_some()).count() as u64;
        self.prover_proved.fetch_add(proved, Ordering::Relaxed);
        self.prover_failed
            .fetch_add(out.len() as u64 - proved, Ordering::Relaxed);
        out
    }

    /// Prover-session statistics snapshot.
    pub fn prover_stats(&self) -> ProverStats {
        ProverStats {
            memo_hits: self.prover_hits.load(Ordering::Relaxed),
            memo_misses: self.prover_misses.load(Ordering::Relaxed),
            batch_groups: self.prover_groups.load(Ordering::Relaxed),
            batch_shared: self.prover_shared.load(Ordering::Relaxed),
            flushes: self.prover_flushes.load(Ordering::Relaxed),
            proved: self.prover_proved.load(Ordering::Relaxed),
            failed: self.prover_failed.load(Ordering::Relaxed),
        }
    }

    /// Number of subgoal entries currently memoized by the prover
    /// session (0 when no session has started or after a flush).
    pub fn prover_memo_len(&self) -> usize {
        self.prover
            .lock()
            .as_ref()
            .map(|s| s.search.memo_len())
            .unwrap_or(0)
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> GuardStats {
        GuardStats {
            checks: self.checks.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            authority_queries: self.authority_queries.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            batched: self.batched.load(Ordering::Relaxed),
        }
    }

    /// Current number of memoized checks.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().entries.len()
    }

    /// Drop all memoized state (it is soft state; correctness is
    /// unaffected, §2.9).
    pub fn flush_cache(&self) {
        let mut cache = self.cache.lock();
        cache.entries.clear();
        cache.order.clear();
    }
}

impl Default for Guard {
    fn default() -> Self {
        Self::new()
    }
}

/// Convenience used by callers that assemble everything themselves:
/// run a one-shot guard check without memoization.
pub fn check_once(
    req: &AccessRequest<'_>,
    goal: &Formula,
    authorities: &AuthorityRegistry,
) -> Result<Decision, CoreError> {
    let g = Guard::with_config(GuardCacheConfig {
        capacity: 1,
        per_principal_quota: 1,
    });
    Ok(g.check(req, goal, authorities))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::{AuthorityKind, FnAuthority};
    use nexus_nal::{parse, prove, ProverConfig};
    use std::sync::Arc;

    fn subject() -> Principal {
        Principal::name("/proc/ipd/12")
    }

    fn req_parts() -> (OpName, ResourceId) {
        (OpName::from("read"), ResourceId::file("/secret"))
    }

    fn build_req<'a>(
        subject: &'a Principal,
        op: &'a OpName,
        obj: &'a ResourceId,
        proof: Option<&'a Proof>,
        labels: &'a [Formula],
    ) -> AccessRequest<'a> {
        AccessRequest {
            subject,
            operation: op,
            object: obj,
            proof,
            labels,
        }
    }

    #[test]
    fn pass_with_label_backed_proof_is_cacheable() {
        let s = subject();
        let (op, obj) = req_parts();
        let labels = vec![parse("Owner says ok").unwrap()];
        let goal = parse("Owner says ok").unwrap();
        let proof = prove(&goal, &labels, ProverConfig::default()).unwrap();
        let guard = Guard::new();
        let req = build_req(&s, &op, &obj, Some(&proof), &labels);
        let d = guard.check(&req, &goal, &AuthorityRegistry::new());
        assert!(d.allow);
        assert!(d.cacheable);
    }

    #[test]
    fn no_proof_denied() {
        let s = subject();
        let (op, obj) = req_parts();
        let goal = parse("Owner says ok").unwrap();
        let guard = Guard::new();
        let req = build_req(&s, &op, &obj, None, &[]);
        let d = guard.check(&req, &goal, &AuthorityRegistry::new());
        assert!(!d.allow);
        assert_eq!(d.reason, Some(DenyReason::NoProof));
    }

    #[test]
    fn true_goal_allows_without_proof() {
        let s = subject();
        let (op, obj) = req_parts();
        let guard = Guard::new();
        let req = build_req(&s, &op, &obj, None, &[]);
        let d = guard.check(&req, &Formula::True, &AuthorityRegistry::new());
        assert!(d.allow);
        assert!(d.cacheable);
    }

    #[test]
    fn unsound_proof_denied() {
        let s = subject();
        let (op, obj) = req_parts();
        let goal = parse("Owner says ok").unwrap();
        // AndElimL applied to a non-conjunction.
        let bad = Proof::AndElimL(Box::new(Proof::assume(parse("Owner says ok").unwrap())));
        let labels = vec![parse("Owner says ok").unwrap()];
        let guard = Guard::new();
        let req = build_req(&s, &op, &obj, Some(&bad), &labels);
        let d = guard.check(&req, &goal, &AuthorityRegistry::new());
        assert!(!d.allow);
        assert!(matches!(d.reason, Some(DenyReason::Unsound(_))));
    }

    #[test]
    fn wrong_conclusion_denied() {
        let s = subject();
        let (op, obj) = req_parts();
        let goal = parse("Owner says ok").unwrap();
        let labels = vec![parse("Owner says other").unwrap()];
        let proof = Proof::assume(parse("Owner says other").unwrap());
        let guard = Guard::new();
        let req = build_req(&s, &op, &obj, Some(&proof), &labels);
        let d = guard.check(&req, &goal, &AuthorityRegistry::new());
        assert!(!d.allow);
        assert!(matches!(d.reason, Some(DenyReason::WrongConclusion { .. })));
    }

    #[test]
    fn missing_credential_denied() {
        let s = subject();
        let (op, obj) = req_parts();
        let goal = parse("Owner says ok").unwrap();
        let proof = Proof::assume(parse("Owner says ok").unwrap());
        // Proof references a label the client does not hold.
        let guard = Guard::new();
        let req = build_req(&s, &op, &obj, Some(&proof), &[]);
        let d = guard.check(&req, &goal, &AuthorityRegistry::new());
        assert!(!d.allow);
        assert!(matches!(d.reason, Some(DenyReason::MissingCredential(_))));
    }

    #[test]
    fn authority_backed_leaf_allows_but_uncacheable() {
        let s = subject();
        let (op, obj) = req_parts();
        let goal = parse("NTP says TimeNow < 20110319").unwrap();
        let proof = Proof::assume(goal.clone());
        let reg = AuthorityRegistry::new();
        reg.register(
            Principal::name("NTP"),
            Arc::new(FnAuthority(|s: &Formula| {
                s.to_string() == "TimeNow < 20110319"
            })),
            AuthorityKind::External,
        );
        let guard = Guard::new();
        let req = build_req(&s, &op, &obj, Some(&proof), &[]);
        let d = guard.check(&req, &goal, &reg);
        assert!(d.allow);
        assert!(!d.cacheable, "authority dependence must be uncacheable");
    }

    #[test]
    fn authority_denial() {
        let s = subject();
        let (op, obj) = req_parts();
        let goal = parse("NTP says TimeNow < 20110319").unwrap();
        let proof = Proof::assume(goal.clone());
        let reg = AuthorityRegistry::new();
        reg.register(
            Principal::name("NTP"),
            Arc::new(FnAuthority(|_| false)),
            AuthorityKind::External,
        );
        let guard = Guard::new();
        let req = build_req(&s, &op, &obj, Some(&proof), &[]);
        let d = guard.check(&req, &goal, &reg);
        assert!(!d.allow);
        assert!(matches!(d.reason, Some(DenyReason::AuthorityDenied(_))));
    }

    #[test]
    fn goal_variables_instantiate_from_request() {
        let s = subject();
        let (op, obj) = req_parts();
        // §2.5's goal shape: the subject itself must request the open.
        let goal = parse("$subject says openFile($object)").unwrap();
        let labels = vec![parse("/proc/ipd/12 says openFile(file:/secret)").unwrap()];
        let proof = Proof::assume(labels[0].clone());
        let guard = Guard::new();
        let req = build_req(&s, &op, &obj, Some(&proof), &labels);
        let d = guard.check(&req, &goal, &AuthorityRegistry::new());
        assert!(d.allow, "reason: {:?}", d.reason);

        // A different subject's label must not satisfy it.
        let mallory = Principal::name("/proc/ipd/66");
        let req2 = build_req(&mallory, &op, &obj, Some(&proof), &labels);
        let d2 = guard.check(&req2, &goal, &AuthorityRegistry::new());
        assert!(!d2.allow);
    }

    #[test]
    fn guard_cache_hits_on_repeat() {
        let s = subject();
        let (op, obj) = req_parts();
        let goal = parse("Owner says ok").unwrap();
        let labels = vec![goal.clone()];
        let proof = Proof::assume(goal.clone());
        let guard = Guard::new();
        let req = build_req(&s, &op, &obj, Some(&proof), &labels);
        guard.check(&req, &goal, &AuthorityRegistry::new());
        guard.check(&req, &goal, &AuthorityRegistry::new());
        guard.check(&req, &goal, &AuthorityRegistry::new());
        let st = guard.stats();
        assert_eq!(st.cache_misses, 1);
        assert_eq!(st.cache_hits, 2);
    }

    #[test]
    fn credential_matching_not_cached() {
        // Same proof, but credentials disappear between calls: the
        // second call must deny even though the structure check hits
        // the cache.
        let s = subject();
        let (op, obj) = req_parts();
        let goal = parse("Owner says ok").unwrap();
        let labels = vec![goal.clone()];
        let proof = Proof::assume(goal.clone());
        let guard = Guard::new();
        let req = build_req(&s, &op, &obj, Some(&proof), &labels);
        assert!(guard.check(&req, &goal, &AuthorityRegistry::new()).allow);
        let req2 = build_req(&s, &op, &obj, Some(&proof), &[]);
        let d = guard.check(&req2, &goal, &AuthorityRegistry::new());
        assert!(!d.allow);
        assert_eq!(guard.stats().cache_hits, 1);
    }

    #[test]
    fn per_principal_quota_and_eviction() {
        let cfg = GuardCacheConfig {
            capacity: 8,
            per_principal_quota: 2,
        };
        let guard = Guard::with_config(cfg);
        let (op, obj) = req_parts();
        let reg = AuthorityRegistry::new();
        // One principal floods the cache with distinct proofs.
        let flooder = Principal::name("flood").sub("child");
        for i in 0..6 {
            let f = parse(&format!("flood says stmt{i}")).unwrap();
            let labels = vec![f.clone()];
            let proof = Proof::assume(f.clone());
            let req = build_req(&flooder, &op, &obj, Some(&proof), &labels);
            guard.check(&req, &f, &reg);
        }
        // Quota (keyed on the *root* of the process tree) caps the
        // flooder at 2 entries.
        assert!(guard.cache_len() <= 2, "len={}", guard.cache_len());
        assert!(guard.stats().evictions >= 4);
    }

    #[test]
    fn batch_agrees_with_single_checks_on_ground_goal() {
        let guard = Guard::new();
        let reg = AuthorityRegistry::new();
        let (op, obj) = req_parts();
        let goal = parse("Owner says ok").unwrap();
        let proof = Proof::assume(goal.clone());
        let holder = Principal::name("holder");
        let empty_handed = Principal::name("empty");
        let labels = vec![goal.clone()];
        let no_labels: Vec<Formula> = Vec::new();
        let reqs = vec![
            build_req(&holder, &op, &obj, Some(&proof), &labels),
            build_req(&empty_handed, &op, &obj, Some(&proof), &no_labels),
            build_req(&holder, &op, &obj, None, &labels),
        ];
        let batch = guard.check_batch(&reqs, &goal, &reg);
        let singles: Vec<Decision> = reqs.iter().map(|r| guard.check(r, &goal, &reg)).collect();
        assert_eq!(batch, singles);
        assert!(batch[0].allow);
        assert!(!batch[1].allow);
        assert_eq!(batch[2].reason, Some(DenyReason::NoProof));
        assert_eq!(guard.stats().batched, 3, "ground goal must amortize");
    }

    #[test]
    fn batch_with_goal_variables_falls_back_per_request() {
        let guard = Guard::new();
        let reg = AuthorityRegistry::new();
        let (op, obj) = req_parts();
        let goal = parse("$subject says read(file:/secret)").unwrap();
        let alice = Principal::name("alice");
        let bob = Principal::name("bob");
        let alice_labels = vec![parse("alice says read(file:/secret)").unwrap()];
        let alice_proof = Proof::assume(alice_labels[0].clone());
        let reqs = vec![
            build_req(&alice, &op, &obj, Some(&alice_proof), &alice_labels),
            build_req(&bob, &op, &obj, Some(&alice_proof), &alice_labels),
        ];
        let batch = guard.check_batch(&reqs, &goal, &reg);
        assert!(batch[0].allow, "reason: {:?}", batch[0].reason);
        assert!(!batch[1].allow, "bob must not ride alice's instantiation");
        assert_eq!(
            guard.stats().batched,
            0,
            "non-ground goals are not amortized"
        );
    }

    #[test]
    fn batch_true_goal_allows_everything() {
        let guard = Guard::new();
        let reg = AuthorityRegistry::new();
        let (op, obj) = req_parts();
        let s1 = Principal::name("a");
        let s2 = Principal::name("b");
        let reqs = vec![
            build_req(&s1, &op, &obj, None, &[]),
            build_req(&s2, &op, &obj, None, &[]),
        ];
        for d in guard.check_batch(&reqs, &Formula::True, &reg) {
            assert!(d.allow);
            assert!(d.cacheable);
        }
        assert_eq!(guard.stats().checks, 2);
    }

    #[test]
    fn prove_batch_shares_one_search_across_identical_requests() {
        let guard = Guard::new();
        let goal = parse("FileServer says ok").unwrap();
        let creds = vec![
            parse("Owner speaksfor FileServer").unwrap(),
            parse("Owner says ok").unwrap(),
        ];
        let batch: Vec<BatchGoal<'_>> = (0..8)
            .map(|_| BatchGoal {
                goal: &goal,
                credentials: &creds,
            })
            .collect();
        let out = guard.prove_batch(1, &batch, ProverConfig::default());
        assert!(out.iter().all(|p| p.is_some()));
        let st = guard.prover_stats();
        assert_eq!(st.batch_groups, 1);
        assert_eq!(st.batch_shared, 7);
        assert_eq!(st.proved, 8);
        // A second batch under the same epoch rides the session memo.
        let hits_before = st.memo_hits;
        let out = guard.prove_batch(1, &batch[..2], ProverConfig::default());
        assert!(out.iter().all(|p| p.is_some()));
        assert!(guard.prover_stats().memo_hits > hits_before);
    }

    #[test]
    fn prover_config_changes_take_effect_within_an_epoch() {
        let guard = Guard::new();
        let goal = parse("B says (C says (A says p))").unwrap();
        let creds = vec![parse("A says p").unwrap()];
        let shallow = ProverConfig {
            max_depth: 1,
            ..ProverConfig::default()
        };
        let batch = [BatchGoal {
            goal: &goal,
            credentials: &creds,
        }];
        assert!(guard.prove_batch(1, &batch, shallow)[0].is_none());
        // Same epoch, deeper limits: the session must be rebuilt with
        // the new config (and its shallow refutation dropped).
        assert!(
            guard.prove_batch(1, &batch, ProverConfig::default())[0].is_some(),
            "changed prover limits must take effect"
        );
        assert_eq!(
            guard.prover_stats().flushes,
            0,
            "a config change is not an epoch flush"
        );
    }

    #[test]
    fn prover_memo_flushed_when_epoch_moves() {
        // The prover-cache analog of the decision cache's setgoal
        // sabotage: a subgoal memoized while a credential was held
        // must not survive the epoch that saw it move away.
        let guard = Guard::new();
        let goal = parse("Owner says ok").unwrap();
        let held = vec![
            parse("Gate speaksfor Owner").unwrap(),
            parse("Gate says ok").unwrap(),
        ];
        let out = guard.prove_batch(
            1,
            &[BatchGoal {
                goal: &goal,
                credentials: &held,
            }],
            ProverConfig::default(),
        );
        assert!(out[0].is_some());
        assert!(guard.prover_memo_len() > 0, "session must have memoized");
        // The credential moves away; the epoch moves with it.
        let moved = vec![parse("Gate speaksfor Owner").unwrap()];
        let out = guard.prove_batch(
            2,
            &[BatchGoal {
                goal: &goal,
                credentials: &moved,
            }],
            ProverConfig::default(),
        );
        assert!(out[0].is_none(), "stale memoized proof must not be reused");
        assert_eq!(guard.prover_stats().flushes, 1);
        // Same epoch again: no further flush, refutation memo answers.
        let out = guard.prove_batch(
            2,
            &[BatchGoal {
                goal: &goal,
                credentials: &moved,
            }],
            ProverConfig::default(),
        );
        assert!(out[0].is_none());
        assert_eq!(guard.prover_stats().flushes, 1);
    }

    #[test]
    fn flush_cache_is_safe() {
        let s = subject();
        let (op, obj) = req_parts();
        let goal = parse("Owner says ok").unwrap();
        let labels = vec![goal.clone()];
        let proof = Proof::assume(goal.clone());
        let guard = Guard::new();
        let req = build_req(&s, &op, &obj, Some(&proof), &labels);
        assert!(guard.check(&req, &goal, &AuthorityRegistry::new()).allow);
        guard.flush_cache();
        assert!(guard.check(&req, &goal, &AuthorityRegistry::new()).allow);
    }
}
