//! # Logical attestation
//!
//! The primary contribution of *Logical Attestation: An Authorization
//! Architecture for Trustworthy Computing* (Sirer et al., SOSP 2011):
//! an OS authorization architecture in which every trust decision is a
//! checked inference in NAL over unforgeable, attributable statements.
//!
//! The moving parts, mirroring §2 of the paper:
//!
//! * **Labels** ([`label`]) — `P says S` statements created with the
//!   `say` system call and held in kernel **labelstores**; unforgeable
//!   because the kernel attributes them over a secure channel, with no
//!   cryptography on the fast path.
//! * **Credentials** ([`credential`]) — bitstring encodings of labels.
//!   System-backed credentials are labelstore references; externalized
//!   credentials are X.509-style certificate chains rooted in the TPM
//!   ("TPM says kernel says labelstore says process says S").
//! * **Goals** ([`goal`]) — per-(resource, operation) NAL formulas set
//!   with `setgoal`; absence of a goal means the default policy
//!   `resource-manager.object says operation`.
//! * **Guards** ([`guard`]) — reference monitors that check
//!   client-supplied proofs against goal formulas, validate leaf
//!   credentials, consult **authorities** ([`authority`]) for dynamic
//!   state, and report whether the decision is cacheable.
//! * **Decision cache** ([`decision_cache`]) — the kernel-side cache
//!   indexed by (subject, operation, object) with subregion-hashed
//!   invalidation (§2.8).
//! * **Guard cache** ([`guard`]) — proof-checking memoization with
//!   per-principal quotas and preferential eviction (§2.9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `CoreError` embeds the offending formulas/proof context so denials
// are auditable; error paths are cold, so the large variants are a
// deliberate trade.
#![allow(clippy::result_large_err)]

pub mod authority;
pub mod credential;
pub mod decision_cache;
pub mod error;
pub mod goal;
pub mod guard;
pub mod label;
pub mod proofstore;
pub mod resource;
pub mod signer;
pub mod snapshot;

pub use authority::{Authority, AuthorityKind, AuthorityRegistry, FnAuthority};
pub use credential::Certificate;
pub use decision_cache::{CacheKey, DecisionCache, DecisionCacheConfig};
pub use error::CoreError;
pub use goal::{GoalEntry, GoalStore};
pub use guard::{
    AccessRequest, Decision, DenyReason, Guard, GuardCacheConfig, GuardStats, ProverStats,
};
pub use label::{Label, LabelHandle, LabelStore};
pub use proofstore::ProofStore;
pub use resource::{OpName, ResourceId};
pub use signer::KernelSigner;
pub use snapshot::Snapshot;
