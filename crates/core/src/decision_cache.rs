//! The kernel decision cache (§2.8).
//!
//! Guard invocations are expensive (16–20× a cached decision, Figure
//! 4), so the kernel caches previously observed guard decisions in a
//! hashtable indexed by the access-control tuple (subject, operation,
//! object). Only decisions the guard marked cacheable — proofs with no
//! authority dependence — are stored.
//!
//! Invalidation uses the paper's subregion trick: the hash function is
//! designed so all entries with the same (operation, object) land in
//! the same *subregion* of the table. A `setgoal` then clears one
//! subregion rather than the whole cache; a proof update clears a
//! single entry. Subregion size is configurable and trades off
//! invalidation cost against collision rate.
//!
//! The cache is internally synchronized so the kernel can consult it
//! from many threads through `&self`: each subregion is its own
//! mutex-protected shard (a lookup and an invalidation touching
//! different (operation, object) pairs never contend), statistics are
//! atomics, and only `resize` takes the table-wide write lock.

use crate::resource::{OpName, ResourceId};
use nexus_nal::Principal;
use parking_lot::{Mutex, RwLock};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// The access-control tuple the cache is indexed by.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The requesting principal.
    pub subject: Principal,
    /// The operation.
    pub operation: OpName,
    /// The resource.
    pub object: ResourceId,
}

/// Cache configuration.
#[derive(Debug, Clone, Copy)]
pub struct DecisionCacheConfig {
    /// Total number of slots (rounded up to a multiple of
    /// `subregion_slots`).
    pub total_slots: usize,
    /// Slots per (operation, object) subregion.
    pub subregion_slots: usize,
    /// Set associativity *within* a subregion: 1 is the paper's
    /// direct-mapped table (a colliding subject displaces on insert);
    /// 2 gives each subject-hash set two ways with least-recently-hit
    /// eviction, trading a slightly dearer probe for fewer conflict
    /// displacements (the ROADMAP's Figure-4 hit-rate experiment).
    /// Clamped to `1..=subregion_slots`.
    pub ways: usize,
}

impl Default for DecisionCacheConfig {
    fn default() -> Self {
        DecisionCacheConfig {
            total_slots: 4096,
            subregion_slots: 16,
            ways: 1,
        }
    }
}

#[derive(Debug, Clone)]
struct Slot {
    key: CacheKey,
    allow: bool,
    /// Last-touched stamp (global counter) for within-set eviction.
    stamp: u64,
}

/// Statistics counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionCacheStats {
    /// Lookups that found a valid entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries cleared by invalidation.
    pub invalidations: u64,
    /// Insertions that displaced a colliding entry.
    pub collisions: u64,
}

/// The sharded slot array: one mutex-protected shard per subregion.
struct Table {
    shards: Vec<Mutex<Vec<Option<Slot>>>>,
    subregion_slots: usize,
    ways: usize,
}

impl Table {
    fn new(cfg: DecisionCacheConfig) -> Self {
        let subregion_slots = cfg.subregion_slots.max(1);
        let ways = cfg.ways.clamp(1, subregion_slots);
        let subregions = cfg
            .total_slots
            .max(subregion_slots)
            .div_ceil(subregion_slots);
        Table {
            shards: (0..subregions)
                .map(|_| Mutex::new(vec![None; subregion_slots]))
                .collect(),
            subregion_slots,
            ways,
        }
    }

    fn subregion_of(&self, operation: &OpName, object: &ResourceId) -> usize {
        (DecisionCache::hash64(&(operation, object)) as usize) % self.shards.len()
    }

    /// (shard index, first slot of the subject's set) for a key; the
    /// set spans `self.ways` consecutive slots.
    fn position_of(&self, key: &CacheKey) -> (usize, usize) {
        let sub = self.subregion_of(&key.operation, &key.object);
        let sets = self.subregion_slots / self.ways;
        let set = (DecisionCache::hash64(&key.subject) as usize) % sets.max(1);
        (sub, set * self.ways)
    }
}

/// The decision cache: a direct-mapped table partitioned into
/// per-subregion shards, safe to share across threads.
pub struct DecisionCache {
    table: RwLock<Table>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    collisions: AtomicU64,
    /// Monotonic touch stamp for within-set LRU (associative mode).
    clock: AtomicU64,
}

impl DecisionCache {
    /// Build with the given configuration.
    pub fn new(cfg: DecisionCacheConfig) -> Self {
        DecisionCache {
            table: RwLock::new(Table::new(cfg)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
            clock: AtomicU64::new(0),
        }
    }

    fn hash64<T: Hash>(v: &T) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    /// Look up a cached decision.
    pub fn lookup(&self, key: &CacheKey) -> Option<bool> {
        let table = self.table.read();
        let (sub, base) = table.position_of(key);
        let mut shard = table.shards[sub].lock();
        for slot in shard[base..base + table.ways].iter_mut().flatten() {
            if &slot.key == key {
                // Stamps only matter for within-set eviction; keep the
                // direct-mapped hot path free of the shared counter.
                if table.ways > 1 {
                    slot.stamp = self.clock.fetch_add(1, Ordering::Relaxed);
                }
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(slot.allow);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Insert a (cacheable) decision.
    pub fn insert(&self, key: CacheKey, allow: bool) {
        self.insert_if(key, allow, || true);
    }

    /// Insert a decision only if `valid` still holds *inside* the
    /// shard lock. This closes the lost-invalidation race: an
    /// invalidation (e.g. `setgoal`) that bumped its epoch before the
    /// insert either already cleared the shard (then `valid` observes
    /// the bump and the insert is skipped) or is still waiting on the
    /// shard lock (then it clears this entry right after). Returns
    /// whether the entry was stored.
    pub fn insert_if(&self, key: CacheKey, allow: bool, valid: impl FnOnce() -> bool) -> bool {
        let table = self.table.read();
        let (sub, base) = table.position_of(&key);
        let mut shard = table.shards[sub].lock();
        if !valid() {
            return false;
        }
        let stamp = if table.ways > 1 {
            self.clock.fetch_add(1, Ordering::Relaxed)
        } else {
            0
        };
        let set = &mut shard[base..base + table.ways];
        // Same key or an empty way: no displacement.
        let victim = match set
            .iter()
            .position(|s| matches!(s, Some(slot) if slot.key == key))
            .or_else(|| set.iter().position(|s| s.is_none()))
        {
            Some(i) => i,
            None => {
                // Full set: displace the least-recently-touched way.
                self.collisions.fetch_add(1, Ordering::Relaxed);
                set.iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.as_ref().map(|slot| slot.stamp).unwrap_or(0))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            }
        };
        set[victim] = Some(Slot { key, allow, stamp });
        true
    }

    /// Invalidate the single entry for `key` — a proof update (§2.8:
    /// "On a proof update, the kernel clears a single entry").
    pub fn invalidate_entry(&self, key: &CacheKey) {
        let table = self.table.read();
        let (sub, base) = table.position_of(key);
        let mut shard = table.shards[sub].lock();
        for s in shard[base..base + table.ways].iter_mut() {
            if matches!(s, Some(slot) if &slot.key == key) {
                *s = None;
                self.invalidations.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Invalidate the whole subregion for (operation, object) — a
    /// `setgoal` may affect many subjects, but they all hash into one
    /// subregion, so the invalidation takes exactly one shard lock.
    pub fn invalidate_subregion(&self, operation: &OpName, object: &ResourceId) {
        let table = self.table.read();
        let sub = table.subregion_of(operation, object);
        let mut shard = table.shards[sub].lock();
        for slot in shard.iter_mut() {
            if slot.is_some() {
                *slot = None;
                self.invalidations.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drop everything (the cache is soft state).
    pub fn clear(&self) {
        let table = self.table.read();
        for shard in &table.shards {
            for slot in shard.lock().iter_mut() {
                *slot = None;
            }
        }
    }

    /// Resize at runtime (§2.8: "the cache can be resized at
    /// runtime"). Contents are discarded — it is a cache; statistics
    /// survive.
    pub fn resize(&self, cfg: DecisionCacheConfig) {
        *self.table.write() = Table::new(cfg);
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> DecisionCacheStats {
        DecisionCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            collisions: self.collisions.load(Ordering::Relaxed),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        let table = self.table.read();
        table
            .shards
            .iter()
            .map(|s| s.lock().iter().filter(|slot| slot.is_some()).count())
            .sum()
    }

    /// True if no live entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of subregions (for ablation benchmarks).
    pub fn subregion_count(&self) -> usize {
        self.table.read().shards.len()
    }

    /// Subregion index of an (operation, object) pair (test support:
    /// lets tests detect accidental subregion sharing).
    pub fn subregion_of(&self, operation: &OpName, object: &ResourceId) -> usize {
        self.table.read().subregion_of(operation, object)
    }

    /// Current set associativity (after clamping).
    pub fn ways(&self) -> usize {
        self.table.read().ways
    }
}

impl Default for DecisionCache {
    fn default() -> Self {
        Self::new(DecisionCacheConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn key(s: &str, op: &str, obj: &str) -> CacheKey {
        CacheKey {
            subject: Principal::name(s),
            operation: OpName::from(op),
            object: ResourceId(obj.to_string()),
        }
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let c = DecisionCache::default();
        let k = key("alice", "read", "file:/x");
        assert_eq!(c.lookup(&k), None);
        c.insert(k.clone(), true);
        assert_eq!(c.lookup(&k), Some(true));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn entry_invalidation_clears_one() {
        let c = DecisionCache::default();
        let k1 = key("alice", "read", "file:/x");
        let k2 = key("bob", "read", "file:/x");
        c.insert(k1.clone(), true);
        c.insert(k2.clone(), false);
        c.invalidate_entry(&k1);
        assert_eq!(c.lookup(&k1), None);
        assert_eq!(c.lookup(&k2), Some(false));
    }

    #[test]
    fn subregion_invalidation_clears_all_subjects_of_pair() {
        let c = DecisionCache::default();
        // Many subjects on one (op, object): all land in one subregion.
        let subjects: Vec<CacheKey> = (0..10)
            .map(|i| key(&format!("user{i}"), "read", "file:/shared"))
            .collect();
        for k in &subjects {
            c.insert(k.clone(), true);
        }
        // Another object must survive.
        let other = key("alice", "read", "file:/other");
        c.insert(other.clone(), true);

        c.invalidate_subregion(&OpName::from("read"), &ResourceId("file:/shared".into()));
        for k in &subjects {
            assert_eq!(c.lookup(k), None, "entry for {k:?} should be gone");
        }
        // `other` survives unless it happens to share the subregion —
        // with 256 subregions that would be a 1/256 accident; assert
        // only when subregions differ, keeping the test robust.
        let sub_shared = c.subregion_of(&OpName::from("read"), &ResourceId("file:/shared".into()));
        let sub_other = c.subregion_of(&OpName::from("read"), &ResourceId("file:/other".into()));
        if sub_shared != sub_other {
            assert_eq!(c.lookup(&other), Some(true));
        }
    }

    #[test]
    fn collisions_are_counted_and_displace() {
        let c = DecisionCache::new(DecisionCacheConfig {
            total_slots: 4,
            subregion_slots: 2,
            ways: 1,
        });
        // With 2 subregions × 2 slots, collisions are guaranteed.
        for i in 0..32 {
            c.insert(key(&format!("u{i}"), "read", "file:/x"), true);
        }
        assert!(c.stats().collisions > 0);
        assert!(c.len() <= 4);
    }

    #[test]
    fn resize_preserves_stats_but_drops_entries() {
        let c = DecisionCache::default();
        let k = key("a", "op", "o");
        c.insert(k.clone(), true);
        c.lookup(&k);
        let hits = c.stats().hits;
        c.resize(DecisionCacheConfig {
            total_slots: 64,
            subregion_slots: 8,
            ways: 1,
        });
        assert_eq!(c.stats().hits, hits);
        assert_eq!(c.lookup(&k), None);
    }

    #[test]
    fn two_way_set_keeps_conflicting_pair_resident() {
        // Two subjects that collide in a 1-set subregion: the
        // direct-mapped table thrashes (each insert displaces the
        // other), the 2-way set holds both.
        let direct = DecisionCache::new(DecisionCacheConfig {
            total_slots: 2,
            subregion_slots: 2,
            ways: 1,
        });
        let assoc = DecisionCache::new(DecisionCacheConfig {
            total_slots: 2,
            subregion_slots: 2,
            ways: 2,
        });
        // Find two subjects that land in the same way-1 slot of the
        // same subregion (guaranteed to exist quickly: 1 subregion
        // here, 2 slots).
        let base = key("s0", "read", "file:/x");
        let (sub0, slot0) = {
            let t = direct.table.read();
            t.position_of(&base)
        };
        let rival = (1..64)
            .map(|i| key(&format!("s{i}"), "read", "file:/x"))
            .find(|k| {
                let t = direct.table.read();
                t.position_of(k) == (sub0, slot0)
            })
            .expect("a colliding subject exists among 63 candidates");

        for c in [&direct, &assoc] {
            c.insert(base.clone(), true);
            c.insert(rival.clone(), false);
        }
        // Direct-mapped: the rival displaced the base entry.
        assert_eq!(direct.lookup(&base), None);
        assert_eq!(direct.lookup(&rival), Some(false));
        assert!(direct.stats().collisions > 0);
        // Two-way: both resident.
        assert_eq!(assoc.lookup(&base), Some(true));
        assert_eq!(assoc.lookup(&rival), Some(false));
        assert_eq!(assoc.stats().collisions, 0);
        assert_eq!(assoc.ways(), 2);
    }

    #[test]
    fn two_way_evicts_least_recently_touched() {
        // One subregion, one 2-way set: with three colliding keys the
        // set must evict the least-recently-touched way.
        let c = DecisionCache::new(DecisionCacheConfig {
            total_slots: 2,
            subregion_slots: 2,
            ways: 2,
        });
        let keys: Vec<CacheKey> = (0..3).map(|i| key(&format!("s{i}"), "r", "o")).collect();
        c.insert(keys[0].clone(), true);
        c.insert(keys[1].clone(), true);
        // Touch keys[0] so keys[1] is the LRU way.
        assert_eq!(c.lookup(&keys[0]), Some(true));
        c.insert(keys[2].clone(), true);
        assert_eq!(
            c.lookup(&keys[0]),
            Some(true),
            "recently touched must survive"
        );
        assert_eq!(c.lookup(&keys[1]), None, "LRU way must be evicted");
        assert_eq!(c.lookup(&keys[2]), Some(true));
    }

    #[test]
    fn ways_clamped_to_subregion() {
        let c = DecisionCache::new(DecisionCacheConfig {
            total_slots: 8,
            subregion_slots: 4,
            ways: 64,
        });
        assert_eq!(c.ways(), 4);
        let k = key("a", "r", "o");
        c.insert(k.clone(), true);
        assert_eq!(c.lookup(&k), Some(true));
    }

    #[test]
    fn negative_decisions_cacheable_too() {
        let c = DecisionCache::default();
        let k = key("mallory", "write", "file:/x");
        c.insert(k.clone(), false);
        assert_eq!(c.lookup(&k), Some(false));
    }

    #[test]
    fn clear_empties() {
        let c = DecisionCache::default();
        c.insert(key("a", "r", "o"), true);
        assert!(!c.is_empty());
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn shared_across_threads() {
        let c = Arc::new(DecisionCache::default());
        let mut handles = Vec::new();
        for t in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    let k = key(&format!("user{t}"), "read", &format!("file:/t{t}/f{i}"));
                    c.insert(k.clone(), true);
                    // Another thread's insert may displace this slot
                    // (direct-mapped table, hash collisions are legal)
                    // — but a lookup must never return a *wrong*
                    // decision, only a hit-with-our-value or a miss.
                    assert_ne!(c.lookup(&k), Some(false));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every loop iteration did exactly one lookup.
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 8 * 200);
    }

    #[test]
    fn concurrent_subregion_invalidation_never_yields_stale_hits() {
        // Writers keep inserting allow=true for one (op, object) pair
        // while an invalidator clears the subregion; afterwards a
        // final invalidation must leave no entry behind.
        let c = Arc::new(DecisionCache::default());
        let op = OpName::from("read");
        let obj = ResourceId("file:/hot".into());
        let mut handles = Vec::new();
        for t in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    c.insert(key(&format!("u{t}-{i}"), "read", "file:/hot"), true);
                }
            }));
        }
        {
            let c = Arc::clone(&c);
            let op = op.clone();
            let obj = obj.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    c.invalidate_subregion(&op, &obj);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        c.invalidate_subregion(&op, &obj);
        for t in 0..4 {
            for i in 0..500 {
                assert_eq!(
                    c.lookup(&key(&format!("u{t}-{i}"), "read", "file:/hot")),
                    None
                );
            }
        }
    }
}
