//! The kernel decision cache (§2.8).
//!
//! Guard invocations are expensive (16–20× a cached decision, Figure
//! 4), so the kernel caches previously observed guard decisions in a
//! hashtable indexed by the access-control tuple (subject, operation,
//! object). Only decisions the guard marked cacheable — proofs with no
//! authority dependence — are stored.
//!
//! Invalidation uses the paper's subregion trick: the hash function is
//! designed so all entries with the same (operation, object) land in
//! the same *subregion* of the table. A `setgoal` then clears one
//! subregion rather than the whole cache; a proof update clears a
//! single entry. Subregion size is configurable and trades off
//! invalidation cost against collision rate.
//!
//! ## The lock-free hit path
//!
//! A cache hit is load–compare–return with **zero contention**: each
//! slot is a *seqlock* — an `AtomicU64` sequence word bracketing an
//! all-atomic payload (key fingerprint, occupancy/verdict bits). A
//! reader loads the sequence, the payload, and the sequence again; an
//! odd or changed sequence means a writer was mid-flight, and the
//! reader retries (bounded) before falling back to the locked slow
//! path. Writers — fills and invalidations — are the only lockers:
//! they serialize on a per-subregion mutex and bump the slot sequence
//! to odd before touching the payload and back to even after. A torn
//! read is therefore *detected*, never acted on: it degrades to a
//! miss and the request simply takes the guard slow path, where the
//! epoch fences decide afresh. The mutexed read path is kept behind
//! [`DecisionCacheConfig::lock_free`] as the A/B baseline for the
//! fig9 hit-path benchmark.
//!
//! Slots store a 128-bit keyed fingerprint of the access-control
//! tuple rather than the tuple itself (heap-backed strings cannot be
//! read under optimistic concurrency). The two 64-bit halves come
//! from independently keyed hashers seeded per cache instance at
//! construction, so cross-tuple collisions are both astronomically
//! unlikely (≈2⁻¹²⁸ per pair) and not predictable by an adversary.
//!
//! Fills are *epoch-validated*: [`DecisionCache::insert_if`] re-checks
//! the caller's validity predicate inside the subregion writer lock,
//! so a racing `setgoal` invalidation can never be overwritten by a
//! stale decision. Statistics are striped across padded cache lines so
//! the hit counter itself cannot become the contention point.

use crate::resource::{OpName, ResourceId};
use nexus_nal::Principal;
use parking_lot::Mutex;
use std::collections::hash_map::{DefaultHasher, RandomState};
use std::hash::{BuildHasher, Hash, Hasher};
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};

use crate::snapshot::Snapshot;

/// The access-control tuple the cache is indexed by.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The requesting principal.
    pub subject: Principal,
    /// The operation.
    pub operation: OpName,
    /// The resource.
    pub object: ResourceId,
}

/// Cache configuration.
#[derive(Debug, Clone, Copy)]
pub struct DecisionCacheConfig {
    /// Total number of slots (rounded up to a multiple of
    /// `subregion_slots`).
    pub total_slots: usize,
    /// Slots per (operation, object) subregion.
    pub subregion_slots: usize,
    /// Set associativity *within* a subregion: 1 is the paper's
    /// direct-mapped table (a colliding subject displaces on insert);
    /// 2 gives each subject-hash set two ways with least-recently-hit
    /// eviction, trading a slightly dearer probe for fewer conflict
    /// displacements (the ROADMAP's Figure-4 hit-rate experiment).
    /// Clamped to `1..=subregion_slots`.
    pub ways: usize,
    /// Seqlock (lock-free) hit path — the default. `false` routes
    /// every lookup through the per-subregion mutex instead: the
    /// pre-seqlock baseline, kept selectable for the fig9 hit-path
    /// A/B comparison.
    pub lock_free: bool,
}

impl Default for DecisionCacheConfig {
    fn default() -> Self {
        DecisionCacheConfig {
            total_slots: 4096,
            subregion_slots: 16,
            ways: 1,
            lock_free: true,
        }
    }
}

/// Statistics counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionCacheStats {
    /// Lookups that found a valid entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries cleared by invalidation.
    pub invalidations: u64,
    /// Insertions that displaced a colliding entry.
    pub collisions: u64,
    /// Seqlock read attempts that observed a concurrent writer (odd
    /// or changed sequence) and retried the probe.
    pub read_retries: u64,
    /// Lookups that exhausted the bounded retry budget and fell back
    /// to the locked slow path (still exactly one hit or miss each).
    pub read_fallbacks: u64,
}

/// Bounded optimistic probe attempts before a lookup falls back to
/// taking the subregion writer lock. Keeps a pathological writer storm
/// from livelocking readers: the fallback is always correct, merely
/// contended.
const MAX_READ_RETRIES: usize = 8;

/// Slot meta bit: the slot holds a live entry.
const OCCUPIED: u64 = 1;
/// Slot meta bit: the cached verdict is "allow".
const ALLOW: u64 = 2;

/// One seqlock-protected cache slot. The payload is all-atomic (no
/// heap data), so a racing reader can at worst observe a *stale or
/// mixed* fingerprint — which the sequence check detects — never
/// undefined behavior; `nexus-core` stays `forbid(unsafe_code)`.
#[derive(Default)]
struct SeqSlot {
    /// Sequence word: even = stable, odd = writer mid-flight.
    seq: AtomicU64,
    /// Keyed 128-bit fingerprint of the access-control tuple.
    fp_lo: AtomicU64,
    fp_hi: AtomicU64,
    /// OCCUPIED | ALLOW bits.
    meta: AtomicU64,
    /// Last-touched stamp for within-set eviction. Deliberately
    /// *outside* the seqlock discipline: it is an eviction hint, and
    /// hint races are benign — so the ways=1 hit path stays
    /// write-free and the ways>1 hit path does one relaxed store.
    stamp: AtomicU64,
}

/// One subregion: its slots plus the writer lock that serializes
/// fills and invalidations (readers never take it on the seqlock
/// path).
struct Shard {
    write_lock: Mutex<()>,
    slots: Vec<SeqSlot>,
}

/// The slot array. Lives behind a [`Snapshot`] so lookups reach it
/// without a table-wide reader-writer lock; `resize` publishes a
/// fresh table.
struct Table {
    shards: Vec<Shard>,
    subregion_slots: usize,
    ways: usize,
    lock_free: bool,
    /// Independently keyed fingerprint hashers (seeded per table).
    fp_a: RandomState,
    fp_b: RandomState,
}

impl Table {
    fn new(cfg: DecisionCacheConfig) -> Self {
        let subregion_slots = cfg.subregion_slots.max(1);
        let ways = cfg.ways.clamp(1, subregion_slots);
        let subregions = cfg
            .total_slots
            .max(subregion_slots)
            .div_ceil(subregion_slots);
        Table {
            shards: (0..subregions)
                .map(|_| Shard {
                    write_lock: Mutex::new(()),
                    slots: (0..subregion_slots).map(|_| SeqSlot::default()).collect(),
                })
                .collect(),
            subregion_slots,
            ways,
            lock_free: cfg.lock_free,
            fp_a: RandomState::new(),
            fp_b: RandomState::new(),
        }
    }

    fn subregion_of(&self, operation: &OpName, object: &ResourceId) -> usize {
        (DecisionCache::hash64(&(operation, object)) as usize) % self.shards.len()
    }

    /// (shard index, first slot of the subject's set) for a key; the
    /// set spans `self.ways` consecutive slots.
    fn position_of(&self, key: &CacheKey) -> (usize, usize) {
        let sub = self.subregion_of(&key.operation, &key.object);
        let sets = self.subregion_slots / self.ways;
        let set = (DecisionCache::hash64(&key.subject) as usize) % sets.max(1);
        (sub, set * self.ways)
    }

    /// The 128-bit keyed fingerprint stored in (and compared against)
    /// slots in place of the heap-backed tuple.
    fn fingerprint(&self, key: &CacheKey) -> (u64, u64) {
        (self.fp_a.hash_one(key), self.fp_b.hash_one(key))
    }
}

/// Number of cache-line-padded stripes per statistics counter.
const STAT_STRIPES: usize = 16;

/// One cache line's worth of counter, so adjacent stripes never share
/// a line (the satellite fix: an unpadded hit counter ping-pongs one
/// line across every core at 64 threads).
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A statistics counter striped across padded cache lines; threads
/// are assigned stripes round-robin, so concurrent bumps (mostly)
/// land on distinct lines and `sum` folds them on demand.
#[derive(Default)]
struct StripedCounter {
    stripes: [PaddedU64; STAT_STRIPES],
}

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STAT_STRIPES;
}

impl StripedCounter {
    fn add(&self, n: u64) {
        let i = STRIPE.with(|s| *s);
        self.stripes[i].0.fetch_add(n, Ordering::Relaxed);
    }

    fn sum(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// The decision cache: a direct-mapped table partitioned into
/// per-subregion shards with seqlock slots, safe to share across
/// threads; the hit path takes no locks (see module docs).
pub struct DecisionCache {
    table: Snapshot<Table>,
    hits: StripedCounter,
    misses: StripedCounter,
    read_retries: StripedCounter,
    read_fallbacks: StripedCounter,
    invalidations: AtomicU64,
    collisions: AtomicU64,
    /// Monotonic touch stamp for within-set LRU (associative mode).
    clock: AtomicU64,
}

impl DecisionCache {
    /// Build with the given configuration.
    pub fn new(cfg: DecisionCacheConfig) -> Self {
        DecisionCache {
            table: Snapshot::new(Table::new(cfg)),
            hits: StripedCounter::default(),
            misses: StripedCounter::default(),
            read_retries: StripedCounter::default(),
            read_fallbacks: StripedCounter::default(),
            invalidations: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
            clock: AtomicU64::new(0),
        }
    }

    fn hash64<T: Hash>(v: &T) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    /// One optimistic probe of a slot: `None` means a writer was
    /// mid-flight (odd or changed sequence) and the caller should
    /// retry. This is the crossbeam seqlock recipe — acquire the
    /// sequence, relaxed payload loads, an acquire fence, then
    /// re-check the sequence — with an all-atomic payload, so a lost
    /// race is detected rather than undefined.
    fn read_way(slot: &SeqSlot) -> Option<(u64, u64, u64)> {
        let s1 = slot.seq.load(Ordering::Acquire);
        if s1 & 1 != 0 {
            return None;
        }
        let lo = slot.fp_lo.load(Ordering::Relaxed);
        let hi = slot.fp_hi.load(Ordering::Relaxed);
        let meta = slot.meta.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        let s2 = slot.seq.load(Ordering::Relaxed);
        (s1 == s2).then_some((lo, hi, meta))
    }

    /// Rewrite a slot's payload under the seqlock write protocol.
    /// Caller must hold the shard's writer lock.
    fn write_way(slot: &SeqSlot, fp: Option<(u64, u64)>, allow: bool, stamp: u64) {
        let s = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        match fp {
            Some((lo, hi)) => {
                slot.fp_lo.store(lo, Ordering::Relaxed);
                slot.fp_hi.store(hi, Ordering::Relaxed);
                slot.meta
                    .store(OCCUPIED | if allow { ALLOW } else { 0 }, Ordering::Relaxed);
                slot.stamp.store(stamp, Ordering::Relaxed);
            }
            None => {
                slot.meta.store(0, Ordering::Relaxed);
            }
        }
        slot.seq.store(s.wrapping_add(2), Ordering::Release);
    }

    /// Probe a set while holding the shard writer lock (the mutexed
    /// baseline, and the bounded-retry fallback). Slots with an odd
    /// sequence are treated as empty — under the lock no legitimate
    /// writer can be mid-flight, so an odd sequence means torn state
    /// that must not be trusted.
    fn probe_locked(
        &self,
        t: &Table,
        shard: &Shard,
        base: usize,
        lo: u64,
        hi: u64,
    ) -> Option<bool> {
        for slot in &shard.slots[base..base + t.ways] {
            if slot.seq.load(Ordering::Relaxed) & 1 != 0 {
                continue;
            }
            let meta = slot.meta.load(Ordering::Relaxed);
            if meta & OCCUPIED != 0
                && slot.fp_lo.load(Ordering::Relaxed) == lo
                && slot.fp_hi.load(Ordering::Relaxed) == hi
            {
                if t.ways > 1 {
                    slot.stamp.store(
                        self.clock.fetch_add(1, Ordering::Relaxed),
                        Ordering::Relaxed,
                    );
                }
                return Some(meta & ALLOW != 0);
            }
        }
        None
    }

    /// Look up a cached decision. On the seqlock path this takes no
    /// locks: a hit is a handful of atomic loads; a probe raced by a
    /// writer retries (bounded) and then falls back to the locked
    /// path. Every call counts exactly one hit or one miss.
    pub fn lookup(&self, key: &CacheKey) -> Option<bool> {
        self.table.read(|t, _| {
            let (sub, base) = t.position_of(key);
            let (lo, hi) = t.fingerprint(key);
            let shard = &t.shards[sub];
            if t.lock_free {
                'attempt: for _ in 0..MAX_READ_RETRIES {
                    for slot in &shard.slots[base..base + t.ways] {
                        match Self::read_way(slot) {
                            Some((slo, shi, meta)) => {
                                if meta & OCCUPIED != 0 && slo == lo && shi == hi {
                                    if t.ways > 1 {
                                        slot.stamp.store(
                                            self.clock.fetch_add(1, Ordering::Relaxed),
                                            Ordering::Relaxed,
                                        );
                                    }
                                    self.hits.add(1);
                                    return Some(meta & ALLOW != 0);
                                }
                            }
                            // Writer mid-flight: a torn or in-progress
                            // slot is never acted on — retry the set.
                            None => {
                                self.read_retries.add(1);
                                continue 'attempt;
                            }
                        }
                    }
                    self.misses.add(1);
                    return None;
                }
                self.read_fallbacks.add(1);
            }
            let _g = shard.write_lock.lock();
            match self.probe_locked(t, shard, base, lo, hi) {
                Some(allow) => {
                    self.hits.add(1);
                    Some(allow)
                }
                None => {
                    self.misses.add(1);
                    None
                }
            }
        })
    }

    /// Insert a (cacheable) decision.
    pub fn insert(&self, key: CacheKey, allow: bool) {
        self.insert_if(key, allow, || true);
    }

    /// Insert a decision only if `valid` still holds *inside* the
    /// subregion writer lock. This closes the lost-invalidation race:
    /// an invalidation (e.g. `setgoal`) that bumped its epoch before
    /// the insert either already cleared the shard (then `valid`
    /// observes the bump — the lock acquisition orders it — and the
    /// insert is skipped) or is still waiting on the writer lock
    /// (then it clears this entry right after). Returns whether the
    /// entry was stored.
    pub fn insert_if(&self, key: CacheKey, allow: bool, valid: impl FnOnce() -> bool) -> bool {
        self.table.read(|t, _| {
            let (sub, base) = t.position_of(&key);
            let (lo, hi) = t.fingerprint(&key);
            let shard = &t.shards[sub];
            let _g = shard.write_lock.lock();
            if !valid() {
                return false;
            }
            let stamp = if t.ways > 1 {
                self.clock.fetch_add(1, Ordering::Relaxed)
            } else {
                0
            };
            let set = &shard.slots[base..base + t.ways];
            let matches = |s: &SeqSlot| {
                s.meta.load(Ordering::Relaxed) & OCCUPIED != 0
                    && s.fp_lo.load(Ordering::Relaxed) == lo
                    && s.fp_hi.load(Ordering::Relaxed) == hi
            };
            // Same key or an empty way: no displacement.
            let victim = match set.iter().position(matches).or_else(|| {
                set.iter()
                    .position(|s| s.meta.load(Ordering::Relaxed) & OCCUPIED == 0)
            }) {
                Some(i) => i,
                None => {
                    // Full set: displace the least-recently-touched way.
                    self.collisions.fetch_add(1, Ordering::Relaxed);
                    set.iter()
                        .enumerate()
                        .min_by_key(|(_, s)| s.stamp.load(Ordering::Relaxed))
                        .map(|(i, _)| i)
                        .unwrap_or(0)
                }
            };
            Self::write_way(&set[victim], Some((lo, hi)), allow, stamp);
            true
        })
    }

    /// Invalidate the single entry for `key` — a proof update (§2.8:
    /// "On a proof update, the kernel clears a single entry").
    pub fn invalidate_entry(&self, key: &CacheKey) {
        self.table.read(|t, _| {
            let (sub, base) = t.position_of(key);
            let (lo, hi) = t.fingerprint(key);
            let shard = &t.shards[sub];
            let _g = shard.write_lock.lock();
            for slot in &shard.slots[base..base + t.ways] {
                if slot.meta.load(Ordering::Relaxed) & OCCUPIED != 0
                    && slot.fp_lo.load(Ordering::Relaxed) == lo
                    && slot.fp_hi.load(Ordering::Relaxed) == hi
                {
                    Self::write_way(slot, None, false, 0);
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                }
            }
        })
    }

    /// Invalidate the whole subregion for (operation, object) — a
    /// `setgoal` may affect many subjects, but they all hash into one
    /// subregion, so the invalidation takes exactly one writer lock.
    pub fn invalidate_subregion(&self, operation: &OpName, object: &ResourceId) {
        self.table.read(|t, _| {
            let sub = t.subregion_of(operation, object);
            let shard = &t.shards[sub];
            let _g = shard.write_lock.lock();
            for slot in &shard.slots {
                if slot.meta.load(Ordering::Relaxed) & OCCUPIED != 0 {
                    Self::write_way(slot, None, false, 0);
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                }
            }
        })
    }

    /// Drop everything (the cache is soft state). Each occupied slot
    /// counts as an invalidation, so clear-based channels such as
    /// `transfer_label` show up in the stats like subregion
    /// invalidations do.
    pub fn clear(&self) {
        self.table.read(|t, _| {
            for shard in &t.shards {
                let _g = shard.write_lock.lock();
                for slot in &shard.slots {
                    if slot.meta.load(Ordering::Relaxed) & OCCUPIED != 0 {
                        Self::write_way(slot, None, false, 0);
                        self.invalidations.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        })
    }

    /// Resize at runtime (§2.8: "the cache can be resized at
    /// runtime"). Contents are discarded — it is a cache; statistics
    /// survive. A control operation: concurrent lookups may briefly
    /// keep probing the (about-to-be-dropped) old table; callers that
    /// pair a resize with invalidation invariants should fence
    /// in-flight work afterwards, as [`resize_decision_cache`] in the
    /// kernel does.
    ///
    /// [`resize_decision_cache`]: ../../nexus_kernel/struct.Nexus.html#method.resize_decision_cache
    pub fn resize(&self, cfg: DecisionCacheConfig) {
        self.table.publish(Table::new(cfg));
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> DecisionCacheStats {
        DecisionCacheStats {
            hits: self.hits.sum(),
            misses: self.misses.sum(),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            collisions: self.collisions.load(Ordering::Relaxed),
            read_retries: self.read_retries.sum(),
            read_fallbacks: self.read_fallbacks.sum(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.table.read(|t, _| {
            t.shards
                .iter()
                .flat_map(|s| s.slots.iter())
                .filter(|slot| slot.meta.load(Ordering::Relaxed) & OCCUPIED != 0)
                .count()
        })
    }

    /// True if no live entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of subregions (for ablation benchmarks).
    pub fn subregion_count(&self) -> usize {
        self.table.read(|t, _| t.shards.len())
    }

    /// Subregion index of an (operation, object) pair (test support:
    /// lets tests detect accidental subregion sharing).
    pub fn subregion_of(&self, operation: &OpName, object: &ResourceId) -> usize {
        self.table.read(|t, _| t.subregion_of(operation, object))
    }

    /// Current set associativity (after clamping).
    pub fn ways(&self) -> usize {
        self.table.read(|t, _| t.ways)
    }

    /// Whether lookups use the seqlock (lock-free) read path.
    pub fn lock_free(&self) -> bool {
        self.table.read(|t, _| t.lock_free)
    }
}

impl Default for DecisionCache {
    fn default() -> Self {
        Self::new(DecisionCacheConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn key(s: &str, op: &str, obj: &str) -> CacheKey {
        CacheKey {
            subject: Principal::name(s),
            operation: OpName::from(op),
            object: ResourceId(obj.to_string()),
        }
    }

    /// Both read paths, for tests that must hold on either.
    fn both_paths() -> [DecisionCache; 2] {
        [
            DecisionCache::new(DecisionCacheConfig::default()),
            DecisionCache::new(DecisionCacheConfig {
                lock_free: false,
                ..Default::default()
            }),
        ]
    }

    #[test]
    fn insert_lookup_roundtrip() {
        for c in both_paths() {
            let k = key("alice", "read", "file:/x");
            assert_eq!(c.lookup(&k), None);
            c.insert(k.clone(), true);
            assert_eq!(c.lookup(&k), Some(true));
            assert_eq!(c.stats().hits, 1);
            assert_eq!(c.stats().misses, 1);
        }
    }

    #[test]
    fn entry_invalidation_clears_one() {
        for c in both_paths() {
            let k1 = key("alice", "read", "file:/x");
            let k2 = key("bob", "read", "file:/x");
            c.insert(k1.clone(), true);
            c.insert(k2.clone(), false);
            c.invalidate_entry(&k1);
            assert_eq!(c.lookup(&k1), None);
            assert_eq!(c.lookup(&k2), Some(false));
        }
    }

    #[test]
    fn subregion_invalidation_clears_all_subjects_of_pair() {
        let c = DecisionCache::default();
        // Many subjects on one (op, object): all land in one subregion.
        let subjects: Vec<CacheKey> = (0..10)
            .map(|i| key(&format!("user{i}"), "read", "file:/shared"))
            .collect();
        for k in &subjects {
            c.insert(k.clone(), true);
        }
        // Another object must survive.
        let other = key("alice", "read", "file:/other");
        c.insert(other.clone(), true);

        c.invalidate_subregion(&OpName::from("read"), &ResourceId("file:/shared".into()));
        for k in &subjects {
            assert_eq!(c.lookup(k), None, "entry for {k:?} should be gone");
        }
        // `other` survives unless it happens to share the subregion —
        // with 256 subregions that would be a 1/256 accident; assert
        // only when subregions differ, keeping the test robust.
        let sub_shared = c.subregion_of(&OpName::from("read"), &ResourceId("file:/shared".into()));
        let sub_other = c.subregion_of(&OpName::from("read"), &ResourceId("file:/other".into()));
        if sub_shared != sub_other {
            assert_eq!(c.lookup(&other), Some(true));
        }
    }

    #[test]
    fn collisions_are_counted_and_displace() {
        let c = DecisionCache::new(DecisionCacheConfig {
            total_slots: 4,
            subregion_slots: 2,
            ways: 1,
            lock_free: true,
        });
        // With 2 subregions × 2 slots, collisions are guaranteed.
        for i in 0..32 {
            c.insert(key(&format!("u{i}"), "read", "file:/x"), true);
        }
        assert!(c.stats().collisions > 0);
        assert!(c.len() <= 4);
    }

    #[test]
    fn resize_preserves_stats_but_drops_entries() {
        let c = DecisionCache::default();
        let k = key("a", "op", "o");
        c.insert(k.clone(), true);
        c.lookup(&k);
        let hits = c.stats().hits;
        c.resize(DecisionCacheConfig {
            total_slots: 64,
            subregion_slots: 8,
            ways: 1,
            lock_free: true,
        });
        assert_eq!(c.stats().hits, hits);
        assert_eq!(c.lookup(&k), None);
    }

    #[test]
    fn resize_can_flip_read_paths() {
        let c = DecisionCache::default();
        assert!(c.lock_free());
        c.resize(DecisionCacheConfig {
            lock_free: false,
            ..Default::default()
        });
        assert!(!c.lock_free());
        let k = key("a", "op", "o");
        c.insert(k.clone(), false);
        assert_eq!(c.lookup(&k), Some(false));
    }

    #[test]
    fn two_way_set_keeps_conflicting_pair_resident() {
        // Two subjects that collide in a 1-set subregion: the
        // direct-mapped table thrashes (each insert displaces the
        // other), the 2-way set holds both.
        let direct = DecisionCache::new(DecisionCacheConfig {
            total_slots: 2,
            subregion_slots: 2,
            ways: 1,
            lock_free: true,
        });
        let assoc = DecisionCache::new(DecisionCacheConfig {
            total_slots: 2,
            subregion_slots: 2,
            ways: 2,
            lock_free: true,
        });
        // Find two subjects that land in the same way-1 slot of the
        // same subregion (guaranteed to exist quickly: 1 subregion
        // here, 2 slots).
        let base = key("s0", "read", "file:/x");
        let (sub0, slot0) = direct.table.read(|t, _| t.position_of(&base));
        let rival = (1..64)
            .map(|i| key(&format!("s{i}"), "read", "file:/x"))
            .find(|k| direct.table.read(|t, _| t.position_of(k)) == (sub0, slot0))
            .expect("a colliding subject exists among 63 candidates");

        for c in [&direct, &assoc] {
            c.insert(base.clone(), true);
            c.insert(rival.clone(), false);
        }
        // Direct-mapped: the rival displaced the base entry.
        assert_eq!(direct.lookup(&base), None);
        assert_eq!(direct.lookup(&rival), Some(false));
        assert!(direct.stats().collisions > 0);
        // Two-way: both resident.
        assert_eq!(assoc.lookup(&base), Some(true));
        assert_eq!(assoc.lookup(&rival), Some(false));
        assert_eq!(assoc.stats().collisions, 0);
        assert_eq!(assoc.ways(), 2);
    }

    #[test]
    fn two_way_evicts_least_recently_touched() {
        // One subregion, one 2-way set: with three colliding keys the
        // set must evict the least-recently-touched way.
        let c = DecisionCache::new(DecisionCacheConfig {
            total_slots: 2,
            subregion_slots: 2,
            ways: 2,
            lock_free: true,
        });
        let keys: Vec<CacheKey> = (0..3).map(|i| key(&format!("s{i}"), "r", "o")).collect();
        c.insert(keys[0].clone(), true);
        c.insert(keys[1].clone(), true);
        // Touch keys[0] so keys[1] is the LRU way.
        assert_eq!(c.lookup(&keys[0]), Some(true));
        c.insert(keys[2].clone(), true);
        assert_eq!(
            c.lookup(&keys[0]),
            Some(true),
            "recently touched must survive"
        );
        assert_eq!(c.lookup(&keys[1]), None, "LRU way must be evicted");
        assert_eq!(c.lookup(&keys[2]), Some(true));
    }

    #[test]
    fn ways_clamped_to_subregion() {
        let c = DecisionCache::new(DecisionCacheConfig {
            total_slots: 8,
            subregion_slots: 4,
            ways: 64,
            lock_free: true,
        });
        assert_eq!(c.ways(), 4);
        let k = key("a", "r", "o");
        c.insert(k.clone(), true);
        assert_eq!(c.lookup(&k), Some(true));
    }

    #[test]
    fn negative_decisions_cacheable_too() {
        let c = DecisionCache::default();
        let k = key("mallory", "write", "file:/x");
        c.insert(k.clone(), false);
        assert_eq!(c.lookup(&k), Some(false));
    }

    #[test]
    fn clear_empties() {
        let c = DecisionCache::default();
        c.insert(key("a", "r", "o"), true);
        assert!(!c.is_empty());
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn shared_across_threads() {
        for c in both_paths() {
            let c = Arc::new(c);
            let mut handles = Vec::new();
            for t in 0..8 {
                let c = Arc::clone(&c);
                handles.push(std::thread::spawn(move || {
                    for i in 0..200 {
                        let k = key(&format!("user{t}"), "read", &format!("file:/t{t}/f{i}"));
                        c.insert(k.clone(), true);
                        // Another thread's insert may displace this slot
                        // (direct-mapped table, hash collisions are legal)
                        // — but a lookup must never return a *wrong*
                        // decision, only a hit-with-our-value or a miss.
                        assert_ne!(c.lookup(&k), Some(false));
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            // Every loop iteration did exactly one lookup.
            let s = c.stats();
            assert_eq!(s.hits + s.misses, 8 * 200);
        }
    }

    #[test]
    fn concurrent_subregion_invalidation_never_yields_stale_hits() {
        // Writers keep inserting allow=true for one (op, object) pair
        // while an invalidator clears the subregion; afterwards a
        // final invalidation must leave no entry behind.
        let c = Arc::new(DecisionCache::default());
        let op = OpName::from("read");
        let obj = ResourceId("file:/hot".into());
        let mut handles = Vec::new();
        for t in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    c.insert(key(&format!("u{t}-{i}"), "read", "file:/hot"), true);
                }
            }));
        }
        {
            let c = Arc::clone(&c);
            let op = op.clone();
            let obj = obj.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    c.invalidate_subregion(&op, &obj);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        c.invalidate_subregion(&op, &obj);
        for t in 0..4 {
            for i in 0..500 {
                assert_eq!(
                    c.lookup(&key(&format!("u{t}-{i}"), "read", "file:/hot")),
                    None
                );
            }
        }
    }

    // ---- seqlock sabotage tests (ISSUE 6): force the race windows ----

    #[test]
    fn seqlock_writer_mid_read_degrades_to_miss_never_torn() {
        // Sabotage: freeze a slot in the "writer mid-flight" state
        // (odd sequence) with a *scrambled* payload. A reader must
        // report a miss — never act on the torn verdict — and the
        // bounded retries must fall back to the locked path.
        let c = DecisionCache::default();
        let k = key("alice", "read", "file:/x");
        c.insert(k.clone(), true);
        assert_eq!(c.lookup(&k), Some(true));
        let before = c.stats();

        c.table.read(|t, _| {
            let (sub, base) = t.position_of(&k);
            let slot = &t.shards[sub].slots[base];
            let s = slot.seq.load(Ordering::Relaxed);
            // Begin a write that never completes: odd sequence, then
            // scramble the verdict bit mid-payload.
            slot.seq.store(s + 1, Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            slot.meta.store(meta ^ ALLOW, Ordering::Relaxed);

            // The nested lookup re-enters the table snapshot (slow
            // path) — the seqlock probe sees the odd sequence, retries
            // out, and the locked fallback refuses the in-progress
            // slot: a miss, not a torn (flipped) verdict.
            assert_eq!(c.lookup(&k), None);

            // Finish the interrupted write, restoring the true verdict.
            slot.meta.store(meta, Ordering::Relaxed);
            slot.seq.store(s + 2, Ordering::Release);
        });

        let after = c.stats();
        assert!(
            after.read_retries > before.read_retries,
            "probe must have observed the in-flight writer: {after:?}"
        );
        assert!(
            after.read_fallbacks > before.read_fallbacks,
            "bounded retries must have fallen back to the locked path: {after:?}"
        );
        assert_eq!(after.misses, before.misses + 1);
        // Once the writer completes, the entry is visible again.
        assert_eq!(c.lookup(&k), Some(true));
    }

    #[test]
    fn seqlock_validity_revoked_between_read_and_fill_discards_verdict() {
        // The insert_if discipline: a verdict computed before an epoch
        // bump must be discarded when the validity predicate — checked
        // inside the subregion writer lock — no longer holds.
        let c = DecisionCache::default();
        let k = key("alice", "read", "file:/x");
        assert!(!c.insert_if(k.clone(), true, || false), "stale fill stored");
        assert_eq!(c.lookup(&k), None, "discarded verdict must not hit");
        assert!(c.insert_if(k.clone(), true, || true));
        assert_eq!(c.lookup(&k), Some(true));
    }

    #[test]
    fn seqlock_concurrent_flips_never_yield_wrong_verdict() {
        // Writers continuously rewrite two key classes with *opposite*
        // verdicts while readers hammer lookups: any torn fingerprint
        // or payload crossing classes would surface as a wrong verdict.
        let c = Arc::new(DecisionCache::new(DecisionCacheConfig {
            // Tiny table so keys genuinely collide and displace.
            total_slots: 8,
            subregion_slots: 4,
            ways: 1,
            lock_free: true,
        }));
        let keys: Vec<(CacheKey, bool)> = (0..16)
            .map(|i| (key(&format!("u{i}"), "read", "file:/hot"), i % 2 == 0))
            .collect();
        let mut handles = Vec::new();
        for w in 0..2 {
            let c = Arc::clone(&c);
            let keys = keys.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..2_000 {
                    let (k, allow) = &keys[(round + w * 7) % keys.len()];
                    c.insert(k.clone(), *allow);
                }
            }));
        }
        for _ in 0..4 {
            let c = Arc::clone(&c);
            let keys = keys.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..10_000 {
                    let (k, allow) = &keys[round % keys.len()];
                    if let Some(got) = c.lookup(k) {
                        assert_eq!(
                            got, *allow,
                            "seqlock served a wrong verdict for {k:?} — torn read acted on"
                        );
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn seqlock_stats_reconcile_under_contention() {
        // Striped counters must lose nothing: lookups from many
        // threads each count exactly one hit or miss, with retries and
        // fallbacks tracked separately.
        let c = Arc::new(DecisionCache::default());
        let k = key("hot", "read", "file:/shared");
        c.insert(k.clone(), true);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            let k = k.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1_000 {
                    assert_eq!(c.lookup(&k), Some(true));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = c.stats();
        assert_eq!(s.hits, 8 * 1_000);
        assert_eq!(s.misses, 0);
    }
}
