//! The kernel decision cache (§2.8).
//!
//! Guard invocations are expensive (16–20× a cached decision, Figure
//! 4), so the kernel caches previously observed guard decisions in a
//! hashtable indexed by the access-control tuple (subject, operation,
//! object). Only decisions the guard marked cacheable — proofs with no
//! authority dependence — are stored.
//!
//! Invalidation uses the paper's subregion trick: the hash function is
//! designed so all entries with the same (operation, object) land in
//! the same *subregion* of the table. A `setgoal` then clears one
//! subregion rather than the whole cache; a proof update clears a
//! single entry. Subregion size is configurable and trades off
//! invalidation cost against collision rate.

use crate::resource::{OpName, ResourceId};
use nexus_nal::Principal;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// The access-control tuple the cache is indexed by.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The requesting principal.
    pub subject: Principal,
    /// The operation.
    pub operation: OpName,
    /// The resource.
    pub object: ResourceId,
}

/// Cache configuration.
#[derive(Debug, Clone, Copy)]
pub struct DecisionCacheConfig {
    /// Total number of slots (rounded up to a multiple of
    /// `subregion_slots`).
    pub total_slots: usize,
    /// Slots per (operation, object) subregion.
    pub subregion_slots: usize,
}

impl Default for DecisionCacheConfig {
    fn default() -> Self {
        DecisionCacheConfig {
            total_slots: 4096,
            subregion_slots: 16,
        }
    }
}

#[derive(Debug, Clone)]
struct Slot {
    key: CacheKey,
    allow: bool,
}

/// Statistics counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionCacheStats {
    /// Lookups that found a valid entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries cleared by invalidation.
    pub invalidations: u64,
    /// Insertions that displaced a colliding entry.
    pub collisions: u64,
}

/// The decision cache: a direct-mapped table partitioned into
/// subregions.
#[derive(Debug)]
pub struct DecisionCache {
    slots: Vec<Option<Slot>>,
    subregion_slots: usize,
    subregions: usize,
    stats: DecisionCacheStats,
}

impl DecisionCache {
    /// Build with the given configuration.
    pub fn new(cfg: DecisionCacheConfig) -> Self {
        let subregion_slots = cfg.subregion_slots.max(1);
        let subregions = (cfg.total_slots.max(subregion_slots) + subregion_slots - 1)
            / subregion_slots;
        DecisionCache {
            slots: vec![None; subregions * subregion_slots],
            subregion_slots,
            subregions,
            stats: DecisionCacheStats::default(),
        }
    }

    fn hash64<T: Hash>(v: &T) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    /// Subregion index: depends only on (operation, object), so a
    /// `setgoal` on that pair invalidates exactly one subregion.
    fn subregion_of(&self, operation: &OpName, object: &ResourceId) -> usize {
        (Self::hash64(&(operation, object)) as usize) % self.subregions
    }

    fn slot_of(&self, key: &CacheKey) -> usize {
        let sub = self.subregion_of(&key.operation, &key.object);
        let within = (Self::hash64(&key.subject) as usize) % self.subregion_slots;
        sub * self.subregion_slots + within
    }

    /// Look up a cached decision.
    pub fn lookup(&mut self, key: &CacheKey) -> Option<bool> {
        let idx = self.slot_of(key);
        match &self.slots[idx] {
            Some(slot) if &slot.key == key => {
                self.stats.hits += 1;
                Some(slot.allow)
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a (cacheable) decision.
    pub fn insert(&mut self, key: CacheKey, allow: bool) {
        let idx = self.slot_of(&key);
        if let Some(existing) = &self.slots[idx] {
            if existing.key != key {
                self.stats.collisions += 1;
            }
        }
        self.slots[idx] = Some(Slot { key, allow });
    }

    /// Invalidate the single entry for `key` — a proof update (§2.8:
    /// "On a proof update, the kernel clears a single entry").
    pub fn invalidate_entry(&mut self, key: &CacheKey) {
        let idx = self.slot_of(key);
        if let Some(slot) = &self.slots[idx] {
            if &slot.key == key {
                self.slots[idx] = None;
                self.stats.invalidations += 1;
            }
        }
    }

    /// Invalidate the whole subregion for (operation, object) — a
    /// `setgoal` may affect many subjects, but they all hash into one
    /// subregion.
    pub fn invalidate_subregion(&mut self, operation: &OpName, object: &ResourceId) {
        let sub = self.subregion_of(operation, object);
        let base = sub * self.subregion_slots;
        for slot in &mut self.slots[base..base + self.subregion_slots] {
            if slot.is_some() {
                *slot = None;
                self.stats.invalidations += 1;
            }
        }
    }

    /// Drop everything (used on resize; the cache is soft state).
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
    }

    /// Resize at runtime (§2.8: "the cache can be resized at
    /// runtime"). Contents are discarded — it is a cache.
    pub fn resize(&mut self, cfg: DecisionCacheConfig) {
        let stats = self.stats;
        *self = DecisionCache::new(cfg);
        self.stats = stats;
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> DecisionCacheStats {
        self.stats
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// True if no live entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of subregions (for ablation benchmarks).
    pub fn subregion_count(&self) -> usize {
        self.subregions
    }
}

impl Default for DecisionCache {
    fn default() -> Self {
        Self::new(DecisionCacheConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str, op: &str, obj: &str) -> CacheKey {
        CacheKey {
            subject: Principal::name(s),
            operation: OpName::from(op),
            object: ResourceId(obj.to_string()),
        }
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut c = DecisionCache::default();
        let k = key("alice", "read", "file:/x");
        assert_eq!(c.lookup(&k), None);
        c.insert(k.clone(), true);
        assert_eq!(c.lookup(&k), Some(true));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn entry_invalidation_clears_one() {
        let mut c = DecisionCache::default();
        let k1 = key("alice", "read", "file:/x");
        let k2 = key("bob", "read", "file:/x");
        c.insert(k1.clone(), true);
        c.insert(k2.clone(), false);
        c.invalidate_entry(&k1);
        assert_eq!(c.lookup(&k1), None);
        assert_eq!(c.lookup(&k2), Some(false));
    }

    #[test]
    fn subregion_invalidation_clears_all_subjects_of_pair() {
        let mut c = DecisionCache::default();
        // Many subjects on one (op, object): all land in one subregion.
        let subjects: Vec<CacheKey> = (0..10)
            .map(|i| key(&format!("user{i}"), "read", "file:/shared"))
            .collect();
        for k in &subjects {
            c.insert(k.clone(), true);
        }
        // Another object must survive.
        let other = key("alice", "read", "file:/other");
        c.insert(other.clone(), true);

        c.invalidate_subregion(&OpName::from("read"), &ResourceId("file:/shared".into()));
        for k in &subjects {
            assert_eq!(c.lookup(k), None, "entry for {k:?} should be gone");
        }
        // `other` survives unless it happens to share the subregion —
        // with 256 subregions that would be a 1/256 accident; assert
        // only when subregions differ, keeping the test robust.
        let sub_shared = c.subregion_of(&OpName::from("read"), &ResourceId("file:/shared".into()));
        let sub_other = c.subregion_of(&OpName::from("read"), &ResourceId("file:/other".into()));
        if sub_shared != sub_other {
            assert_eq!(c.lookup(&other), Some(true));
        }
    }

    #[test]
    fn collisions_are_counted_and_displace() {
        let mut c = DecisionCache::new(DecisionCacheConfig {
            total_slots: 4,
            subregion_slots: 2,
        });
        // With 2 subregions × 2 slots, collisions are guaranteed.
        for i in 0..32 {
            c.insert(key(&format!("u{i}"), "read", "file:/x"), true);
        }
        assert!(c.stats().collisions > 0);
        assert!(c.len() <= 4);
    }

    #[test]
    fn resize_preserves_stats_but_drops_entries() {
        let mut c = DecisionCache::default();
        let k = key("a", "op", "o");
        c.insert(k.clone(), true);
        c.lookup(&k);
        let hits = c.stats().hits;
        c.resize(DecisionCacheConfig {
            total_slots: 64,
            subregion_slots: 8,
        });
        assert_eq!(c.stats().hits, hits);
        assert_eq!(c.lookup(&k), None);
    }

    #[test]
    fn negative_decisions_cacheable_too() {
        let mut c = DecisionCache::default();
        let k = key("mallory", "write", "file:/x");
        c.insert(k.clone(), false);
        assert_eq!(c.lookup(&k), Some(false));
    }

    #[test]
    fn clear_empties() {
        let mut c = DecisionCache::default();
        c.insert(key("a", "r", "o"), true);
        assert!(!c.is_empty());
        c.clear();
        assert!(c.is_empty());
    }
}
