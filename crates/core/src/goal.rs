//! Goal formulas and the goalstore (§2.5–2.6).
//!
//! `setgoal` associates a NAL formula with an (operation, resource)
//! pair; subsequent operations are vectored to a guard that checks
//! client proofs against the formula. Setting a goal is itself a
//! guarded operation (typically restricted to the resource owner).
//!
//! The default policy problem: a nascent object with no goal yet must
//! not be world-accessible. The kernel-designated guard interprets the
//! absence of a goal as `resource-manager.object says operation`,
//! satisfiable only by the object itself or its superprincipal, the
//! resource manager that created it.

use crate::resource::{OpName, ResourceId};
use crate::snapshot::Snapshot;
use nexus_nal::{Formula, Principal};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A goal plus its vectoring information.
#[derive(Debug, Clone, PartialEq)]
pub struct GoalEntry {
    /// The goal formula; may contain `$subject`, `$operation`,
    /// `$object` variables instantiated by the guard per request.
    pub formula: Formula,
    /// IPC port of a designated guard, or `None` for the
    /// kernel-designated default guard.
    pub guard_port: Option<u64>,
    /// Monotonic epoch, bumped on every change — consumed by the
    /// decision cache for invalidation bookkeeping.
    pub epoch: u64,
}

/// The kernel's table of goal formulas. Internally synchronized:
/// `setgoal` is a control operation, goal lookup is on every
/// authorization, so the table sits behind an epoch-stamped
/// [`Snapshot`] — readers never block behind a `setgoal` in progress;
/// they observe the last published table and the version it carried.
/// Writers bump the public epoch *first* (inside the snapshot's writer
/// lock), then mutate and publish, so the kernel's
/// validate-after-read check (epoch compare + [`GoalStore::version`]
/// compare) catches both a completed and an in-flight goal change.
#[derive(Debug, Default)]
pub struct GoalStore {
    goals: Snapshot<HashMap<(ResourceId, OpName), GoalEntry>>,
    epoch: AtomicU64,
}

impl GoalStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The `setgoal` system call. Returns the new epoch.
    pub fn set_goal(
        &self,
        resource: ResourceId,
        op: OpName,
        formula: Formula,
        guard_port: Option<u64>,
    ) -> u64 {
        self.goals.update(|goals| {
            // Bump the epoch first, inside the snapshot's writer lock:
            // a reader that captured the old epoch and then observes
            // the new table fails its epoch compare; one that captured
            // the new epoch but still read the old (unpublished) table
            // fails the version compare.
            let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
            goals.insert(
                (resource, op),
                GoalEntry {
                    formula,
                    guard_port,
                    epoch,
                },
            );
            epoch
        })
    }

    /// Remove a goal (`goal clr` in Figure 6). Returns the new epoch,
    /// or `None` if there was nothing to clear.
    pub fn clear_goal(&self, resource: &ResourceId, op: &OpName) -> Option<u64> {
        self.goals.update(|goals| {
            goals
                .remove(&(resource.clone(), op.clone()))
                .map(|_| self.epoch.fetch_add(1, Ordering::Relaxed) + 1)
        })
    }

    /// Look up the goal for an (operation, resource) pair (cloned out
    /// of the store, so no lock is held while the guard runs).
    pub fn get(&self, resource: &ResourceId, op: &OpName) -> Option<GoalEntry> {
        self.goals
            .read(|goals, _| goals.get(&(resource.clone(), op.clone())).cloned())
    }

    /// The effective goal: the stored formula, or the default policy
    /// `resource-manager.object says operation` when none is set.
    pub fn effective_goal(
        &self,
        resource_manager: &Principal,
        resource: &ResourceId,
        op: &OpName,
    ) -> Formula {
        match self.get(resource, op) {
            Some(entry) => entry.formula,
            None => Self::default_goal(resource_manager, resource, op),
        }
    }

    /// Apply `f` to the effective goal *without cloning it out* of
    /// the store — and without taking any lock: `f` borrows the
    /// formula straight out of the current snapshot (the pipeline's
    /// external-authority classification walks the formula here once
    /// per submission — cloning a wide goal per request would
    /// re-introduce exactly the per-request cost batching amortizes
    /// away, and blocking behind a writer would re-introduce the
    /// submission-path stall this PR removes).
    pub fn inspect_effective<R>(
        &self,
        resource_manager: &Principal,
        resource: &ResourceId,
        op: &OpName,
        f: impl FnOnce(&Formula) -> R,
    ) -> R {
        self.goals.read(
            |goals, _| match goals.get(&(resource.clone(), op.clone())) {
                Some(entry) => f(&entry.formula),
                None => f(&Self::default_goal(resource_manager, resource, op)),
            },
        )
    }

    /// The bootstrap default policy (§2.6).
    pub fn default_goal(
        resource_manager: &Principal,
        resource: &ResourceId,
        op: &OpName,
    ) -> Formula {
        let object_principal = resource_manager.sub(resource.0.clone());
        Formula::pred(op.0.clone(), vec![]).says(object_principal)
    }

    /// Number of goals set.
    pub fn len(&self) -> usize {
        self.goals.read(|goals, _| goals.len())
    }

    /// True if no goals set.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Snapshot publication version (monotone; moves on every
    /// `set_goal`/`clear_goal` publish). The kernel's read-stamp
    /// validation compares this *in addition to* [`GoalStore::epoch`]:
    /// the epoch catches changes that completed, the version catches a
    /// writer that had bumped the epoch but not yet published when the
    /// reader sampled the table.
    pub fn version(&self) -> u64 {
        self.goals.version()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_nal::parse;

    #[test]
    fn set_get_clear() {
        let gs = GoalStore::new();
        let r = ResourceId::file("/secret");
        let op = OpName::from("read");
        let f = parse("Owner says TimeNow < 20110319").unwrap();
        let e1 = gs.set_goal(r.clone(), op.clone(), f.clone(), None);
        assert_eq!(gs.get(&r, &op).unwrap().formula, f);
        assert_eq!(gs.get(&r, &op).unwrap().epoch, e1);
        let e2 = gs.clear_goal(&r, &op).unwrap();
        assert!(e2 > e1);
        assert!(gs.get(&r, &op).is_none());
        assert!(gs.clear_goal(&r, &op).is_none());
    }

    #[test]
    fn default_policy_names_resource_manager_subprincipal() {
        let fs = Principal::name("FS");
        let r = ResourceId::file("/dir/file");
        let g = GoalStore::default_goal(&fs, &r, &OpName::from("write"));
        assert_eq!(g, parse("FS.file:/dir/file says write").unwrap());
    }

    #[test]
    fn effective_goal_falls_back_to_default() {
        let gs = GoalStore::new();
        let fs = Principal::name("FS");
        let r = ResourceId::file("/f");
        let op = OpName::from("read");
        let def = gs.effective_goal(&fs, &r, &op);
        assert_eq!(def, GoalStore::default_goal(&fs, &r, &op));
        let f = parse("anyone says ok").unwrap();
        gs.set_goal(r.clone(), op.clone(), f.clone(), None);
        assert_eq!(gs.effective_goal(&fs, &r, &op), f);
    }

    #[test]
    fn per_operation_goals_are_independent() {
        let gs = GoalStore::new();
        let r = ResourceId::vkey(1);
        // Group signatures (§3.3): different goals for sign vs
        // externalize on the same key.
        gs.set_goal(
            r.clone(),
            OpName::from("sign"),
            parse("GroupMgr says member($subject)").unwrap(),
            None,
        );
        gs.set_goal(
            r.clone(),
            OpName::from("externalize"),
            parse("GroupMgr says keymaster($subject)").unwrap(),
            None,
        );
        assert_ne!(
            gs.get(&r, &OpName::from("sign")).unwrap().formula,
            gs.get(&r, &OpName::from("externalize")).unwrap().formula
        );
    }

    #[test]
    fn seqlock_goal_epoch_bumps_before_publication_is_visible() {
        // The writer protocol: any reader that observes the new table
        // must also observe the new epoch (epoch bumped first, inside
        // the writer lock). Readers hammer (epoch, get, version)
        // triples while a writer churns goals; an entry's recorded
        // epoch must never exceed the store epoch sampled *after* it.
        let gs = std::sync::Arc::new(GoalStore::new());
        let r = ResourceId::file("/hot");
        let op = OpName::from("read");
        let writer = {
            let gs = std::sync::Arc::clone(&gs);
            let (r, op) = (r.clone(), op.clone());
            std::thread::spawn(move || {
                for _ in 0..2_000 {
                    gs.set_goal(r.clone(), op.clone(), Formula::False, None);
                }
            })
        };
        let mut last_version = 0;
        for _ in 0..10_000 {
            if let Some(entry) = gs.get(&r, &op) {
                let epoch_after = gs.epoch();
                assert!(
                    entry.epoch <= epoch_after,
                    "published entry carries an epoch the store has not reached"
                );
            }
            let v = gs.version();
            assert!(v >= last_version, "snapshot version went backwards");
            last_version = v;
        }
        writer.join().unwrap();
    }

    #[test]
    fn lockout_is_possible_without_superuser() {
        // Footnote 2: a bad application can set an unsatisfiable goal
        // on its own resource. The goalstore does not prevent this —
        // there is no superuser.
        let gs = GoalStore::new();
        let r = ResourceId::file("/mine");
        gs.set_goal(r.clone(), OpName::from("read"), Formula::False, None);
        assert_eq!(
            gs.get(&r, &OpName::from("read")).unwrap().formula,
            Formula::False
        );
    }
}
