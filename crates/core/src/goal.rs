//! Goal formulas and the goalstore (§2.5–2.6).
//!
//! `setgoal` associates a NAL formula with an (operation, resource)
//! pair; subsequent operations are vectored to a guard that checks
//! client proofs against the formula. Setting a goal is itself a
//! guarded operation (typically restricted to the resource owner).
//!
//! The default policy problem: a nascent object with no goal yet must
//! not be world-accessible. The kernel-designated guard interprets the
//! absence of a goal as `resource-manager.object says operation`,
//! satisfiable only by the object itself or its superprincipal, the
//! resource manager that created it.

use crate::resource::{OpName, ResourceId};
use nexus_nal::{Formula, Principal};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A goal plus its vectoring information.
#[derive(Debug, Clone, PartialEq)]
pub struct GoalEntry {
    /// The goal formula; may contain `$subject`, `$operation`,
    /// `$object` variables instantiated by the guard per request.
    pub formula: Formula,
    /// IPC port of a designated guard, or `None` for the
    /// kernel-designated default guard.
    pub guard_port: Option<u64>,
    /// Monotonic epoch, bumped on every change — consumed by the
    /// decision cache for invalidation bookkeeping.
    pub epoch: u64,
}

/// The kernel's table of goal formulas. Internally synchronized:
/// `setgoal` is a control operation, goal lookup is on every
/// authorization, so the table sits behind a reader-writer lock and
/// all operations take `&self`.
#[derive(Debug, Default)]
pub struct GoalStore {
    goals: RwLock<HashMap<(ResourceId, OpName), GoalEntry>>,
    epoch: AtomicU64,
}

impl GoalStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The `setgoal` system call. Returns the new epoch.
    pub fn set_goal(
        &self,
        resource: ResourceId,
        op: OpName,
        formula: Formula,
        guard_port: Option<u64>,
    ) -> u64 {
        // Take the write lock first so the epoch order matches the
        // table order observed by readers.
        let mut goals = self.goals.write();
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        goals.insert(
            (resource, op),
            GoalEntry {
                formula,
                guard_port,
                epoch,
            },
        );
        epoch
    }

    /// Remove a goal (`goal clr` in Figure 6). Returns the new epoch,
    /// or `None` if there was nothing to clear.
    pub fn clear_goal(&self, resource: &ResourceId, op: &OpName) -> Option<u64> {
        let mut goals = self.goals.write();
        goals
            .remove(&(resource.clone(), op.clone()))
            .map(|_| self.epoch.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Look up the goal for an (operation, resource) pair (cloned out
    /// of the store, so no lock is held while the guard runs).
    pub fn get(&self, resource: &ResourceId, op: &OpName) -> Option<GoalEntry> {
        self.goals
            .read()
            .get(&(resource.clone(), op.clone()))
            .cloned()
    }

    /// The effective goal: the stored formula, or the default policy
    /// `resource-manager.object says operation` when none is set.
    pub fn effective_goal(
        &self,
        resource_manager: &Principal,
        resource: &ResourceId,
        op: &OpName,
    ) -> Formula {
        match self.get(resource, op) {
            Some(entry) => entry.formula,
            None => Self::default_goal(resource_manager, resource, op),
        }
    }

    /// Apply `f` to the effective goal *without cloning it out* of
    /// the store: the read lock is held for the duration of `f`, so
    /// keep it cheap and lock-free (the pipeline's external-authority
    /// classification walks the formula here once per submission —
    /// cloning a wide goal per request would re-introduce exactly the
    /// per-request cost batching amortizes away).
    pub fn inspect_effective<R>(
        &self,
        resource_manager: &Principal,
        resource: &ResourceId,
        op: &OpName,
        f: impl FnOnce(&Formula) -> R,
    ) -> R {
        let goals = self.goals.read();
        match goals.get(&(resource.clone(), op.clone())) {
            Some(entry) => f(&entry.formula),
            None => f(&Self::default_goal(resource_manager, resource, op)),
        }
    }

    /// The bootstrap default policy (§2.6).
    pub fn default_goal(
        resource_manager: &Principal,
        resource: &ResourceId,
        op: &OpName,
    ) -> Formula {
        let object_principal = resource_manager.sub(resource.0.clone());
        Formula::pred(op.0.clone(), vec![]).says(object_principal)
    }

    /// Number of goals set.
    pub fn len(&self) -> usize {
        self.goals.read().len()
    }

    /// True if no goals set.
    pub fn is_empty(&self) -> bool {
        self.goals.read().is_empty()
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_nal::parse;

    #[test]
    fn set_get_clear() {
        let gs = GoalStore::new();
        let r = ResourceId::file("/secret");
        let op = OpName::from("read");
        let f = parse("Owner says TimeNow < 20110319").unwrap();
        let e1 = gs.set_goal(r.clone(), op.clone(), f.clone(), None);
        assert_eq!(gs.get(&r, &op).unwrap().formula, f);
        assert_eq!(gs.get(&r, &op).unwrap().epoch, e1);
        let e2 = gs.clear_goal(&r, &op).unwrap();
        assert!(e2 > e1);
        assert!(gs.get(&r, &op).is_none());
        assert!(gs.clear_goal(&r, &op).is_none());
    }

    #[test]
    fn default_policy_names_resource_manager_subprincipal() {
        let fs = Principal::name("FS");
        let r = ResourceId::file("/dir/file");
        let g = GoalStore::default_goal(&fs, &r, &OpName::from("write"));
        assert_eq!(g, parse("FS.file:/dir/file says write").unwrap());
    }

    #[test]
    fn effective_goal_falls_back_to_default() {
        let gs = GoalStore::new();
        let fs = Principal::name("FS");
        let r = ResourceId::file("/f");
        let op = OpName::from("read");
        let def = gs.effective_goal(&fs, &r, &op);
        assert_eq!(def, GoalStore::default_goal(&fs, &r, &op));
        let f = parse("anyone says ok").unwrap();
        gs.set_goal(r.clone(), op.clone(), f.clone(), None);
        assert_eq!(gs.effective_goal(&fs, &r, &op), f);
    }

    #[test]
    fn per_operation_goals_are_independent() {
        let gs = GoalStore::new();
        let r = ResourceId::vkey(1);
        // Group signatures (§3.3): different goals for sign vs
        // externalize on the same key.
        gs.set_goal(
            r.clone(),
            OpName::from("sign"),
            parse("GroupMgr says member($subject)").unwrap(),
            None,
        );
        gs.set_goal(
            r.clone(),
            OpName::from("externalize"),
            parse("GroupMgr says keymaster($subject)").unwrap(),
            None,
        );
        assert_ne!(
            gs.get(&r, &OpName::from("sign")).unwrap().formula,
            gs.get(&r, &OpName::from("externalize")).unwrap().formula
        );
    }

    #[test]
    fn lockout_is_possible_without_superuser() {
        // Footnote 2: a bad application can set an unsatisfiable goal
        // on its own resource. The goalstore does not prevent this —
        // there is no superuser.
        let gs = GoalStore::new();
        let r = ResourceId::file("/mine");
        gs.set_goal(r.clone(), OpName::from("read"), Formula::False, None);
        assert_eq!(
            gs.get(&r, &OpName::from("read")).unwrap().formula,
            Formula::False
        );
    }
}
