//! Authorities: dynamic state without invalidated credentials (§2.7).
//!
//! A trustworthy principal must not emit transferable statements that
//! can later become false — an NTP service that signed "the time is
//! now X" would promptly become a liar. Instead, an authority answers
//! validity queries *on each check*: the guard asks "do you currently
//! believe S?", and the yes/no answer is authoritative (by virtue of
//! the attested IPC channel) but untransferable and uncacheable.
//!
//! This split — indefinitely-cacheable labels vs. untransferable
//! authority answers — is what lets Nexus do without a revocation
//! infrastructure: revocable facts are phrased as
//! `A says (Valid(S) → S)` with an authority for `A says Valid(S)`.

use nexus_nal::{Formula, Principal};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Whether the authority runs inside the guard process (embedded) or
/// behind an IPC channel (external). External queries traverse the
/// kernel's interposition machinery and cost correspondingly more —
/// the `embed auth` vs `auth` distinction in Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthorityKind {
    /// In-process: a function call.
    Embedded,
    /// Behind an IPC port: an upcall.
    External,
}

/// An authority: answers whether it *currently* believes a statement.
pub trait Authority: Send + Sync {
    /// Authoritative, untransferable answer for `statement` — the
    /// inner `S` of a leaf `P says S` where `P` is this authority.
    fn check(&self, statement: &Formula) -> bool;
}

/// An authority implemented by a closure over live state.
pub struct FnAuthority<F: Fn(&Formula) -> bool + Send + Sync>(pub F);

impl<F: Fn(&Formula) -> bool + Send + Sync> Authority for FnAuthority<F> {
    fn check(&self, statement: &Formula) -> bool {
        (self.0)(statement)
    }
}

struct Registered {
    authority: Arc<dyn Authority>,
    kind: AuthorityKind,
}

/// The kernel's table of registered authorities, keyed by the
/// principal whose statements they vouch for (the paper binds
/// authorities to attested IPC ports; the port-to-principal label is
/// the kernel's). Internally synchronized: registration is rare,
/// queries are the hot path, so the map sits behind a reader-writer
/// lock and all operations take `&self`.
#[derive(Default)]
pub struct AuthorityRegistry {
    map: RwLock<HashMap<Principal, Registered>>,
    queries: AtomicU64,
    /// Count of registered [`AuthorityKind::External`] authorities,
    /// kept denormalized so the pipeline's per-submission external
    /// classification ([`AuthorityRegistry::mentions_external`]) can
    /// bail with one atomic load in the common no-externals case.
    externals: AtomicUsize,
}

impl AuthorityRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an authority for `principal`'s statements
    /// (the `auth add` control operation of Figure 6).
    pub fn register(
        &self,
        principal: Principal,
        authority: Arc<dyn Authority>,
        kind: AuthorityKind,
    ) {
        let mut map = self.map.write();
        let old = map.insert(principal, Registered { authority, kind });
        // Adjust the external count under the write lock so a racing
        // re-registration cannot double-count.
        if old.map(|r| r.kind) == Some(AuthorityKind::External) {
            self.externals.fetch_sub(1, Ordering::Relaxed);
        }
        if kind == AuthorityKind::External {
            self.externals.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Remove an authority.
    pub fn unregister(&self, principal: &Principal) -> bool {
        let mut map = self.map.write();
        match map.remove(principal) {
            Some(r) => {
                if r.kind == AuthorityKind::External {
                    self.externals.fetch_sub(1, Ordering::Relaxed);
                }
                true
            }
            None => false,
        }
    }

    /// Is any [`AuthorityKind::External`] authority registered? One
    /// atomic load — the guard pool's submission path calls this per
    /// decision-cache miss.
    pub fn has_external(&self) -> bool {
        self.externals.load(Ordering::Relaxed) > 0
    }

    /// Conservative pre-evaluation classification: could evaluating a
    /// request under `formula` (a goal, or a proof leaf) consult an
    /// external authority? True when any principal mentioned in the
    /// formula — as a `says` speaker or a `speaksfor` party — has a
    /// registered external authority. Used by the kernel to route
    /// requests to the pipeline's dedicated external lane *before*
    /// evaluation; a misclassification costs placement (which lane
    /// runs the batch), never correctness.
    pub fn mentions_external(&self, formula: &Formula) -> bool {
        if !self.has_external() {
            return false;
        }
        let map = self.map.read();
        fn walk(map: &HashMap<Principal, Registered>, f: &Formula) -> bool {
            let is_ext = |p: &Principal| {
                map.get(p)
                    .is_some_and(|r| r.kind == AuthorityKind::External)
            };
            match f {
                Formula::Says(p, inner) => is_ext(p) || walk(map, inner),
                Formula::SpeaksFor { from, to, .. } => is_ext(from) || is_ext(to),
                Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) => {
                    walk(map, a) || walk(map, b)
                }
                Formula::Not(a) => walk(map, a),
                Formula::True | Formula::False | Formula::Pred(..) | Formula::Cmp(..) => false,
            }
        }
        walk(&map, formula)
    }

    /// Is any authority registered for this principal?
    pub fn has(&self, principal: &Principal) -> bool {
        self.map.read().contains_key(principal)
    }

    /// The kind of the registered authority, if any.
    pub fn kind(&self, principal: &Principal) -> Option<AuthorityKind> {
        self.map.read().get(principal).map(|r| r.kind)
    }

    /// Query: does `principal` currently believe `statement`?
    /// Returns `None` if no authority is registered for `principal`.
    ///
    /// The authority runs *outside* the registry lock: a slow
    /// external authority must not serialize unrelated checks.
    pub fn query(&self, principal: &Principal, statement: &Formula) -> Option<bool> {
        let authority = Arc::clone(&self.map.read().get(principal)?.authority);
        self.queries.fetch_add(1, Ordering::Relaxed);
        Some(authority.check(statement))
    }

    /// Total number of authority queries (statistics).
    pub fn query_count(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_nal::parse;
    use parking_lot::Mutex;

    #[test]
    fn fn_authority_answers() {
        let auth = FnAuthority(|s: &Formula| s.to_string() == "sky = blue");
        assert!(auth.check(&parse("sky = blue").unwrap()));
        assert!(!auth.check(&parse("sky = green").unwrap()));
    }

    #[test]
    fn registry_lookup_and_query() {
        let reg = AuthorityRegistry::new();
        let ntp = Principal::name("NTP");
        reg.register(
            ntp.clone(),
            Arc::new(FnAuthority(|s: &Formula| {
                // A clock authority subscribing to a small set of
                // arithmetic statements about the time (§2.7).
                match s {
                    Formula::Cmp(op, a, b) => {
                        let now = 20110301i64; // frozen clock for the test
                        match (a, b) {
                            (nexus_nal::Term::Sym(n), nexus_nal::Term::Int(bound))
                                if n == "TimeNow" =>
                            {
                                op.eval(&now, bound)
                            }
                            _ => false,
                        }
                    }
                    _ => false,
                }
            })),
            AuthorityKind::External,
        );
        assert!(reg.has(&ntp));
        assert_eq!(reg.kind(&ntp), Some(AuthorityKind::External));
        assert_eq!(
            reg.query(&ntp, &parse("TimeNow < 20110319").unwrap()),
            Some(true)
        );
        assert_eq!(
            reg.query(&ntp, &parse("TimeNow < 20110201").unwrap()),
            Some(false)
        );
        assert_eq!(
            reg.query(&Principal::name("Nobody"), &parse("x").unwrap()),
            None
        );
        assert_eq!(reg.query_count(), 2);
    }

    #[test]
    fn authority_answers_track_live_state() {
        // The whole point: answers change as state changes, with no
        // stale credentials anywhere.
        let quota = Arc::new(Mutex::new(50u64));
        let q = quota.clone();
        let reg = AuthorityRegistry::new();
        let fs = Principal::name("Filesystem");
        reg.register(
            fs.clone(),
            Arc::new(FnAuthority(move |s: &Formula| {
                s.to_string() == "underQuota(alice)" && *q.lock() < 80
            })),
            AuthorityKind::Embedded,
        );
        let stmt = parse("underQuota(alice)").unwrap();
        assert_eq!(reg.query(&fs, &stmt), Some(true));
        *quota.lock() = 90;
        assert_eq!(reg.query(&fs, &stmt), Some(false));
    }

    #[test]
    fn external_classification_walks_formulas() {
        let reg = AuthorityRegistry::new();
        assert!(!reg.has_external());
        // With no externals registered, classification is a constant
        // `false` regardless of the formula.
        assert!(!reg.mentions_external(&parse("NTP says TimeNow < 5").unwrap()));
        reg.register(
            Principal::name("Embedded"),
            Arc::new(FnAuthority(|_| true)),
            AuthorityKind::Embedded,
        );
        assert!(!reg.has_external());
        reg.register(
            Principal::name("NTP"),
            Arc::new(FnAuthority(|_| true)),
            AuthorityKind::External,
        );
        assert!(reg.has_external());
        assert!(reg.mentions_external(&parse("NTP says TimeNow < 5").unwrap()));
        assert!(reg.mentions_external(&parse("x or NTP says fresh").unwrap()));
        assert!(reg.mentions_external(&parse("a says (NTP says fresh)").unwrap()));
        // Embedded authorities and unregistered principals don't
        // classify as external.
        assert!(!reg.mentions_external(&parse("Embedded says ok").unwrap()));
        assert!(!reg.mentions_external(&parse("Nobody says ok and y").unwrap()));
        // Re-registration flips the count both ways; unregister
        // clears it.
        reg.register(
            Principal::name("NTP"),
            Arc::new(FnAuthority(|_| true)),
            AuthorityKind::Embedded,
        );
        assert!(!reg.has_external());
        reg.register(
            Principal::name("NTP"),
            Arc::new(FnAuthority(|_| true)),
            AuthorityKind::External,
        );
        assert!(reg.unregister(&Principal::name("NTP")));
        assert!(!reg.has_external());
    }

    #[test]
    fn unregister_removes() {
        let reg = AuthorityRegistry::new();
        let p = Principal::name("X");
        reg.register(
            p.clone(),
            Arc::new(FnAuthority(|_| true)),
            AuthorityKind::Embedded,
        );
        assert!(reg.unregister(&p));
        assert!(!reg.has(&p));
        assert!(!reg.unregister(&p));
    }
}
