//! Authorities: dynamic state without invalidated credentials (§2.7).
//!
//! A trustworthy principal must not emit transferable statements that
//! can later become false — an NTP service that signed "the time is
//! now X" would promptly become a liar. Instead, an authority answers
//! validity queries *on each check*: the guard asks "do you currently
//! believe S?", and the yes/no answer is authoritative (by virtue of
//! the attested IPC channel) but untransferable and uncacheable.
//!
//! This split — indefinitely-cacheable labels vs. untransferable
//! authority answers — is what lets Nexus do without a revocation
//! infrastructure: revocable facts are phrased as
//! `A says (Valid(S) → S)` with an authority for `A says Valid(S)`.

use nexus_nal::{Formula, Principal};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Whether the authority runs inside the guard process (embedded) or
/// behind an IPC channel (external). External queries traverse the
/// kernel's interposition machinery and cost correspondingly more —
/// the `embed auth` vs `auth` distinction in Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthorityKind {
    /// In-process: a function call.
    Embedded,
    /// Behind an IPC port: an upcall.
    External,
}

/// An authority: answers whether it *currently* believes a statement.
pub trait Authority: Send + Sync {
    /// Authoritative, untransferable answer for `statement` — the
    /// inner `S` of a leaf `P says S` where `P` is this authority.
    fn check(&self, statement: &Formula) -> bool;
}

/// An authority implemented by a closure over live state.
pub struct FnAuthority<F: Fn(&Formula) -> bool + Send + Sync>(pub F);

impl<F: Fn(&Formula) -> bool + Send + Sync> Authority for FnAuthority<F> {
    fn check(&self, statement: &Formula) -> bool {
        (self.0)(statement)
    }
}

struct Registered {
    authority: Arc<dyn Authority>,
    kind: AuthorityKind,
}

/// The kernel's table of registered authorities, keyed by the
/// principal whose statements they vouch for (the paper binds
/// authorities to attested IPC ports; the port-to-principal label is
/// the kernel's). Internally synchronized: registration is rare,
/// queries are the hot path, so the map sits behind a reader-writer
/// lock and all operations take `&self`.
#[derive(Default)]
pub struct AuthorityRegistry {
    map: RwLock<HashMap<Principal, Registered>>,
    queries: AtomicU64,
}

impl AuthorityRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an authority for `principal`'s statements
    /// (the `auth add` control operation of Figure 6).
    pub fn register(
        &self,
        principal: Principal,
        authority: Arc<dyn Authority>,
        kind: AuthorityKind,
    ) {
        self.map
            .write()
            .insert(principal, Registered { authority, kind });
    }

    /// Remove an authority.
    pub fn unregister(&self, principal: &Principal) -> bool {
        self.map.write().remove(principal).is_some()
    }

    /// Is any authority registered for this principal?
    pub fn has(&self, principal: &Principal) -> bool {
        self.map.read().contains_key(principal)
    }

    /// The kind of the registered authority, if any.
    pub fn kind(&self, principal: &Principal) -> Option<AuthorityKind> {
        self.map.read().get(principal).map(|r| r.kind)
    }

    /// Query: does `principal` currently believe `statement`?
    /// Returns `None` if no authority is registered for `principal`.
    ///
    /// The authority runs *outside* the registry lock: a slow
    /// external authority must not serialize unrelated checks.
    pub fn query(&self, principal: &Principal, statement: &Formula) -> Option<bool> {
        let authority = Arc::clone(&self.map.read().get(principal)?.authority);
        self.queries.fetch_add(1, Ordering::Relaxed);
        Some(authority.check(statement))
    }

    /// Total number of authority queries (statistics).
    pub fn query_count(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_nal::parse;
    use parking_lot::Mutex;

    #[test]
    fn fn_authority_answers() {
        let auth = FnAuthority(|s: &Formula| s.to_string() == "sky = blue");
        assert!(auth.check(&parse("sky = blue").unwrap()));
        assert!(!auth.check(&parse("sky = green").unwrap()));
    }

    #[test]
    fn registry_lookup_and_query() {
        let reg = AuthorityRegistry::new();
        let ntp = Principal::name("NTP");
        reg.register(
            ntp.clone(),
            Arc::new(FnAuthority(|s: &Formula| {
                // A clock authority subscribing to a small set of
                // arithmetic statements about the time (§2.7).
                match s {
                    Formula::Cmp(op, a, b) => {
                        let now = 20110301i64; // frozen clock for the test
                        match (a, b) {
                            (nexus_nal::Term::Sym(n), nexus_nal::Term::Int(bound))
                                if n == "TimeNow" =>
                            {
                                op.eval(&now, bound)
                            }
                            _ => false,
                        }
                    }
                    _ => false,
                }
            })),
            AuthorityKind::External,
        );
        assert!(reg.has(&ntp));
        assert_eq!(reg.kind(&ntp), Some(AuthorityKind::External));
        assert_eq!(
            reg.query(&ntp, &parse("TimeNow < 20110319").unwrap()),
            Some(true)
        );
        assert_eq!(
            reg.query(&ntp, &parse("TimeNow < 20110201").unwrap()),
            Some(false)
        );
        assert_eq!(
            reg.query(&Principal::name("Nobody"), &parse("x").unwrap()),
            None
        );
        assert_eq!(reg.query_count(), 2);
    }

    #[test]
    fn authority_answers_track_live_state() {
        // The whole point: answers change as state changes, with no
        // stale credentials anywhere.
        let quota = Arc::new(Mutex::new(50u64));
        let q = quota.clone();
        let reg = AuthorityRegistry::new();
        let fs = Principal::name("Filesystem");
        reg.register(
            fs.clone(),
            Arc::new(FnAuthority(move |s: &Formula| {
                s.to_string() == "underQuota(alice)" && *q.lock() < 80
            })),
            AuthorityKind::Embedded,
        );
        let stmt = parse("underQuota(alice)").unwrap();
        assert_eq!(reg.query(&fs, &stmt), Some(true));
        *quota.lock() = 90;
        assert_eq!(reg.query(&fs, &stmt), Some(false));
    }

    #[test]
    fn unregister_removes() {
        let reg = AuthorityRegistry::new();
        let p = Principal::name("X");
        reg.register(
            p.clone(),
            Arc::new(FnAuthority(|_| true)),
            AuthorityKind::Embedded,
        );
        assert!(reg.unregister(&p));
        assert!(!reg.has(&p));
        assert!(!reg.unregister(&p));
    }
}
