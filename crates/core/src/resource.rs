//! Resource and operation names.
//!
//! Nexus allows a goal formula to be attached to *any* operation on
//! *any* system resource (§2.5): processes, threads, memory maps,
//! pages, IPC ports, files, directories, VDIRs, VKEYs…  Resources are
//! identified by structured string names so the same goalstore serves
//! every resource manager.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A resource identifier, e.g. `file:/fauxbook/alice/wall`,
/// `ipc:42`, `ipd:12`, `vdir:3`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ResourceId(pub String);

impl ResourceId {
    /// Build a namespaced id.
    pub fn new(kind: &str, name: impl fmt::Display) -> Self {
        ResourceId(format!("{kind}:{name}"))
    }

    /// A file resource.
    pub fn file(path: &str) -> Self {
        Self::new("file", path)
    }

    /// An IPC port resource.
    pub fn ipc(port: u64) -> Self {
        Self::new("ipc", port)
    }

    /// A process (isolated protection domain) resource.
    pub fn ipd(pid: u64) -> Self {
        Self::new("ipd", pid)
    }

    /// A virtual data integrity register.
    pub fn vdir(idx: u64) -> Self {
        Self::new("vdir", idx)
    }

    /// A virtual key.
    pub fn vkey(idx: u64) -> Self {
        Self::new("vkey", idx)
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An operation name on a resource (`read`, `write`, `setgoal`, …).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpName(pub String);

impl OpName {
    /// Construct from anything stringy.
    pub fn new(s: impl Into<String>) -> Self {
        OpName(s.into())
    }
}

impl fmt::Display for OpName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for OpName {
    fn from(s: &str) -> Self {
        OpName(s.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_display() {
        assert_eq!(ResourceId::file("/a/b").to_string(), "file:/a/b");
        assert_eq!(ResourceId::ipc(42).to_string(), "ipc:42");
        assert_eq!(ResourceId::ipd(12).to_string(), "ipd:12");
        assert_eq!(ResourceId::vdir(3).to_string(), "vdir:3");
        assert_eq!(ResourceId::vkey(7).to_string(), "vkey:7");
        assert_eq!(OpName::from("read").to_string(), "read");
    }

    #[test]
    fn equality_and_hash() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert((ResourceId::file("/x"), OpName::from("read")));
        assert!(s.contains(&(ResourceId::file("/x"), OpName::from("read"))));
        assert!(!s.contains(&(ResourceId::file("/x"), OpName::from("write"))));
    }
}
