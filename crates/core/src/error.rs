//! Error type for logical-attestation operations.

use nexus_nal::{CheckError, ParseError};
use std::fmt;

/// Errors from label, goal, credential, and guard operations.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Label handle not present in the labelstore.
    NoSuchLabel(u64),
    /// NAL parse failure (e.g. in `say`).
    Parse(ParseError),
    /// The caller is not permitted to make this statement (a process
    /// may only `say` in its own name or that of its subprincipals).
    NotSpeaker {
        /// Who tried to speak.
        caller: String,
        /// Whose statement it would have been.
        speaker: String,
    },
    /// Certificate chain failed to verify.
    BadCertificate(String),
    /// Proof checking failed.
    Check(CheckError),
    /// No proof supplied or stored for the request.
    NoProof,
    /// TPM error during externalization.
    Tpm(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NoSuchLabel(h) => write!(f, "no label with handle {h}"),
            CoreError::Parse(e) => write!(f, "{e}"),
            CoreError::NotSpeaker { caller, speaker } => {
                write!(f, "{caller} may not speak for {speaker}")
            }
            CoreError::BadCertificate(m) => write!(f, "bad certificate: {m}"),
            CoreError::Check(e) => write!(f, "{e}"),
            CoreError::NoProof => write!(f, "no proof supplied"),
            CoreError::Tpm(m) => write!(f, "TPM error: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<ParseError> for CoreError {
    fn from(e: ParseError) -> Self {
        CoreError::Parse(e)
    }
}

impl From<CheckError> for CoreError {
    fn from(e: CheckError) -> Self {
        CoreError::Check(e)
    }
}
