//! Epoch-stamped read snapshots — the optimistic-read primitive behind
//! the lock-free authorization path.
//!
//! A [`Snapshot<T>`] publishes immutable `Arc<T>` values under a
//! monotonically increasing *version*. Readers never block behind a
//! writer: the hot path is one atomic version load plus a lookup in a
//! thread-local cache of `(version, Arc<T>)` pairs — no shared
//! reference-count traffic, no reader-count cache line to ping-pong,
//! no lock word to spin on. Writers serialize on an internal mutex,
//! build the next value, and publish it with a version bump.
//!
//! ## The validate-after-read discipline
//!
//! A snapshot read returns data *and the version it was published
//! under*. The reader may therefore race a writer and observe the
//! previous value — that is the point. Consumers that must not act on
//! stale data (the decision-cache fill path) re-check
//! [`Snapshot::version`] after computing: if the version still equals
//! the one they read under, no publication intervened and the
//! observation was serializable; if it moved, the result is discarded
//! (the decision is simply not cached). This mirrors the kernel's
//! epoch-triple fence and the optimistic-concurrency reasoning the
//! ISSUE cites: reads race freely, a post-hoc check decides whether
//! the observation counts.
//!
//! ## Writer protocol
//!
//! Store writers (`setgoal`, proof install) bump their public epoch
//! counter *first*, then mutate and publish ([`Snapshot::update`]
//! holds the writer lock across both). A reader that captured the
//! counter before the bump fails the counter comparison; a reader
//! that captured it after can still have read the *previous* value
//! (publication pending) — which is exactly what the version
//! comparison catches. Both checks together restore "lock held ⇒
//! consistent" without the lock.
//!
//! ## Thread-local cache
//!
//! The per-thread cache is keyed by a process-unique snapshot id. It
//! is taken out of its cell for the duration of a read (a re-entrant
//! read simply misses the cache and takes the writer-lock slow path),
//! so no `RefCell` double-borrow is possible. The cache is bounded:
//! when it grows past `TLS_CACHE_MAX` entries it is dropped
//! wholesale and rebuilt on demand, so threads that outlive many
//! kernels (the test harness) cannot accumulate dead snapshots.

use parking_lot::Mutex;
use std::any::Any;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Upper bound on cached snapshots per thread before wholesale reset.
const TLS_CACHE_MAX: usize = 64;

/// Process-wide id source so every snapshot gets a distinct TLS key.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

type TlsMap = HashMap<u64, (u64, Arc<dyn Any + Send + Sync>)>;

thread_local! {
    /// id → (version, value) cache. Held in a `Cell<Option<…>>` and
    /// *taken* for the duration of a read; see module docs.
    static TLS_CACHE: Cell<Option<Box<TlsMap>>> = const { Cell::new(None) };
}

/// Restores the thread-local cache when a read completes (including
/// by unwind, so a panicking reader closure cannot permanently
/// degrade the thread to the slow path).
struct PutBack(Option<Box<TlsMap>>);

impl Drop for PutBack {
    fn drop(&mut self) {
        if let Some(map) = self.0.take() {
            TLS_CACHE.with(|c| c.set(Some(map)));
        }
    }
}

/// A versioned, lock-free-readable publication cell. See module docs.
pub struct Snapshot<T: ?Sized> {
    id: u64,
    /// Publication version: bumped (Release) on every publish, read
    /// (Acquire) by the fast path and by validate-after-read checks.
    version: AtomicU64,
    /// The current value, guarded for writers and slow-path readers.
    current: Mutex<Arc<T>>,
}

impl<T: Send + Sync + 'static> Snapshot<T> {
    /// A snapshot holding `value` at version 0.
    pub fn new(value: T) -> Self {
        Snapshot {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            version: AtomicU64::new(0),
            current: Mutex::new(Arc::new(value)),
        }
    }

    /// Current publication version (Acquire). Monotone; equal
    /// versions imply identical published values.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Read the current value without blocking behind writers: `f`
    /// receives the value and the version it was published under.
    ///
    /// The fast path (version unchanged since this thread's last read)
    /// is one atomic load and a thread-local map probe — no shared
    /// writes at all. On a version change (or a re-entrant read) the
    /// slow path briefly takes the writer mutex to clone the `Arc`.
    /// The value may be one publication behind the instant `f` runs;
    /// callers needing freshness re-check [`Snapshot::version`]
    /// afterwards (see module docs).
    pub fn read<R>(&self, f: impl FnOnce(&T, u64) -> R) -> R {
        let v = self.version.load(Ordering::Acquire);
        let Some(mut map) = TLS_CACHE.with(|c| c.take()) else {
            // Re-entrant read (an outer read holds the cache): fall
            // back to a short lock + Arc clone. Correct, just slower.
            let (arc, ver) = self.load_slow();
            return f(&arc, ver);
        };
        if map.len() > TLS_CACHE_MAX {
            map.clear();
        }
        match map.get(&self.id) {
            Some((ver, _)) if *ver == v => {}
            _ => {
                let (arc, ver) = self.load_slow();
                map.insert(self.id, (ver, arc));
            }
        }
        let put_back = PutBack(Some(map));
        let (ver, any) = put_back
            .0
            .as_ref()
            .expect("map present until drop")
            .get(&self.id)
            .expect("entry inserted above");
        let value: &T = any.downcast_ref::<T>().expect("id is unique per type");
        f(value, *ver)
    }

    /// Slow path: take the writer lock and clone out a coherent
    /// (value, version) pair. The version is re-read under the lock
    /// so it cannot be torn against the value.
    fn load_slow(&self) -> (Arc<T>, u64) {
        let guard = self.current.lock();
        let arc = Arc::clone(&guard);
        let ver = self.version.load(Ordering::Acquire);
        (arc, ver)
    }

    /// Replace the published value (version bumps by one).
    pub fn publish(&self, value: T) {
        let mut guard = self.current.lock();
        *guard = Arc::new(value);
        self.version.fetch_add(1, Ordering::Release);
    }

    /// Mutate-and-publish under the writer lock: the current value is
    /// cloned, `f` edits the clone (and typically bumps the owning
    /// store's epoch counter *before* mutating — the writer lock is
    /// held throughout, so bump → mutate → publish is atomic with
    /// respect to other writers), and the result is published.
    pub fn update<R>(&self, f: impl FnOnce(&mut T) -> R) -> R
    where
        T: Clone,
    {
        let mut guard = self.current.lock();
        let mut next = (**guard).clone();
        let r = f(&mut next);
        *guard = Arc::new(next);
        self.version.fetch_add(1, Ordering::Release);
        r
    }
}

impl<T: Send + Sync + Default + 'static> Default for Snapshot<T> {
    fn default() -> Self {
        Snapshot::new(T::default())
    }
}

impl<T: ?Sized> std::fmt::Debug for Snapshot<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("id", &self.id)
            .field("version", &self.version.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    #[test]
    fn seqlock_snapshot_read_returns_published_value_and_version() {
        let s = Snapshot::new(10u64);
        assert_eq!(s.read(|v, ver| (*v, ver)), (10, 0));
        s.publish(11);
        assert_eq!(s.version(), 1);
        assert_eq!(s.read(|v, ver| (*v, ver)), (11, 1));
        // Fast path: repeated read without publication.
        assert_eq!(s.read(|v, ver| (*v, ver)), (11, 1));
    }

    #[test]
    fn seqlock_snapshot_update_clones_and_bumps() {
        let s = Snapshot::new(vec![1, 2]);
        let len = s.update(|v| {
            v.push(3);
            v.len()
        });
        assert_eq!(len, 3);
        assert_eq!(s.read(|v, _| v.clone()), vec![1, 2, 3]);
        assert_eq!(s.version(), 1);
    }

    #[test]
    fn seqlock_snapshot_reentrant_read_takes_slow_path() {
        let a = Snapshot::new(1u64);
        let b = Snapshot::new(2u64);
        // Nested distinct-snapshot reads: the inner read must not
        // deadlock or panic — it misses the (taken) TLS cache and
        // locks briefly instead.
        let sum = a.read(|va, _| b.read(|vb, _| va + vb));
        assert_eq!(sum, 3);
        // Self-nested reads too.
        let twice = a.read(|v1, _| a.read(|v2, _| v1 + v2));
        assert_eq!(twice, 2);
    }

    #[test]
    fn seqlock_snapshot_version_check_detects_concurrent_publish() {
        let s = Snapshot::new(0u64);
        let (val, ver) = s.read(|v, ver| (*v, ver));
        assert_eq!(val, 0);
        s.publish(1);
        // The validate-after-read discipline: the version moved, so a
        // consumer must discard the observation.
        assert_ne!(s.version(), ver);
    }

    #[test]
    fn seqlock_snapshot_tls_cache_is_bounded() {
        // Churn through more snapshots than the TLS cap; every read
        // must still observe its own snapshot's value.
        for i in 0..(TLS_CACHE_MAX * 3) {
            let s = Snapshot::new(i);
            assert_eq!(s.read(|v, _| *v), i);
        }
    }

    #[test]
    fn seqlock_snapshot_concurrent_readers_see_only_published_values() {
        let s = Arc::new(Snapshot::new(0u64));
        let threads = 8;
        let barrier = Arc::new(Barrier::new(threads + 1));
        let mut handles = Vec::new();
        for _ in 0..threads {
            let s = Arc::clone(&s);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                let mut last = 0u64;
                for _ in 0..20_000 {
                    let (v, ver) = s.read(|v, ver| (*v, ver));
                    // Published values are multiples of 3; versions
                    // (and values) are monotone per reader.
                    assert_eq!(v % 3, 0, "torn or unpublished value observed");
                    assert!(v >= last, "value went backwards");
                    assert_eq!(v / 3, ver, "value/version pairing torn");
                    last = v;
                }
            }));
        }
        barrier.wait();
        for i in 1..=200u64 {
            s.publish(i * 3);
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn seqlock_snapshot_panicking_reader_keeps_tls_cache_alive() {
        let s = Snapshot::new(5u64);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.read(|_, _| panic!("reader closure panics"))
        }));
        assert!(caught.is_err());
        // The cache must have been put back: this read still works
        // (and would, on a degraded thread, at least stay correct).
        assert_eq!(s.read(|v, _| *v), 5);
    }
}
