//! Not-A-Bot (§4): human-presence attestation against spam.
//!
//! The keyboard driver counts physical keypresses and issues a
//! TPM-rooted certificate attesting to the count. Mail carrying a
//! fresh human-presence attestation scores drastically lower with the
//! spam classifier than mail sent by a script that produced no
//! keystrokes.

use nexus_core::Certificate;
use nexus_kernel::Nexus;

/// The instrumented keyboard driver.
pub struct KeyboardDriver {
    /// Its process id.
    pub pid: u64,
    presses: u64,
}

impl KeyboardDriver {
    /// Install the driver as an IPD.
    pub fn install(nexus: &mut Nexus) -> KeyboardDriver {
        let pid = nexus.spawn("kbd-driver", b"kbd-driver-image");
        KeyboardDriver { pid, presses: 0 }
    }

    /// A physical keypress (interrupt path).
    pub fn keypress(&mut self, _scancode: u8) {
        self.presses += 1;
    }

    /// Keypresses observed so far.
    pub fn count(&self) -> u64 {
        self.presses
    }

    /// Issue the attestation label and externalize it to a
    /// certificate a mail relay can verify (§4: "a TPM-backed
    /// certificate then serves as input to a SPAM classification
    /// algorithm").
    pub fn attest(&self, nexus: &mut Nexus) -> Result<Certificate, nexus_kernel::KernelError> {
        let h = nexus.sys_say(self.pid, &format!("keypresses = {}", self.presses))?;
        nexus.externalize(self.pid, h)
    }
}

/// A toy spam classifier consuming human-presence attestations.
pub struct SpamClassifier {
    /// Minimum keypresses to count as a human compose session.
    pub min_presses: u64,
}

impl SpamClassifier {
    /// Score a message: 0.0 = surely human, 1.0 = surely bot.
    /// The attestation is verified against the sending machine's EK.
    pub fn score(
        &self,
        body: &str,
        attestation: Option<&Certificate>,
        sender_ek: &ed25519_dalek::VerifyingKey,
    ) -> f64 {
        let mut score: f64 = 0.5;
        if body.contains("WIN BIG") || body.contains("FREE $$$") {
            score += 0.3;
        }
        if let Some(cert) = attestation {
            if let Ok(label) = cert.verify(sender_ek) {
                let stmt = label.statement.to_string();
                if let Some(n) = stmt
                    .strip_prefix("keypresses = ")
                    .and_then(|s| s.parse::<u64>().ok())
                {
                    if n >= self.min_presses {
                        score -= 0.45;
                    }
                }
            } else {
                // A forged certificate is worse than none.
                score += 0.2;
            }
        }
        score.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_kernel::{BootImages, NexusConfig};
    use nexus_storage::RamDisk;
    use nexus_tpm::Tpm;

    fn booted() -> Nexus {
        Nexus::boot(
            Tpm::new_with_seed(0x2b07),
            RamDisk::new(),
            &BootImages::standard(),
            NexusConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn human_typing_lowers_spam_score() {
        let mut nexus = booted();
        let mut kbd = KeyboardDriver::install(&mut nexus);
        for c in "hello, here is my trip report".bytes() {
            kbd.keypress(c);
        }
        let cert = kbd.attest(&mut nexus).unwrap();
        let ek = nexus.tpm().ek_public();
        let clf = SpamClassifier { min_presses: 10 };
        let with = clf.score("here is my trip report", Some(&cert), &ek);
        let without = clf.score("here is my trip report", None, &ek);
        assert!(with < without);
        assert!(with < 0.2);
    }

    #[test]
    fn script_without_keystrokes_gains_nothing() {
        let mut nexus = booted();
        let kbd = KeyboardDriver::install(&mut nexus);
        let cert = kbd.attest(&mut nexus).unwrap(); // 0 presses
        let ek = nexus.tpm().ek_public();
        let clf = SpamClassifier { min_presses: 10 };
        let s = clf.score("WIN BIG FREE $$$", Some(&cert), &ek);
        assert!(s >= 0.8);
    }

    #[test]
    fn forged_certificate_penalized() {
        let mut nexus = booted();
        let mut kbd = KeyboardDriver::install(&mut nexus);
        for _ in 0..50 {
            kbd.keypress(b'x');
        }
        let mut cert = kbd.attest(&mut nexus).unwrap();
        cert.statement = "keypresses = 99999".into();
        let ek = nexus.tpm().ek_public();
        let clf = SpamClassifier { min_presses: 10 };
        let honest = clf.score("hi", None, &ek);
        let forged = clf.score("hi", Some(&cert), &ek);
        assert!(forged > honest);
    }
}
