//! The Java-style object store (§4): transitive integrity
//! verification.
//!
//! Deserialization normally re-validates every type invariant because
//! external bytes cannot be trusted. If the producer can present a
//! label showing it was a type-safe runtime upholding the same
//! invariants, the consumer skips the per-field validation — the
//! integrity of the data is *transitively* established by the
//! producer's attestation.

use nexus_nal::{parse, Formula, Principal};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A field in a typed object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Field {
    /// Signed integer with declared bounds.
    Int {
        /// Value.
        value: i64,
        /// Inclusive lower bound.
        min: i64,
        /// Inclusive upper bound.
        max: i64,
    },
    /// UTF-8 string with a length cap.
    Str {
        /// Value.
        value: String,
        /// Maximum length.
        max_len: usize,
    },
    /// Reference to another object in the same batch.
    Ref {
        /// Index into the batch.
        index: usize,
    },
}

/// A typed object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypedObject {
    /// Type signature name.
    pub type_sig: String,
    /// Fields.
    pub fields: Vec<Field>,
}

/// Validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError(pub String);

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "validation failed: {}", self.0)
    }
}

impl std::error::Error for ValidationError {}

/// Deserialization statistics — how much work the fast path skips.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeserStats {
    /// Objects processed.
    pub objects: usize,
    /// Individual invariant checks executed.
    pub checks: usize,
}

/// The store: a serialized batch plus an optional producer label.
pub struct ObjectStore;

impl ObjectStore {
    /// Serialize a batch.
    pub fn serialize(objects: &[TypedObject]) -> Vec<u8> {
        serde_json::to_vec(objects).expect("serializable")
    }

    /// Full validating deserialization: every invariant checked.
    pub fn deserialize_validating(
        bytes: &[u8],
    ) -> Result<(Vec<TypedObject>, DeserStats), ValidationError> {
        let objects: Vec<TypedObject> =
            serde_json::from_slice(bytes).map_err(|e| ValidationError(e.to_string()))?;
        let mut stats = DeserStats::default();
        for (i, obj) in objects.iter().enumerate() {
            stats.objects += 1;
            for f in &obj.fields {
                stats.checks += 1;
                match f {
                    Field::Int { value, min, max } => {
                        if value < min || value > max {
                            return Err(ValidationError(format!(
                                "object {i}: int {value} outside [{min}, {max}]"
                            )));
                        }
                    }
                    Field::Str { value, max_len } => {
                        if value.len() > *max_len {
                            return Err(ValidationError(format!(
                                "object {i}: string length {} exceeds {max_len}",
                                value.len()
                            )));
                        }
                        if !value.chars().all(|c| !c.is_control() || c == '\n') {
                            return Err(ValidationError(format!(
                                "object {i}: control characters in string"
                            )));
                        }
                    }
                    Field::Ref { index } => {
                        if *index >= objects.len() {
                            return Err(ValidationError(format!(
                                "object {i}: dangling reference {index}"
                            )));
                        }
                    }
                }
            }
        }
        Ok((objects, stats))
    }

    /// Attested deserialization: when the producer's label shows it
    /// was a type-safe runtime upholding `invariant`, skip per-field
    /// checks entirely (§4's "slow parts of sanity checking every
    /// byte … can be skipped").
    pub fn deserialize_attested(
        bytes: &[u8],
        producer_labels: &[Formula],
        producer: &Principal,
        invariant: &str,
    ) -> Result<(Vec<TypedObject>, DeserStats), ValidationError> {
        let want = parse(&format!("{producer} says isTypeSafe({invariant})"))
            .map_err(|e| ValidationError(e.to_string()))?;
        if !producer_labels.iter().any(|l| l == &want) {
            return Err(ValidationError(format!("producer lacks label: {want}")));
        }
        let objects: Vec<TypedObject> =
            serde_json::from_slice(bytes).map_err(|e| ValidationError(e.to_string()))?;
        let stats = DeserStats {
            objects: objects.len(),
            checks: 0,
        };
        Ok((objects, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<TypedObject> {
        (0..n)
            .map(|i| TypedObject {
                type_sig: "com.example.Account".into(),
                fields: vec![
                    Field::Int {
                        value: i as i64,
                        min: 0,
                        max: 1_000_000,
                    },
                    Field::Str {
                        value: format!("user{i}"),
                        max_len: 64,
                    },
                    Field::Ref { index: 0 },
                ],
            })
            .collect()
    }

    #[test]
    fn validating_path_checks_everything() {
        let bytes = ObjectStore::serialize(&sample(10));
        let (objs, stats) = ObjectStore::deserialize_validating(&bytes).unwrap();
        assert_eq!(objs.len(), 10);
        assert_eq!(stats.checks, 30);
    }

    #[test]
    fn validating_path_catches_violations() {
        let mut objs = sample(3);
        objs[1].fields[0] = Field::Int {
            value: -5,
            min: 0,
            max: 10,
        };
        let bytes = ObjectStore::serialize(&objs);
        assert!(ObjectStore::deserialize_validating(&bytes).is_err());

        let mut objs2 = sample(3);
        objs2[2].fields[2] = Field::Ref { index: 99 };
        let bytes2 = ObjectStore::serialize(&objs2);
        assert!(ObjectStore::deserialize_validating(&bytes2).is_err());
    }

    #[test]
    fn attested_path_skips_checks() {
        let bytes = ObjectStore::serialize(&sample(100));
        let producer = Principal::name("JVM-7");
        let labels = vec![parse("JVM-7 says isTypeSafe(com_example_batch)").unwrap()];
        let (objs, stats) =
            ObjectStore::deserialize_attested(&bytes, &labels, &producer, "com_example_batch")
                .unwrap();
        assert_eq!(objs.len(), 100);
        assert_eq!(stats.checks, 0, "attestation obviates per-field checks");
    }

    #[test]
    fn attested_path_requires_the_right_label() {
        let bytes = ObjectStore::serialize(&sample(1));
        let producer = Principal::name("JVM-7");
        // Wrong invariant name.
        let labels = vec![parse("JVM-7 says isTypeSafe(other)").unwrap()];
        assert!(ObjectStore::deserialize_attested(&bytes, &labels, &producer, "batch").is_err());
        // Wrong speaker.
        let labels2 = vec![parse("CLR says isTypeSafe(batch)").unwrap()];
        assert!(ObjectStore::deserialize_attested(&bytes, &labels2, &producer, "batch").is_err());
    }
}
