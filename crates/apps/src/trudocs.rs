//! TruDocs (§4): excerpts that speak for their documents.
//!
//! A display system certifies that an excerpt conveys the original
//! document's meaning under a use policy: ellipses may replace runs
//! of words, bracketed editorial comments may be inserted, typecase
//! may change, and the total number and length of excerpts is capped.
//! A compliant excerpt earns the label
//! `TruDocs says excerpt speaksfor document`.

use nexus_nal::{Formula, Principal};

/// The use policy governing excerpting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UsePolicy {
    /// May `...` replace elided words?
    pub allow_ellipsis: bool,
    /// May `[comments]` be inserted?
    pub allow_comments: bool,
    /// May letter case differ?
    pub allow_case_change: bool,
    /// Maximum words per excerpt.
    pub max_words: usize,
    /// Maximum excerpts per document.
    pub max_excerpts: usize,
}

impl Default for UsePolicy {
    fn default() -> Self {
        UsePolicy {
            allow_ellipsis: true,
            allow_comments: true,
            allow_case_change: true,
            max_words: 50,
            max_excerpts: 5,
        }
    }
}

/// Why an excerpt was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// A word appears that is not in the source (in order).
    NotDerivable(String),
    /// Ellipsis used but not allowed.
    EllipsisForbidden,
    /// Comment used but not allowed.
    CommentForbidden,
    /// Case changed but not allowed.
    CaseChangeForbidden,
    /// Too long.
    TooLong {
        /// Word count.
        words: usize,
    },
    /// Per-document excerpt quota exhausted.
    QuotaExhausted,
}

fn words(s: &str) -> Vec<&str> {
    s.split_whitespace().collect()
}

/// The certifier.
pub struct TruDocs {
    policy: UsePolicy,
    issued: usize,
}

impl TruDocs {
    /// New certifier for one document under a policy.
    pub fn new(policy: UsePolicy) -> Self {
        TruDocs { policy, issued: 0 }
    }

    /// Check an excerpt against the source; on success, count it
    /// against the quota and return the speaksfor label.
    pub fn certify(
        &mut self,
        source: &str,
        excerpt: &str,
        doc_name: &str,
        excerpt_name: &str,
    ) -> Result<Formula, Rejection> {
        if self.issued >= self.policy.max_excerpts {
            return Err(Rejection::QuotaExhausted);
        }
        fn strip(s: &str) -> &str {
            s.trim_matches(|c: char| c.is_ascii_punctuation())
        }
        let src: Vec<&str> = words(source).into_iter().map(strip).collect();
        // Pass 1: drop editorial comments (they do not break
        // contiguity — the surrounding quotation must still be a
        // contiguous run of the source) and split at ellipses into
        // segments that must each match contiguously.
        let mut segments: Vec<Vec<&str>> = vec![Vec::new()];
        let mut in_comment = false;
        let mut content_words = 0usize;
        for raw in words(excerpt) {
            if in_comment {
                if raw.ends_with(']') {
                    in_comment = false;
                }
                continue;
            }
            if raw.starts_with('[') {
                if !self.policy.allow_comments {
                    return Err(Rejection::CommentForbidden);
                }
                if !raw.ends_with(']') {
                    in_comment = true;
                }
                continue;
            }
            if raw == "..." || raw == "…" {
                if !self.policy.allow_ellipsis {
                    return Err(Rejection::EllipsisForbidden);
                }
                if !segments.last().expect("nonempty").is_empty() {
                    segments.push(Vec::new());
                }
                continue;
            }
            let w = strip(raw);
            if !w.is_empty() {
                content_words += 1;
                segments.last_mut().expect("nonempty").push(w);
            }
        }
        if content_words > self.policy.max_words {
            return Err(Rejection::TooLong {
                words: content_words,
            });
        }
        // Pass 2: each segment must appear contiguously in the source,
        // in order; ellipses allow arbitrary gaps between segments.
        let match_from = |start: usize, seg: &[&str], ci: bool| -> Option<usize> {
            if seg.is_empty() {
                return Some(start);
            }
            (start..src.len().saturating_sub(seg.len() - 1)).find(|&base| {
                seg.iter().enumerate().all(|(k, w)| {
                    let s = src[base + k];
                    s == *w || (ci && s.eq_ignore_ascii_case(w))
                })
            })
        };
        let mut src_idx = 0usize;
        for seg in &segments {
            if seg.is_empty() {
                continue;
            }
            match match_from(src_idx, seg, self.policy.allow_case_change) {
                Some(base) => src_idx = base + seg.len(),
                None => {
                    // Diagnose: would a case-insensitive match have
                    // succeeded?
                    return Err(
                        if !self.policy.allow_case_change
                            && match_from(src_idx, seg, true).is_some()
                        {
                            Rejection::CaseChangeForbidden
                        } else {
                            Rejection::NotDerivable(seg.join(" "))
                        },
                    );
                }
            }
        }
        self.issued += 1;
        Ok(
            Formula::speaksfor(Principal::name(excerpt_name), Principal::name(doc_name))
                .says(Principal::name("TruDocs")),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "The committee found that the program was effective \
                       in limited trials but requires further review before \
                       wider deployment";

    #[test]
    fn faithful_excerpt_certified() {
        let mut td = TruDocs::new(UsePolicy::default());
        let label = td
            .certify(
                SRC,
                "The committee found that the program was effective",
                "report",
                "quote1",
            )
            .unwrap();
        assert_eq!(label.to_string(), "TruDocs says quote1 speaksfor report");
    }

    #[test]
    fn ellipsis_spans_gaps() {
        let mut td = TruDocs::new(UsePolicy::default());
        assert!(td
            .certify(
                SRC,
                "The committee found ... requires further review",
                "r",
                "q"
            )
            .is_ok());
    }

    #[test]
    fn meaning_inversion_rejected() {
        // Classic distortion: splice words to invert the meaning.
        let mut td = TruDocs::new(UsePolicy::default());
        let r = td.certify(SRC, "the program was ineffective", "r", "q");
        assert!(matches!(r, Err(Rejection::NotDerivable(_))));
    }

    #[test]
    fn out_of_order_splicing_rejected_without_ellipsis() {
        let mut td = TruDocs::new(UsePolicy::default());
        // "review before trials" reverses source order mid-phrase.
        let r = td.certify(SRC, "further review trials", "r", "q");
        assert!(matches!(r, Err(Rejection::NotDerivable(_))));
    }

    #[test]
    fn comments_and_case() {
        let mut td = TruDocs::new(UsePolicy::default());
        assert!(td
            .certify(SRC, "the program [the pilot] was effective", "r", "q1")
            .is_ok());
        assert!(td.certify(SRC, "THE COMMITTEE FOUND", "r", "q2").is_ok());

        let strict = UsePolicy {
            allow_comments: false,
            allow_case_change: false,
            allow_ellipsis: false,
            ..UsePolicy::default()
        };
        let mut td2 = TruDocs::new(strict);
        assert_eq!(
            td2.certify(SRC, "the program [sic] was", "r", "q"),
            Err(Rejection::CommentForbidden)
        );
        assert_eq!(
            td2.certify(SRC, "the committee found ... review", "r", "q"),
            Err(Rejection::EllipsisForbidden)
        );
        assert_eq!(
            td2.certify(SRC, "THE COMMITTEE", "r", "q"),
            Err(Rejection::CaseChangeForbidden)
        );
    }

    #[test]
    fn quotas_enforced() {
        let policy = UsePolicy {
            max_excerpts: 2,
            max_words: 3,
            ..UsePolicy::default()
        };
        let mut td = TruDocs::new(policy);
        assert!(matches!(
            td.certify(SRC, "The committee found that the", "r", "q"),
            Err(Rejection::TooLong { words: 5 })
        ));
        td.certify(SRC, "The committee", "r", "q1").unwrap();
        td.certify(SRC, "further review", "r", "q2").unwrap();
        assert_eq!(
            td.certify(SRC, "wider deployment", "r", "q3"),
            Err(Rejection::QuotaExhausted)
        );
    }
}
