//! CertiPics (§4): image editing with a certified transformation log.
//!
//! Alongside the output image, the suite generates an unforgeable log
//! of every transformation applied. Publication-standards checkers
//! later examine the (source, log, result) triple: the log replays to
//! the result, and disallowed operations (e.g. cloning) are evident.
//!
//! [`CertiPicsService`] runs the suite *on a Nexus* and exercises the
//! analytic basis of trust end-to-end: the upload operation carries
//! the goal `analyzer says panic_free($subject)`, so only encoders the
//! attestation analyzer ([`nexus_analyzers::attest`]) has statically
//! verified panic-free can submit images — "only accept uploads from
//! panic-free encoders". Re-attesting a changed encoder binary revokes
//! the stale credential through the label-removal epoch, flipping a
//! previously allowed upload to deny.

use nexus_analyzers::attest::{AttestAnalyzer, Attestation, Claim};
use nexus_analyzers::bin::{BinaryImage, BlockId, Inst, ValueId};
use nexus_core::ResourceId;
use nexus_kernel::{KernelError, Nexus};
use nexus_tpm::{hash, Digest};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A grayscale raster image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Image {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major pixels.
    pub pixels: Vec<u8>,
}

impl Image {
    /// Solid-color image.
    pub fn solid(width: usize, height: usize, value: u8) -> Image {
        Image {
            width,
            height,
            pixels: vec![value; width * height],
        }
    }

    /// Content digest.
    pub fn digest(&self) -> Digest {
        let mut bytes = Vec::with_capacity(self.pixels.len() + 16);
        bytes.extend_from_slice(&(self.width as u64).to_le_bytes());
        bytes.extend_from_slice(&(self.height as u64).to_le_bytes());
        bytes.extend_from_slice(&self.pixels);
        hash(&bytes)
    }

    fn get(&self, x: usize, y: usize) -> u8 {
        self.pixels[y * self.width + x]
    }
}

/// Transformations supported by the portable-bitmap-style suite.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Transform {
    /// Crop to a rectangle.
    Crop {
        /// Left.
        x: usize,
        /// Top.
        y: usize,
        /// Width.
        w: usize,
        /// Height.
        h: usize,
    },
    /// Nearest-neighbour resize.
    Resize {
        /// New width.
        w: usize,
        /// New height.
        h: usize,
    },
    /// Brightness shift.
    Brighten {
        /// Added to every pixel (saturating).
        delta: i16,
    },
    /// Clone a region onto another location — the classic forgery.
    Clone {
        /// Source rectangle (x, y, w, h).
        src: (usize, usize, usize, usize),
        /// Destination top-left.
        dst: (usize, usize),
    },
}

impl Transform {
    /// Apply to an image.
    pub fn apply(&self, img: &Image) -> Image {
        match self {
            Transform::Crop { x, y, w, h } => {
                let mut out = Image::solid(*w, *h, 0);
                for dy in 0..*h {
                    for dx in 0..*w {
                        out.pixels[dy * w + dx] = img.get(x + dx, y + dy);
                    }
                }
                out
            }
            Transform::Resize { w, h } => {
                let mut out = Image::solid(*w, *h, 0);
                for dy in 0..*h {
                    for dx in 0..*w {
                        let sx = dx * img.width / w;
                        let sy = dy * img.height / h;
                        out.pixels[dy * w + dx] = img.get(sx, sy);
                    }
                }
                out
            }
            Transform::Brighten { delta } => {
                let mut out = img.clone();
                for p in &mut out.pixels {
                    *p = (*p as i16 + delta).clamp(0, 255) as u8;
                }
                out
            }
            Transform::Clone { src, dst } => {
                let (sx, sy, w, h) = *src;
                let (dx0, dy0) = *dst;
                let mut out = img.clone();
                for dy in 0..h {
                    for dx in 0..w {
                        let v = img.get(sx + dx, sy + dy);
                        let tx = dx0 + dx;
                        let ty = dy0 + dy;
                        if tx < out.width && ty < out.height {
                            out.pixels[ty * out.width + tx] = v;
                        }
                    }
                }
                out
            }
        }
    }

    /// Is this operation allowed under publication standards?
    pub fn publication_safe(&self) -> bool {
        !matches!(self, Transform::Clone { .. })
    }
}

/// One log entry: the transform and the digest of its output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogEntry {
    /// The transform applied.
    pub transform: Transform,
    /// Digest of the image after applying it.
    pub output_digest: Digest,
}

/// The editing session: applies transforms while growing the log.
pub struct CertiPics {
    source_digest: Digest,
    current: Image,
    log: Vec<LogEntry>,
}

/// Verdict from a standards check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Log replays to the final image and all ops are allowed.
    Compliant,
    /// A disallowed operation appears in the log.
    DisallowedOp(String),
    /// The log does not replay to the claimed result (forged log).
    LogMismatch,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Compliant => write!(f, "compliant"),
            Verdict::DisallowedOp(op) => write!(f, "disallowed operation: {op}"),
            Verdict::LogMismatch => write!(f, "log does not match result"),
        }
    }
}

impl CertiPics {
    /// Start a session from a source image.
    pub fn open(source: Image) -> CertiPics {
        CertiPics {
            source_digest: source.digest(),
            current: source,
            log: Vec::new(),
        }
    }

    /// Apply a transform, logging it.
    pub fn apply(&mut self, t: Transform) {
        self.current = t.apply(&self.current);
        self.log.push(LogEntry {
            transform: t,
            output_digest: self.current.digest(),
        });
    }

    /// The edited image.
    pub fn result(&self) -> &Image {
        &self.current
    }

    /// The certified log.
    pub fn log(&self) -> &[LogEntry] {
        &self.log
    }

    /// Digest of the source.
    pub fn source_digest(&self) -> Digest {
        self.source_digest
    }

    /// The analyzer: replay the log over the source and check both
    /// integrity (each digest matches) and policy (no disallowed op).
    pub fn verify(source: &Image, log: &[LogEntry], result: &Image) -> Verdict {
        let mut img = source.clone();
        for entry in log {
            if !entry.transform.publication_safe() {
                return Verdict::DisallowedOp(format!("{:?}", entry.transform));
            }
            img = entry.transform.apply(&img);
            if img.digest() != entry.output_digest {
                return Verdict::LogMismatch;
            }
        }
        if img.digest() == result.digest() {
            Verdict::Compliant
        } else {
            Verdict::LogMismatch
        }
    }
}

/// A plausible encoder binary for the attestation analyzer: `width`
/// stage functions called from `main`, each guarding its input before
/// an unsafe region (SIMD/pixel-buffer work), panic-free throughout.
/// Bigger `width` means a costlier analysis — the fig7a benchmark's
/// knob.
pub fn sample_encoder(name: &str, width: usize) -> BinaryImage {
    let mut img = BinaryImage::new(name);
    let main = img.add_func("main");
    img.add_entry(main);
    for i in 0..width.max(1) {
        let stage = img.add_func(&format!("stage{i}"));
        let v = ValueId(i as u32);
        img.push(stage, BlockId(0), Inst::Compute(v));
        img.push(stage, BlockId(0), Inst::Guard(v));
        img.push(
            stage,
            BlockId(0),
            Inst::Unsafe {
                region: format!("simd{i}"),
                inputs: vec![v],
            },
        );
        img.push(main, BlockId(0), Inst::Call(stage));
    }
    img
}

/// The upload gate: a CertiPics service IPD owning the upload queue,
/// with the `upload` operation goal-protected by the attestation
/// analyzer's `panic_free` credential.
pub struct CertiPicsService {
    nexus: Arc<Nexus>,
    service_pid: u64,
    analyzer: AttestAnalyzer,
    uploads_object: ResourceId,
    accepted: Mutex<Vec<(u64, Digest)>>,
}

impl CertiPicsService {
    /// Deploy on a running kernel: spawn the service and analyzer
    /// IPDs, take ownership of the upload queue, and install the goal
    /// `analyzer says panic_free($subject)` on `upload`.
    pub fn deploy(nexus: Arc<Nexus>) -> Result<CertiPicsService, KernelError> {
        let service_pid = nexus.spawn("certipics-service", b"certipics-image");
        let analyzer = AttestAnalyzer::launch(&nexus)?;
        let uploads_object = ResourceId::new("certipics", "uploads");
        nexus.grant_ownership(service_pid, &uploads_object)?;
        nexus.sys_setgoal(
            service_pid,
            uploads_object.clone(),
            "upload",
            analyzer.goal(Claim::PanicFree),
        )?;
        Ok(CertiPicsService {
            nexus,
            service_pid,
            analyzer,
            uploads_object,
            accepted: Mutex::new(Vec::new()),
        })
    }

    /// The service IPD.
    pub fn service_pid(&self) -> u64 {
        self.service_pid
    }

    /// The analyzer whose credentials gate uploads.
    pub fn analyzer(&self) -> &AttestAnalyzer {
        &self.analyzer
    }

    /// The goal-protected upload queue object.
    pub fn uploads_object(&self) -> &ResourceId {
        &self.uploads_object
    }

    /// Register an encoder: spawn its IPD from the binary and run the
    /// first-contact analysis. The returned [`Attestation`] says which
    /// credentials the encoder earned.
    pub fn register_encoder(
        &self,
        name: &str,
        binary: &BinaryImage,
    ) -> Result<(u64, Attestation), KernelError> {
        let pid = self.nexus.spawn(name, &binary.digest().0);
        let attestation = self.analyzer.attest_binary(&self.nexus, pid, binary)?;
        Ok((pid, attestation))
    }

    /// Re-analyze an encoder (e.g. after it updated its binary). A
    /// changed binary revokes the old credentials before re-analysis,
    /// so a stale `panic_free` can never authorize an upload.
    pub fn reattest(
        &self,
        encoder_pid: u64,
        binary: &BinaryImage,
    ) -> Result<Attestation, KernelError> {
        self.analyzer
            .attest_binary(&self.nexus, encoder_pid, binary)
    }

    /// An encoder submits an image. The guard decides: `true` (and the
    /// image is queued) only if the encoder currently holds the
    /// analyzer's `panic_free` credential.
    pub fn upload(&self, encoder_pid: u64, image: &Image) -> Result<bool, KernelError> {
        let allowed = self
            .nexus
            .authorize(encoder_pid, "upload", &self.uploads_object)?;
        if allowed {
            self.accepted.lock().push((encoder_pid, image.digest()));
        }
        Ok(allowed)
    }

    /// Digests of accepted uploads, in arrival order.
    pub fn accepted(&self) -> Vec<(u64, Digest)> {
        self.accepted.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(w: usize, h: usize) -> Image {
        let mut img = Image::solid(w, h, 0);
        for y in 0..h {
            for x in 0..w {
                img.pixels[y * w + x] = ((x + y) % 256) as u8;
            }
        }
        img
    }

    #[test]
    fn honest_edit_is_compliant() {
        let src = gradient(64, 64);
        let mut session = CertiPics::open(src.clone());
        session.apply(Transform::Crop {
            x: 8,
            y: 8,
            w: 32,
            h: 32,
        });
        session.apply(Transform::Resize { w: 16, h: 16 });
        session.apply(Transform::Brighten { delta: 20 });
        assert_eq!(
            CertiPics::verify(&src, session.log(), session.result()),
            Verdict::Compliant
        );
    }

    #[test]
    fn cloning_is_flagged() {
        let src = gradient(32, 32);
        let mut session = CertiPics::open(src.clone());
        session.apply(Transform::Clone {
            src: (0, 0, 8, 8),
            dst: (16, 16),
        });
        assert!(matches!(
            CertiPics::verify(&src, session.log(), session.result()),
            Verdict::DisallowedOp(_)
        ));
    }

    #[test]
    fn forged_log_detected() {
        let src = gradient(32, 32);
        let mut session = CertiPics::open(src.clone());
        session.apply(Transform::Brighten { delta: 10 });
        // Attacker edits the result after the fact.
        let mut doctored = session.result().clone();
        doctored.pixels[0] = 0;
        assert_eq!(
            CertiPics::verify(&src, session.log(), &doctored),
            Verdict::LogMismatch
        );
        // Or rewrites a log entry.
        let mut log = session.log().to_vec();
        log[0].transform = Transform::Brighten { delta: 5 };
        assert_eq!(
            CertiPics::verify(&src, &log, session.result()),
            Verdict::LogMismatch
        );
    }

    #[test]
    fn upload_gate_demands_panic_free() {
        use nexus_analyzers::bin::FuncId;
        let nexus = Arc::new(Nexus::boot_default().unwrap());
        let svc = CertiPicsService::deploy(Arc::clone(&nexus)).unwrap();

        let (good, att) = svc
            .register_encoder("good-encoder", &sample_encoder("good", 4))
            .unwrap();
        assert!(att.holds(Claim::PanicFree) && att.holds(Claim::NoUnsafe));
        assert!(svc.upload(good, &gradient(8, 8)).unwrap());

        // An encoder with a reachable panic in `main` never passes.
        let mut crashy = sample_encoder("crashy", 4);
        crashy.push(FuncId(0), BlockId(0), Inst::Panic);
        let (bad, att) = svc.register_encoder("crashy-encoder", &crashy).unwrap();
        assert!(!att.holds(Claim::PanicFree));
        assert!(!svc.upload(bad, &gradient(8, 8)).unwrap());
        assert_eq!(svc.accepted().len(), 1);
    }

    #[test]
    fn transforms_behave() {
        let src = gradient(10, 10);
        let cropped = Transform::Crop {
            x: 0,
            y: 0,
            w: 5,
            h: 5,
        }
        .apply(&src);
        assert_eq!((cropped.width, cropped.height), (5, 5));
        let resized = Transform::Resize { w: 20, h: 20 }.apply(&src);
        assert_eq!(resized.pixels.len(), 400);
        let bright = Transform::Brighten { delta: 300 }.apply(&src);
        assert!(bright.pixels.iter().all(|&p| p == 255));
    }
}
