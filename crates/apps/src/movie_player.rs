//! The movie player (§4): escaping platform lock-down.
//!
//! Instead of whitelisting player binaries by hash, the content owner
//! demands a *property*: an IPC-connectivity analysis showing the
//! player has no channel to disk or network, plus an unexpired time
//! window vouched for by a clock authority. Any binary that passes
//! the analysis may play — the player's hash is never divulged.

use nexus_analyzers::IpcAnalyzer;
use nexus_core::{
    AccessRequest, AuthorityKind, AuthorityRegistry, FnAuthority, Guard, OpName, ResourceId,
};
use nexus_kernel::Nexus;
use nexus_nal::{parse, prove, Formula, Principal, ProverConfig};
use parking_lot::Mutex;
use std::sync::Arc;

/// The content owner's streaming service.
pub struct MovieService {
    /// Deadline (yyyymmdd) after which streaming stops.
    pub deadline: i64,
    clock: Arc<Mutex<i64>>,
    authorities: AuthorityRegistry,
    guard: Guard,
}

/// Outcome of a streaming request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamDecision {
    /// Stream granted.
    Granted,
    /// Denied with a reason.
    Denied(String),
}

impl MovieService {
    /// Build the service with a shared simulated clock.
    pub fn new(deadline: i64, clock: Arc<Mutex<i64>>) -> Self {
        let authorities = AuthorityRegistry::new();
        let c = clock.clone();
        authorities.register(
            Principal::name("NTP"),
            Arc::new(FnAuthority(move |s: &Formula| {
                if let Formula::Cmp(op, a, b) = s {
                    if let (nexus_nal::Term::Sym(n), nexus_nal::Term::Int(bound)) = (&a.canon(), b)
                    {
                        if n == "TimeNow" {
                            return op.eval(&*c.lock(), bound);
                        }
                    }
                }
                false
            })),
            AuthorityKind::External,
        );
        MovieService {
            deadline,
            clock,
            authorities,
            guard: Guard::new(),
        }
    }

    /// The goal a player must discharge: the analyzer (attested by
    /// the kernel) says the player has no path to the filesystem or
    /// the network, and the deadline has not passed.
    pub fn goal(&self, player: u64, analyzer: &Principal) -> Formula {
        parse(&format!(
            "Nexus says {analyzer} speaksfor IPCAnalyzer \
             and {analyzer} says not hasPath(/proc/ipd/{player}, Filesystem) \
             and {analyzer} says not hasPath(/proc/ipd/{player}, Netdriver) \
             and NTP says TimeNow < {}",
            self.deadline
        ))
        .expect("well-formed goal")
    }

    /// Handle a streaming request: the client supplies its labels
    /// (fresh analyzer output plus the kernel's binding label); the
    /// service builds the proof obligation and checks it.
    pub fn request_stream(
        &mut self,
        nexus: &Nexus,
        player: u64,
        analyzer_pid: u64,
    ) -> StreamDecision {
        let analyzer_principal = match nexus.principal(analyzer_pid) {
            Ok(p) => p,
            Err(e) => return StreamDecision::Denied(e.to_string()),
        };
        // The client gathers credentials: kernel binding label + the
        // analyzer's fresh labels over the live IPC graph.
        let analyzer = IpcAnalyzer::new(analyzer_principal.clone());
        let report = analyzer.analyze(nexus);
        // Identify the sensitive services by name.
        let mut fs_pid = None;
        let mut net_pid = None;
        for pid in nexus.ipds().pids() {
            if let Ok(ipd) = nexus.ipds().get(pid) {
                match ipd.name.as_str() {
                    "fileserver" => fs_pid = Some(pid),
                    "netdriver" => net_pid = Some(pid),
                    _ => {}
                }
            }
        }
        let (Some(fs_pid), Some(net_pid)) = (fs_pid, net_pid) else {
            return StreamDecision::Denied("missing system services".into());
        };
        let mut labels = analyzer.labels_for(
            &report,
            player,
            &[(fs_pid, "Filesystem"), (net_pid, "Netdriver")],
        );
        labels.push(
            parse(&format!(
                "Nexus says {analyzer_principal} speaksfor IPCAnalyzer"
            ))
            .unwrap(),
        );
        // The time conjunct is authority-backed; include it as an
        // assumption the authority will vouch for.
        let time_stmt = parse(&format!("NTP says TimeNow < {}", self.deadline)).unwrap();
        let mut assumptions = labels.clone();
        assumptions.push(time_stmt);

        let goal = self.goal(player, &analyzer_principal);
        let Some(proof) = prove(&goal, &assumptions, ProverConfig::default()) else {
            return StreamDecision::Denied("could not assemble proof from analyzer labels".into());
        };
        let subject = Principal::name(format!("/proc/ipd/{player}"));
        let op = OpName::from("stream");
        let object = ResourceId::new("movie", "feature");
        let req = AccessRequest {
            subject: &subject,
            operation: &op,
            object: &object,
            proof: Some(&proof),
            labels: &labels,
        };
        let d = self.guard.check(&req, &goal, &self.authorities);
        if d.allow {
            StreamDecision::Granted
        } else {
            StreamDecision::Denied(format!("{:?}", d.reason))
        }
    }

    /// Advance the simulated clock.
    pub fn set_time(&self, t: i64) {
        *self.clock.lock() = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_kernel::{BootImages, NexusConfig};
    use nexus_storage::RamDisk;
    use nexus_tpm::Tpm;

    fn world() -> (Nexus, u64, u64) {
        let nexus = Nexus::boot(
            Tpm::new_with_seed(0x3071e),
            RamDisk::new(),
            &BootImages::standard(),
            NexusConfig::default(),
        )
        .unwrap();
        nexus.spawn("fileserver", b"fs");
        nexus.spawn("netdriver", b"net");
        let player = nexus.spawn("any-player-binary", b"unknown-player");
        let analyzer = nexus.spawn("ipc-analyzer", b"analyzer");
        (nexus, player, analyzer)
    }

    #[test]
    fn confined_player_streams() {
        let (nexus, player, analyzer) = world();
        let clock = Arc::new(Mutex::new(20110301));
        let mut svc = MovieService::new(20110319, clock);
        assert_eq!(
            svc.request_stream(&nexus, player, analyzer),
            StreamDecision::Granted
        );
    }

    #[test]
    fn leaky_player_denied() {
        let (nexus, player, analyzer) = world();
        // The player opens a channel toward the file server.
        let fs_pid = nexus
            .ipds()
            .pids()
            .into_iter()
            .find(|&p| nexus.ipds().get(p).unwrap().name == "fileserver")
            .unwrap();
        let port = nexus.create_port(fs_pid).unwrap();
        nexus.ipc_send(player, port, b"exfil".to_vec()).unwrap();
        let clock = Arc::new(Mutex::new(20110301));
        let mut svc = MovieService::new(20110319, clock);
        assert!(matches!(
            svc.request_stream(&nexus, player, analyzer),
            StreamDecision::Denied(_)
        ));
    }

    #[test]
    fn expired_window_denied_without_revocation() {
        let (nexus, player, analyzer) = world();
        let clock = Arc::new(Mutex::new(20110301));
        let mut svc = MovieService::new(20110319, clock.clone());
        assert_eq!(
            svc.request_stream(&nexus, player, analyzer),
            StreamDecision::Granted
        );
        // Time passes; the same request now fails — the authority
        // simply answers differently; nothing was revoked.
        *clock.lock() = 20110401;
        assert!(matches!(
            svc.request_stream(&nexus, player, analyzer),
            StreamDecision::Denied(_)
        ));
    }
}
