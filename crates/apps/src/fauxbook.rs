//! Fauxbook: the privacy-preserving social network (§4.1).
//!
//! Three tiers run as separate IPDs on one Nexus: a NIC driver
//! confined by a DDRM, a web server that relinquishes all system
//! calls but IPC after initialization, and a web framework that runs
//! developer-supplied tenant code in the PyLite sandbox over cobufs.
//!
//! The guarantees, and where they come from:
//!
//! * **cloud provider ← developer**: tenant code passes the
//!   import-whitelist analysis and the reflection-rewriting pass, so
//!   it stays inside the sandbox — no VMs needed;
//! * **developer ← provider**: the proportional-share scheduler's
//!   weights are exported via introspection, so resource reservations
//!   are attestable (resource attestation);
//! * **user ← everyone**: user data lives in cobufs that tenant code
//!   can only store, slice, and concatenate — never read; collation
//!   is gated on the social graph; wall visibility is decided by the
//!   guard using two embedded authorities (the web server's session
//!   authority and the framework's friendship authority).

use nexus_analyzers::attest::{AttestAnalyzer, Claim};
use nexus_analyzers::cobuf::{CobufStore, RenderToken};
use nexus_analyzers::pylite::{
    self, check_import_whitelist, find_reflection, rewrite_reflection, Program, PyValue,
};
use nexus_analyzers::CobufId;
use nexus_core::{
    AccessRequest, AuthorityKind, AuthorityRegistry, FnAuthority, Guard, OpName, ResourceId,
};
use nexus_kernel::{BootImages, EchoPath, EchoWorld, MonitorLevel, Nexus, NexusConfig};
use nexus_nal::{parse, Formula, Principal, Proof};
use nexus_storage::RamDisk;
use nexus_tpm::Tpm;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// Modules tenant code may import.
pub const TENANT_WHITELIST: &[&str] = &["fauxbook", "strings"];

/// A logged-in session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(pub u64);

/// Wall visibility policies (§4.1: private, public, or friends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WallPolicy {
    /// Only the owner.
    Private,
    /// Anyone.
    Public,
    /// Owner and friends.
    Friends,
}

/// Fauxbook errors.
#[derive(Debug, Clone, PartialEq)]
pub enum FauxbookError {
    /// Tenant code failed the static analysis.
    TenantRejected(String),
    /// Unknown user / session.
    NoSuchUser(String),
    /// Authorization denied by the guard.
    Denied(String),
    /// Kernel-level failure.
    Kernel(String),
    /// Tenant runtime failure.
    Tenant(String),
}

impl fmt::Display for FauxbookError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FauxbookError::TenantRejected(m) => write!(f, "tenant code rejected: {m}"),
            FauxbookError::NoSuchUser(u) => write!(f, "no such user: {u}"),
            FauxbookError::Denied(m) => write!(f, "denied: {m}"),
            FauxbookError::Kernel(m) => write!(f, "kernel: {m}"),
            FauxbookError::Tenant(m) => write!(f, "tenant: {m}"),
        }
    }
}

impl std::error::Error for FauxbookError {}

struct SharedState {
    /// session → user (the web server's authentication table).
    sessions: HashMap<u64, String>,
    /// The session authority's notion of "current user" per query.
    current_user: Option<String>,
    /// user → friends (backed by friend files in the Nexus fs).
    friends: HashMap<String, HashSet<String>>,
}

/// The deployed application.
pub struct Fauxbook {
    /// The underlying kernel.
    pub nexus: Nexus,
    /// NIC driver IPD.
    pub driver_pid: u64,
    /// Web server IPD.
    pub webserver_pid: u64,
    /// Web framework IPD.
    pub framework_pid: u64,
    /// Tenant-code IPD — holds the attestation analyzer's
    /// `imports_clean` credential once deployment succeeds.
    pub tenant_pid: u64,
    echo: EchoWorld,
    cobufs: CobufStore,
    render_token: RenderToken,
    tenant: Program,
    state: Arc<Mutex<SharedState>>,
    authorities: AuthorityRegistry,
    guard: Guard,
    walls: HashMap<String, Vec<CobufId>>,
    policies: HashMap<String, WallPolicy>,
    next_session: u64,
    attestations: Vec<Formula>,
}

impl Fauxbook {
    /// Deploy the stack with developer-supplied tenant code.
    ///
    /// Deployment runs the two labeling functions of §4.1: static
    /// import analysis (reject on violation) and reflection
    /// rewriting (always applied). The labels that would be published
    /// at the privacy-policy URL are collected in
    /// [`Fauxbook::attestation_labels`].
    pub fn deploy(tenant_source: &str) -> Result<Fauxbook, FauxbookError> {
        let nexus = Nexus::boot(
            Tpm::new_with_seed(0xfb00),
            RamDisk::new(),
            &BootImages::standard(),
            NexusConfig::default(),
        )
        .map_err(|e| FauxbookError::Kernel(e.to_string()))?;

        // --- tiers ---
        let echo = EchoWorld::new(&nexus, EchoPath::UserDriver)
            .map_err(|e| FauxbookError::Kernel(e.to_string()))?;
        let driver_pid = nexus.spawn("nic-driver-fb", b"nic-driver");
        let webserver_pid = nexus.spawn("lighttpd", b"lighttpd-image");
        let framework_pid = nexus.spawn("web-framework", b"framework-image");
        // DDRM on the driver path (synthetic basis).
        echo.install_monitor(&nexus, MonitorLevel::Kernel)
            .map_err(|e| FauxbookError::Kernel(e.to_string()))?;
        // The web server relinquishes everything but IPC after init.
        for call in ["open", "read", "write"] {
            nexus
                .relinquish(
                    webserver_pid,
                    match call {
                        "open" => "open",
                        "read" => "read",
                        _ => "write",
                    },
                )
                .map_err(|e| FauxbookError::Kernel(e.to_string()))?;
        }

        // --- labeling functions over the tenant code ---
        let parsed = pylite::parse(tenant_source)
            .map_err(|e| FauxbookError::TenantRejected(e.to_string()))?;
        check_import_whitelist(&parsed, TENANT_WHITELIST)
            .map_err(|e| FauxbookError::TenantRejected(e.to_string()))?;
        let reflections = find_reflection(&parsed);
        let tenant = rewrite_reflection(&parsed);

        // The whitelist verdict also flows through the attestation-
        // minting path (ISSUE 8): the tenant IPD earns a real
        // `imports_clean` credential, spoken by the analyzer's own
        // principal, sitting in its labelstore like any other label.
        let tenant_pid = nexus.spawn("fauxbook-tenant", tenant_source.as_bytes());
        let attest_analyzer =
            AttestAnalyzer::launch(&nexus).map_err(|e| FauxbookError::Kernel(e.to_string()))?;
        let tenant_attestation = attest_analyzer
            .attest_pylite(&nexus, tenant_pid, &parsed, TENANT_WHITELIST)
            .map_err(|e| FauxbookError::Kernel(e.to_string()))?;
        if !tenant_attestation.holds(Claim::ImportsClean) {
            return Err(FauxbookError::TenantRejected(
                tenant_attestation
                    .refusal(Claim::ImportsClean)
                    .unwrap_or("imports_clean refused")
                    .to_string(),
            ));
        }

        // --- attestation labels (the privacy-policy bundle) ---
        let fw = nexus
            .principal(framework_pid)
            .map_err(|e| FauxbookError::Kernel(e.to_string()))?;
        let mut attestations = vec![
            parse(&format!("{fw} says importsWhitelisted(tenant)")).unwrap(),
            parse(&format!("{fw} says reflectionRewritten(tenant)")).unwrap(),
            parse(&format!("{fw} says cobufConfined(tenant)")).unwrap(),
            parse("Nexus says ddrmConfined(nicdriver)").unwrap(),
            parse("Nexus says syscallsRelinquished(webserver)").unwrap(),
        ];
        if !reflections.is_empty() {
            attestations.push(parse(&format!("{fw} says reflectionNeutralized(tenant)")).unwrap());
        }
        // The analyzer-minted credential joins the published bundle.
        let tenant_prin = nexus
            .principal(tenant_pid)
            .map_err(|e| FauxbookError::Kernel(e.to_string()))?;
        attestations.push(attest_analyzer.credential(Claim::ImportsClean, &tenant_prin));
        // Resource attestation: register tenants on the scheduler.
        nexus.sched().set_weight("fauxbook", 3);
        nexus.sched().set_weight("other-tenant", 1);

        let state = Arc::new(Mutex::new(SharedState {
            sessions: HashMap::new(),
            current_user: None,
            friends: HashMap::new(),
        }));

        // --- embedded authorities (§4.1's two authorities) ---
        let authorities = AuthorityRegistry::new();
        let session_state = state.clone();
        authorities.register(
            Principal::name("name").sub("webserver"),
            Arc::new(FnAuthority(move |s: &Formula| {
                // name.webserver says user = <u>
                if let Formula::Cmp(nexus_nal::CmpOp::Eq, a, b) = s {
                    if a.subject_name() == Some("user") {
                        if let nexus_nal::Term::Sym(u) = &b.canon() {
                            return session_state.lock().current_user.as_deref() == Some(u);
                        }
                    }
                }
                false
            })),
            AuthorityKind::Embedded,
        );
        let friend_state = state.clone();
        authorities.register(
            Principal::name("name").sub("python"),
            Arc::new(FnAuthority(move |s: &Formula| {
                // name.python says inFriends(owner, viewer): the
                // authority introspects the (publicly readable)
                // friend file (§4.1).
                if let Formula::Pred(name, args) = s {
                    if name == "inFriends" && args.len() == 2 {
                        if let (nexus_nal::Term::Sym(owner), nexus_nal::Term::Sym(viewer)) =
                            (&args[0].canon(), &args[1].canon())
                        {
                            return friend_state
                                .lock()
                                .friends
                                .get(owner)
                                .map(|f| f.contains(viewer))
                                .unwrap_or(false);
                        }
                    }
                }
                false
            })),
            AuthorityKind::Embedded,
        );

        let (cobufs, render_token) = CobufStore::new();
        Ok(Fauxbook {
            nexus,
            driver_pid,
            webserver_pid,
            framework_pid,
            tenant_pid,
            echo,
            cobufs,
            render_token,
            tenant,
            state,
            authorities,
            guard: Guard::new(),
            walls: HashMap::new(),
            policies: HashMap::new(),
            next_session: 1,
            attestations,
        })
    }

    /// The labels a prospective user inspects before signing up
    /// (published at a well-known URL in X.509 form, §4.1).
    pub fn attestation_labels(&self) -> &[Formula] {
        &self.attestations
    }

    /// Create a user with the given wall policy.
    pub fn signup(&mut self, user: &str, policy: WallPolicy) -> Result<(), FauxbookError> {
        let path = format!("/fauxbook/{user}/wall");
        self.nexus
            .fs_create(self.framework_pid, &path)
            .map_err(|e| FauxbookError::Kernel(e.to_string()))?;
        let friends_path = format!("/fauxbook/{user}/friends");
        self.nexus
            .fs_create(self.framework_pid, &friends_path)
            .map_err(|e| FauxbookError::Kernel(e.to_string()))?;
        self.walls.insert(user.to_string(), Vec::new());
        self.policies.insert(user.to_string(), policy);
        self.state
            .lock()
            .friends
            .insert(user.to_string(), HashSet::new());
        Ok(())
    }

    /// Authenticate a user; returns the session the web server binds
    /// the owner identifier to.
    pub fn login(&mut self, user: &str) -> Result<SessionId, FauxbookError> {
        if !self.walls.contains_key(user) {
            return Err(FauxbookError::NoSuchUser(user.to_string()));
        }
        let id = self.next_session;
        self.next_session += 1;
        self.state.lock().sessions.insert(id, user.to_string());
        Ok(SessionId(id))
    }

    fn user_of(&self, session: SessionId) -> Result<String, FauxbookError> {
        self.state
            .lock()
            .sessions
            .get(&session.0)
            .cloned()
            .ok_or_else(|| FauxbookError::NoSuchUser(format!("session {}", session.0)))
    }

    /// A user-initiated friend addition: generates the speaksfor link
    /// in the social graph (§4.1). Friendship is mutual here.
    pub fn add_friend(&mut self, session: SessionId, friend: &str) -> Result<(), FauxbookError> {
        let user = self.user_of(session)?;
        if !self.walls.contains_key(friend) {
            return Err(FauxbookError::NoSuchUser(friend.to_string()));
        }
        {
            let mut st = self.state.lock();
            st.friends
                .get_mut(&user)
                .expect("user exists")
                .insert(friend.to_string());
            st.friends
                .get_mut(friend)
                .expect("friend exists")
                .insert(user.clone());
        }
        // Mirror into the publicly-readable friend file the python
        // authority introspects.
        let snapshot = {
            let st = self.state.lock();
            let mut v: Vec<String> = st.friends[&user].iter().cloned().collect();
            v.sort();
            v.join(",")
        };
        self.nexus
            .fs_raw()
            .write_all(&format!("/fauxbook/{user}/friends"), snapshot.as_bytes())
            .map_err(|e| FauxbookError::Kernel(e.to_string()))?;
        Ok(())
    }

    /// Post a status update. The web server attaches the owner
    /// identifier from the authenticated session; tenant code then
    /// manipulates the data purely as a cobuf.
    pub fn post(&mut self, session: SessionId, content: &str) -> Result<(), FauxbookError> {
        let user = self.user_of(session)?;
        // The packet traverses driver → web server (both confined).
        self.echo
            .echo(&self.nexus, content.as_bytes())
            .map_err(|e| FauxbookError::Kernel(e.to_string()))?;
        // Owner attribution happens here, in the web server layer —
        // tenant code cannot forge it.
        let buf = self
            .cobufs
            .ingest(Principal::name(&user), content.as_bytes().to_vec());
        // Tenant handler runs in the sandbox; it can only move the
        // handle around.
        let mut interp = pylite::Interpreter::new();
        interp.bind("post", PyValue::Handle(buf.0));
        let stored: Arc<Mutex<Option<u64>>> = Arc::new(Mutex::new(None));
        let sink = stored.clone();
        interp.register(
            "store_post",
            Box::new(move |args| match args.as_slice() {
                [PyValue::Handle(h)] => {
                    *sink.lock() = Some(*h);
                    Ok(PyValue::None)
                }
                _ => Err(pylite::PyError::Host("store_post: want handle".into())),
            }),
        );
        interp
            .run(&self.tenant)
            .map_err(|e| FauxbookError::Tenant(e.to_string()))?;
        let handle = stored
            .lock()
            .ok_or_else(|| FauxbookError::Tenant("tenant did not store the post".into()))?;
        self.walls
            .get_mut(&user)
            .expect("user exists")
            .push(CobufId(handle));
        Ok(())
    }

    /// View a user's wall. The goal formula is discharged through the
    /// two embedded authorities; the page is assembled by collating
    /// cobufs (flow-checked against the social graph) and rendered
    /// only at the web server boundary.
    pub fn view_wall(&mut self, session: SessionId, whose: &str) -> Result<String, FauxbookError> {
        let viewer = self.user_of(session)?;
        if !self.walls.contains_key(whose) {
            return Err(FauxbookError::NoSuchUser(whose.to_string()));
        }
        let policy = self.policies[whose];
        // Build the per-request goal formula.
        let goal = match policy {
            WallPolicy::Public => Formula::True,
            WallPolicy::Private => parse(&format!("name.webserver says user = {whose}")).unwrap(),
            WallPolicy::Friends => parse(&format!(
                "name.webserver says user = {whose} or name.python says inFriends({whose}, {viewer})"
            ))
            .unwrap(),
        };
        // The session authority answers for the *viewer's* session.
        self.state.lock().current_user = Some(viewer.clone());
        // Client-side proof construction: pick the satisfiable
        // disjunct (authorities will vouch at check time).
        let proof = match policy {
            WallPolicy::Public => None,
            WallPolicy::Private => Some(Proof::assume(
                parse(&format!("name.webserver says user = {whose}")).unwrap(),
            )),
            WallPolicy::Friends => {
                let own = parse(&format!("name.webserver says user = {whose}")).unwrap();
                let friend =
                    parse(&format!("name.python says inFriends({whose}, {viewer})")).unwrap();
                if viewer == whose {
                    Some(Proof::OrIntroL(Box::new(Proof::assume(own)), friend))
                } else {
                    Some(Proof::OrIntroR(own, Box::new(Proof::assume(friend))))
                }
            }
        };
        let subject = Principal::name(&viewer);
        let op = OpName::from("view");
        let object = ResourceId::file(&format!("/fauxbook/{whose}/wall"));
        let req = AccessRequest {
            subject: &subject,
            operation: &op,
            object: &object,
            proof: proof.as_ref(),
            labels: &[],
        };
        let decision = self.guard.check(&req, &goal, &self.authorities);
        self.state.lock().current_user = None;
        if !decision.allow {
            return Err(FauxbookError::Denied(format!(
                "{viewer} may not view {whose}'s wall: {:?}",
                decision.reason
            )));
        }
        // Assemble the page: collation is flow-checked against the
        // social graph (viewer's page may carry owner's data only if
        // the viewer speaks for the owner, i.e. they are friends or
        // identical).
        let friends = self.state.clone();
        let flow = move |dst: &Principal, src: &Principal| {
            let (d, s) = (dst.to_string(), src.to_string());
            friends
                .lock()
                .friends
                .get(&s)
                .map(|f| f.contains(&d))
                .unwrap_or(false)
        };
        let parts = self.walls[whose].clone();
        let page = self
            .cobufs
            .concat(Principal::name(&viewer), &parts, &flow)
            .map_err(|e| FauxbookError::Denied(e.to_string()))?;
        // Render only at the web-server boundary for the
        // authenticated session.
        let bytes = self
            .cobufs
            .render(page, &self.render_token)
            .map_err(|e| FauxbookError::Denied(e.to_string()))?;
        Ok(String::from_utf8_lossy(bytes).into_owned())
    }

    /// What a malicious tenant would see: there is no builtin that
    /// exposes cobuf contents, so the attempt fails in the sandbox.
    pub fn tenant_tries_to_read(&mut self, code: &str) -> Result<PyValue, FauxbookError> {
        let parsed = pylite::parse(code).map_err(|e| FauxbookError::Tenant(e.to_string()))?;
        check_import_whitelist(&parsed, TENANT_WHITELIST)
            .map_err(|e| FauxbookError::TenantRejected(e.to_string()))?;
        let safe = rewrite_reflection(&parsed);
        let mut interp = pylite::Interpreter::new();
        interp.bind("post", PyValue::Handle(1));
        interp
            .run(&safe)
            .map_err(|e| FauxbookError::Tenant(e.to_string()))
    }

    /// Resource attestation: the share of CPU the scheduler grants a
    /// tenant, read through introspection (§4.1).
    pub fn attested_share(&self, tenant: &str) -> Option<f64> {
        self.nexus.sched().share(tenant)
    }
}

/// The stock Fauxbook tenant handler: store each post, data-blind.
pub const DEFAULT_TENANT: &str = "import fauxbook\nstore_post(post)\n";

#[cfg(test)]
mod tests {
    use super::*;

    fn deployed() -> Fauxbook {
        Fauxbook::deploy(DEFAULT_TENANT).unwrap()
    }

    #[test]
    fn deploy_emits_attestation_labels() {
        let fb = deployed();
        let labels: Vec<String> = fb
            .attestation_labels()
            .iter()
            .map(|l| l.to_string())
            .collect();
        assert!(labels.iter().any(|l| l.contains("importsWhitelisted")));
        assert!(labels.iter().any(|l| l.contains("reflectionRewritten")));
        assert!(labels.iter().any(|l| l.contains("ddrmConfined")));
    }

    #[test]
    fn tenant_with_forbidden_import_rejected() {
        let err = Fauxbook::deploy("import os\nstore_post(post)\n");
        assert!(matches!(err, Err(FauxbookError::TenantRejected(_))));
    }

    #[test]
    fn post_and_view_own_wall() {
        let mut fb = deployed();
        fb.signup("alice", WallPolicy::Friends).unwrap();
        let s = fb.login("alice").unwrap();
        fb.post(s, "hello world").unwrap();
        fb.post(s, " and more").unwrap();
        let page = fb.view_wall(s, "alice").unwrap();
        assert_eq!(page, "hello world and more");
    }

    #[test]
    fn friends_can_view_strangers_cannot() {
        let mut fb = deployed();
        fb.signup("alice", WallPolicy::Friends).unwrap();
        fb.signup("bob", WallPolicy::Friends).unwrap();
        fb.signup("carol", WallPolicy::Friends).unwrap();
        let sa = fb.login("alice").unwrap();
        let sb = fb.login("bob").unwrap();
        let sc = fb.login("carol").unwrap();
        fb.post(sa, "alice's status").unwrap();
        fb.add_friend(sa, "bob").unwrap();
        assert_eq!(fb.view_wall(sb, "alice").unwrap(), "alice's status");
        assert!(matches!(
            fb.view_wall(sc, "alice"),
            Err(FauxbookError::Denied(_))
        ));
    }

    #[test]
    fn private_walls_are_owner_only() {
        let mut fb = deployed();
        fb.signup("alice", WallPolicy::Private).unwrap();
        fb.signup("bob", WallPolicy::Private).unwrap();
        let sa = fb.login("alice").unwrap();
        let sb = fb.login("bob").unwrap();
        fb.post(sa, "secret").unwrap();
        fb.add_friend(sa, "bob").unwrap();
        // Even friends cannot view a private wall.
        assert!(fb.view_wall(sb, "alice").is_err());
        assert_eq!(fb.view_wall(sa, "alice").unwrap(), "secret");
    }

    #[test]
    fn public_walls_open_to_all() {
        let mut fb = deployed();
        fb.signup("alice", WallPolicy::Public).unwrap();
        fb.signup("rando", WallPolicy::Public).unwrap();
        let sa = fb.login("alice").unwrap();
        let sr = fb.login("rando").unwrap();
        fb.post(sa, "hi all").unwrap();
        // Public policy: the guard allows, but cobuf flow still
        // requires a friendship edge for cross-owner collation — the
        // paper's stricter data-flow rule dominates.
        assert!(fb.view_wall(sr, "alice").is_err());
        fb.add_friend(sa, "rando").unwrap();
        assert_eq!(fb.view_wall(sr, "alice").unwrap(), "hi all");
    }

    #[test]
    fn tenant_cannot_read_user_data() {
        let mut fb = deployed();
        // No builtin exposes cobuf bytes to tenant code.
        let err = fb.tenant_tries_to_read("x = read_bytes(post)");
        assert!(matches!(err, Err(FauxbookError::Tenant(_))));
        // Reflection tricks are rewritten to denials.
        let err2 = fb.tenant_tries_to_read("x = getattr(post, 'bytes')");
        assert!(matches!(err2, Err(FauxbookError::Tenant(_))));
    }

    #[test]
    fn session_forgery_fails() {
        let mut fb = deployed();
        fb.signup("alice", WallPolicy::Private).unwrap();
        let bogus = SessionId(999);
        assert!(matches!(
            fb.view_wall(bogus, "alice"),
            Err(FauxbookError::NoSuchUser(_))
        ));
    }

    #[test]
    fn resource_attestation_reports_share() {
        let fb = deployed();
        let share = fb.attested_share("fauxbook").unwrap();
        assert!((share - 0.75).abs() < 1e-9);
        // And it is visible through kernel introspection like the
        // paper's labeling function would read it.
        let node = fb
            .nexus
            .introspect_read("/proc/sched/fauxbook/share")
            .unwrap();
        assert!(node.starts_with("share=0.75"));
    }
}
