//! The BGP protocol verifier (§4): synthetic trust for legacy
//! network infrastructure.
//!
//! Instead of attesting every BGP speaker's binary (axiomatic, and
//! hopeless for legacy routers), a verifier straddles the legacy
//! speaker as a proxy and checks every outgoing advertisement against
//! minimal safety rules: a speaker may only advertise routes that
//! extend routes it actually received (no fabrication — "a host
//! cannot advertise an n-hop route … for which the shortest
//! advertisement it received is m, for n < m"), and may only
//! originate prefixes it owns.

use std::collections::HashMap;
use std::fmt;

/// An AS number.
pub type AsNum = u32;

/// A prefix (string form, e.g. `10.0.0.0/8`).
pub type Prefix = String;

/// BGP messages (the subset the safety rules govern).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BgpMessage {
    /// Advertise a route.
    Advertise {
        /// The destination prefix.
        prefix: Prefix,
        /// AS path, nearest first; the last element is the origin.
        as_path: Vec<AsNum>,
    },
    /// Withdraw a route.
    Withdraw {
        /// The destination prefix.
        prefix: Prefix,
    },
}

/// A safety violation detected by the verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Advertised a route shorter than anything actually received
    /// (route fabrication).
    FabricatedRoute {
        /// The prefix.
        prefix: Prefix,
        /// Claimed path length.
        claimed: usize,
        /// Shortest received path length.
        shortest_received: usize,
    },
    /// Originated a prefix the AS does not own (false origination).
    FalseOrigination {
        /// The prefix.
        prefix: Prefix,
    },
    /// Advertised a prefix never received nor owned.
    UnknownPrefix {
        /// The prefix.
        prefix: Prefix,
    },
    /// The AS path does not include the speaker itself.
    MissingSelf,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::FabricatedRoute {
                prefix,
                claimed,
                shortest_received,
            } => write!(
                f,
                "fabricated route to {prefix}: claims {claimed} hops, shortest received is {shortest_received}"
            ),
            Violation::FalseOrigination { prefix } => {
                write!(f, "false origination of {prefix}")
            }
            Violation::UnknownPrefix { prefix } => {
                write!(f, "advertisement for unknown prefix {prefix}")
            }
            Violation::MissingSelf => write!(f, "AS path omits the speaker"),
        }
    }
}

/// The verifier proxy for one legacy speaker.
pub struct BgpVerifier {
    /// The AS this speaker belongs to.
    pub local_as: AsNum,
    /// Prefixes this AS legitimately originates.
    pub owned_prefixes: Vec<Prefix>,
    /// Shortest received path length per prefix.
    received: HashMap<Prefix, usize>,
    /// Violations observed (for the audit log).
    pub violations: Vec<Violation>,
}

impl BgpVerifier {
    /// New verifier.
    pub fn new(local_as: AsNum, owned_prefixes: Vec<Prefix>) -> Self {
        BgpVerifier {
            local_as,
            owned_prefixes,
            received: HashMap::new(),
            violations: Vec::new(),
        }
    }

    /// Observe an *incoming* message (from a peer to the legacy
    /// speaker). The verifier records the shortest path seen.
    pub fn observe_incoming(&mut self, msg: &BgpMessage) {
        match msg {
            BgpMessage::Advertise { prefix, as_path } => {
                let len = as_path.len();
                self.received
                    .entry(prefix.clone())
                    .and_modify(|m| *m = (*m).min(len))
                    .or_insert(len);
            }
            BgpMessage::Withdraw { prefix } => {
                self.received.remove(prefix);
            }
        }
    }

    /// Check an *outgoing* message; `Ok` means it conforms and may be
    /// forwarded, `Err` blocks it (and logs the violation).
    pub fn check_outgoing(&mut self, msg: &BgpMessage) -> Result<(), Violation> {
        let v = self.validate(msg);
        if let Err(violation) = &v {
            self.violations.push(violation.clone());
        }
        v
    }

    fn validate(&self, msg: &BgpMessage) -> Result<(), Violation> {
        let BgpMessage::Advertise { prefix, as_path } = msg else {
            return Ok(()); // withdrawals are always safe
        };
        if !as_path.contains(&self.local_as) {
            return Err(Violation::MissingSelf);
        }
        let originated = as_path.last() == Some(&self.local_as) && as_path.len() == 1;
        if originated {
            if self.owned_prefixes.contains(prefix) {
                return Ok(());
            }
            return Err(Violation::FalseOrigination {
                prefix: prefix.clone(),
            });
        }
        match self.received.get(prefix) {
            None => {
                if self.owned_prefixes.contains(prefix) {
                    Ok(())
                } else {
                    Err(Violation::UnknownPrefix {
                        prefix: prefix.clone(),
                    })
                }
            }
            Some(&shortest) => {
                // Forwarding must extend a received route: the
                // advertised path includes our hop, so it must be at
                // least shortest + 1 long.
                if as_path.len() < shortest + 1 {
                    Err(Violation::FabricatedRoute {
                        prefix: prefix.clone(),
                        claimed: as_path.len(),
                        shortest_received: shortest,
                    })
                } else {
                    Ok(())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adv(prefix: &str, path: &[AsNum]) -> BgpMessage {
        BgpMessage::Advertise {
            prefix: prefix.to_string(),
            as_path: path.to_vec(),
        }
    }

    #[test]
    fn legitimate_forwarding_passes() {
        let mut v = BgpVerifier::new(65001, vec![]);
        v.observe_incoming(&adv("10.0.0.0/8", &[65002, 65003]));
        // Forwarding with our AS prepended: 3 hops ≥ 2 + 1.
        assert!(v
            .check_outgoing(&adv("10.0.0.0/8", &[65001, 65002, 65003]))
            .is_ok());
    }

    #[test]
    fn route_fabrication_blocked() {
        let mut v = BgpVerifier::new(65001, vec![]);
        v.observe_incoming(&adv("10.0.0.0/8", &[65002, 65003, 65004]));
        // Claiming a 2-hop route when the shortest received is 3.
        let err = v.check_outgoing(&adv("10.0.0.0/8", &[65001, 65004]));
        assert!(matches!(
            err,
            Err(Violation::FabricatedRoute {
                claimed: 2,
                shortest_received: 3,
                ..
            })
        ));
        assert_eq!(v.violations.len(), 1);
    }

    #[test]
    fn owned_prefix_origination_allowed() {
        let mut v = BgpVerifier::new(65001, vec!["192.168.0.0/16".to_string()]);
        assert!(v.check_outgoing(&adv("192.168.0.0/16", &[65001])).is_ok());
    }

    #[test]
    fn false_origination_blocked() {
        let mut v = BgpVerifier::new(65001, vec![]);
        assert!(matches!(
            v.check_outgoing(&adv("8.8.8.0/24", &[65001])),
            Err(Violation::FalseOrigination { .. })
        ));
    }

    #[test]
    fn unknown_prefix_blocked() {
        let mut v = BgpVerifier::new(65001, vec![]);
        assert!(matches!(
            v.check_outgoing(&adv("172.16.0.0/12", &[65001, 65002])),
            Err(Violation::UnknownPrefix { .. })
        ));
    }

    #[test]
    fn path_must_include_self() {
        let mut v = BgpVerifier::new(65001, vec![]);
        v.observe_incoming(&adv("10.0.0.0/8", &[65002]));
        assert_eq!(
            v.check_outgoing(&adv("10.0.0.0/8", &[65002, 65003])),
            Err(Violation::MissingSelf)
        );
    }

    #[test]
    fn withdrawals_always_pass_and_clear_state() {
        let mut v = BgpVerifier::new(65001, vec![]);
        v.observe_incoming(&adv("10.0.0.0/8", &[65002]));
        assert!(v
            .check_outgoing(&BgpMessage::Withdraw {
                prefix: "10.0.0.0/8".into()
            })
            .is_ok());
        v.observe_incoming(&BgpMessage::Withdraw {
            prefix: "10.0.0.0/8".into(),
        });
        // After withdrawal, forwarding it again is an unknown prefix.
        assert!(v
            .check_outgoing(&adv("10.0.0.0/8", &[65001, 65002]))
            .is_err());
    }

    #[test]
    fn shortest_received_tracks_minimum() {
        let mut v = BgpVerifier::new(65001, vec![]);
        v.observe_incoming(&adv("10.0.0.0/8", &[65002, 65003, 65004]));
        v.observe_incoming(&adv("10.0.0.0/8", &[65005]));
        // Now 2 hops ≥ 1 + 1 is fine.
        assert!(v
            .check_outgoing(&adv("10.0.0.0/8", &[65001, 65005]))
            .is_ok());
    }
}
