//! # Applications on logical attestation (§4)
//!
//! Each application demonstrates a different way labels, goals,
//! guards, and authorities combine:
//!
//! * [`fauxbook`] — the flagship: a privacy-preserving three-tier
//!   social network where even the developers' own code cannot read
//!   user data (cobufs + sandbox + interposition + authorities);
//! * [`movie_player`] — time-sensitive content released to *any*
//!   player that an IPC-connectivity analysis shows cannot leak to
//!   disk or network (no whitelists, no platform lock-down);
//! * [`object_store`] — transitive integrity: typed objects from an
//!   attested type-safe producer skip deserialization re-validation;
//! * [`notabot`] — keyboard-driver keypress attestations feeding a
//!   spam classifier;
//! * [`certipics`] — image editing with a certified, unforgeable
//!   transformation log;
//! * [`trudocs`] — excerpts certified to speak for their source
//!   document under a use policy;
//! * [`bgp`] — a protocol verifier straddling a legacy BGP speaker,
//!   enforcing route-safety rules (synthetic trust in a network
//!   setting).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bgp;
pub mod certipics;
pub mod fauxbook;
pub mod movie_player;
pub mod notabot;
pub mod object_store;
pub mod trudocs;

pub use fauxbook::Fauxbook;
