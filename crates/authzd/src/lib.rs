//! # `nexus-authzd` — the asynchronous authorization pipeline
//!
//! The paper's guard evaluates proofs synchronously on the syscall
//! path, so a slow authority (a userspace decider, a TPM-backed
//! credential) stalls the caller. This crate moves `Guard::check` off
//! the syscall thread: callers submit [`AuthzRequest`]s to a
//! [`GuardPool`] of worker threads and receive an [`AuthzTicket`]
//! they can poll, block on, or attach a callback to. The kernel only
//! *admits* decisions; it no longer *computes* them inline.
//!
//! ```text
//!  syscall threads              GuardPool
//!  ───────────────              ─────────
//!  submit(req) ──► admission ──► embedded lane ──► N workers ─┐ pop + coalesce
//!       │          (high-water   external lane ──► M workers ─┤ by (op, object,
//!       │           mark:                (AuthorityKind::     │     label shape)
//!       │           Reject/Block)         External batches)   ▼
//!       ▼                                            BatchExecutor::execute_batch
//!  AuthzTicket ◄───────────── complete ◄─────────── (goal fetched & normalized
//!  (poll / wait / callback,                          once per batch; epoch-fenced
//!   panics isolated)                                 so no stale allow lands)
//! ```
//!
//! Two liveness properties are load-bearing (the guard mediates every
//! syscall, so the pipeline must never wedge):
//!
//! * **Bounded admission** — each lane's queue has a high-water mark
//!   ([`GuardPoolConfig::max_queued`]); past it, submission either
//!   faults immediately ([`OverflowPolicy::Reject`] — the kernel's
//!   sync path treats the fault as "fall back to inline evaluation")
//!   or blocks the submitter until space frees
//!   ([`OverflowPolicy::Block`], for async callers that opt in).
//!   No request ever waits unboundedly in the queue.
//! * **Authority isolation** — requests whose evaluation may query an
//!   external (`nexus-core` `AuthorityKind::External`) authority,
//!   classified by the kernel before submission via
//!   [`AuthzRequest::external`], run on a separate, smaller worker
//!   pool, so one stuck external authority can occupy at most
//!   [`GuardPoolConfig::external_workers`] threads while
//!   embedded-authority traffic keeps flowing. (This crate stays
//!   kernel-agnostic and only sees the boolean classification.)
//!
//! The crate is deliberately kernel-agnostic: evaluation is behind the
//! [`BatchExecutor`] trait, so the pool can be unit-tested with a toy
//! executor and the kernel plugs in the real guard path. Everything is
//! hand-rolled on `std::sync` (no tokio — the build is offline): the
//! submission queues are mutex-protected deques with condvars, MPMC by
//! construction since any worker of a lane may pop any entry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;
pub mod ticket;

pub use pool::{BatchExecutor, GuardPool, GuardPoolConfig, OverflowPolicy, PoolStats};
pub use ticket::{AuthzOutcome, AuthzTicket};

use nexus_core::{OpName, ResourceId};
use nexus_nal::Proof;

/// A request for authorization, queued for off-thread evaluation.
#[derive(Debug, Clone)]
pub struct AuthzRequest {
    /// The requesting process.
    pub pid: u64,
    /// The operation being attempted.
    pub op: OpName,
    /// The resource operated on.
    pub object: ResourceId,
    /// An explicitly supplied proof (otherwise the executor falls
    /// back to the stored proof or auto-proving, like the sync path).
    pub proof: Option<Proof>,
    /// True when evaluating this request may consult an external
    /// (IPC-backed) authority. Classified by the submitter *before*
    /// evaluation — the kernel walks the goal formula and the leaves
    /// of the proof that will be checked (supplied or stored) for
    /// principals with a registered external authority — and routes
    /// the request to the dedicated external worker lane so a stuck
    /// authority cannot occupy the whole pool.
    pub external: bool,
    /// The submitter's *label shape*: an order-insensitive fingerprint
    /// of the requesting process's credential set (the kernel reads
    /// it off the labelstore, `LabelStore::shape`). Requests
    /// only coalesce when shapes match, so every batch the executor
    /// sees shares one (goal, credential-shape) pair and the batch
    /// prover's frontier sharing is maximal. Purely a batching hint:
    /// collisions or a constant `0` affect throughput, never verdicts.
    pub label_shape: u64,
    /// When the submitter stamped this request (just before
    /// `try_submit`). Telemetry only: with stage timers configured
    /// ([`pool::GuardPoolConfig::stage_timers`]) the pool measures the
    /// submit and end-to-end spans from it. `None` skips per-request
    /// spans for this request; verdicts are unaffected.
    pub submitted_at: Option<std::time::Instant>,
}

/// The coalescing key: requests sharing a goal — same (operation,
/// object-subregion) pair — *and* the same label shape are batched, so
/// goal instantiation, NAL normalization, and (for auto-proved
/// requests) the proof-search frontier are amortized once per batch.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BatchKey {
    /// The operation all batch members attempt.
    pub op: OpName,
    /// The resource they attempt it on.
    pub object: ResourceId,
    /// The shared label-shape fingerprint ([`AuthzRequest::label_shape`]).
    pub label_shape: u64,
}

impl AuthzRequest {
    /// The batch this request coalesces into.
    pub fn key(&self) -> BatchKey {
        BatchKey {
            op: self.op.clone(),
            object: self.object.clone(),
            label_shape: self.label_shape,
        }
    }
}
