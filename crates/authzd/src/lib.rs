//! # `nexus-authzd` — the asynchronous authorization pipeline
//!
//! The paper's guard evaluates proofs synchronously on the syscall
//! path, so a slow authority (a userspace decider, a TPM-backed
//! credential) stalls the caller. This crate moves `Guard::check` off
//! the syscall thread: callers submit [`AuthzRequest`]s to a
//! [`GuardPool`] of worker threads and receive an [`AuthzTicket`]
//! they can poll, block on, or attach a callback to. The kernel only
//! *admits* decisions; it no longer *computes* them inline.
//!
//! ```text
//!  syscall threads                 GuardPool (N workers)
//!  ───────────────                 ─────────────────────
//!  submit(req) ──► MPMC queue ──► pop + coalesce by (op, object)
//!       │                              │
//!       ▼                              ▼
//!  AuthzTicket ◄── complete ◄── BatchExecutor::execute_batch
//!  (poll / wait / callback)      (goal fetched & normalized once
//!                                 per batch; epoch-fenced by the
//!                                 kernel so no stale allow lands)
//! ```
//!
//! The crate is deliberately kernel-agnostic: evaluation is behind the
//! [`BatchExecutor`] trait, so the pool can be unit-tested with a toy
//! executor and the kernel plugs in the real guard path. Everything is
//! hand-rolled on `std::sync` (no tokio — the build is offline): the
//! submission queue is a mutex-protected deque with a condvar, MPMC by
//! construction since any worker may pop any entry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;
pub mod ticket;

pub use pool::{BatchExecutor, GuardPool, GuardPoolConfig, PoolStats};
pub use ticket::{AuthzOutcome, AuthzTicket};

use nexus_core::{OpName, ResourceId};
use nexus_nal::Proof;

/// A request for authorization, queued for off-thread evaluation.
#[derive(Debug, Clone)]
pub struct AuthzRequest {
    /// The requesting process.
    pub pid: u64,
    /// The operation being attempted.
    pub op: OpName,
    /// The resource operated on.
    pub object: ResourceId,
    /// An explicitly supplied proof (otherwise the executor falls
    /// back to the stored proof or auto-proving, like the sync path).
    pub proof: Option<Proof>,
}

/// The coalescing key: requests sharing a goal — same (operation,
/// object-subregion) pair — are batched so goal instantiation and NAL
/// normalization are amortized once per batch.
pub type BatchKey = (OpName, ResourceId);

impl AuthzRequest {
    /// The batch this request coalesces into.
    pub fn key(&self) -> BatchKey {
        (self.op.clone(), self.object.clone())
    }
}
