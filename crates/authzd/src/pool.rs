//! The guard pool: N hand-rolled worker threads pulling from an MPMC
//! submission queue, coalescing requests that share a goal into
//! batches, and completing tickets.
//!
//! Coalescing is the point: requests for the same `(op, object)` pair
//! evaluate against the same goal formula, so the executor fetches,
//! instantiates, and normalizes that goal once per *batch* instead of
//! once per *request* (§2.9's guard-cache insight applied across
//! concurrent requests instead of across time).

use crate::ticket::{AuthzOutcome, AuthzTicket, TicketInner};
use crate::{AuthzRequest, BatchKey};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// How a batch of coalesced requests is evaluated. Implemented by the
/// kernel (the real guard path) and by test doubles.
pub trait BatchExecutor: Send + Sync {
    /// Evaluate a batch sharing one [`BatchKey`]; must return exactly
    /// one outcome per request, in order. The executor owns epoch
    /// fencing: if goals/proofs/labels moved while the batch was in
    /// flight, it must re-evaluate rather than let a stale allow
    /// escape.
    fn execute_batch(&self, key: &BatchKey, reqs: &[AuthzRequest]) -> Vec<AuthzOutcome>;
}

/// Priority for queue ordering: higher runs first. The kernel wires
/// this to per-IPD scheduler weights so heavyweight tenants' batches
/// are picked up before lightweights' when the queue backs up.
pub type Prioritizer = Arc<dyn Fn(&AuthzRequest) -> u64 + Send + Sync>;

/// Pool configuration.
#[derive(Clone)]
pub struct GuardPoolConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Maximum requests coalesced into one batch.
    pub max_batch: usize,
    /// Optional request prioritizer (None = FIFO).
    pub prioritizer: Option<Prioritizer>,
}

impl Default for GuardPoolConfig {
    fn default() -> Self {
        GuardPoolConfig {
            workers: 4,
            max_batch: 64,
            prioritizer: None,
        }
    }
}

impl std::fmt::Debug for GuardPoolConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GuardPoolConfig")
            .field("workers", &self.workers)
            .field("max_batch", &self.max_batch)
            .field("prioritizer", &self.prioritizer.is_some())
            .finish()
    }
}

/// Pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests submitted.
    pub submitted: u64,
    /// Requests completed (including faults).
    pub completed: u64,
    /// Batches executed.
    pub batches: u64,
    /// Requests that rode along in a batch after the first (i.e. the
    /// per-batch overhead they did *not* pay).
    pub coalesced: u64,
    /// Largest batch observed.
    pub max_batch_seen: u64,
}

struct Pending {
    req: AuthzRequest,
    ticket: Arc<TicketInner>,
    /// Computed once at submit time (outside the queue lock) so the
    /// pop-side scan is a plain integer comparison.
    priority: u64,
}

#[derive(Default)]
struct Queue {
    entries: VecDeque<Pending>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    /// Wakes workers on submit/shutdown.
    work: Condvar,
    /// Wakes `quiesce` waiters on completion.
    drained: Condvar,
    cfg_max_batch: usize,
    prioritizer: Option<Prioritizer>,
    submitted: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
    coalesced: AtomicU64,
    max_batch_seen: AtomicU64,
    stopping: AtomicBool,
}

impl Shared {
    /// Mark `n` requests finished and wake any quiesce waiters.
    fn note_completed(&self, n: u64) {
        self.completed.fetch_add(n, Ordering::SeqCst);
        // The waiter re-checks counters under the queue lock; taking
        // it here orders the notification after the waiter's check.
        let _guard = self.queue.lock().expect("authzd queue");
        self.drained.notify_all();
    }
}

/// The asynchronous authorization pipeline.
pub struct GuardPool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl GuardPool {
    /// Spawn `cfg.workers` worker threads over `executor`.
    pub fn new(cfg: GuardPoolConfig, executor: Arc<dyn BatchExecutor>) -> GuardPool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue::default()),
            work: Condvar::new(),
            drained: Condvar::new(),
            cfg_max_batch: cfg.max_batch.max(1),
            prioritizer: cfg.prioritizer.clone(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            max_batch_seen: AtomicU64::new(0),
            stopping: AtomicBool::new(false),
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let executor = Arc::clone(&executor);
                std::thread::Builder::new()
                    .name(format!("authzd-worker-{i}"))
                    .spawn(move || worker_loop(shared, executor))
                    .expect("spawn authzd worker")
            })
            .collect();
        GuardPool {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Submit a request; returns immediately with its ticket. After
    /// shutdown the ticket resolves to a fault.
    pub fn submit(&self, req: AuthzRequest) -> AuthzTicket {
        self.try_submit(req).unwrap_or_else(|| {
            AuthzTicket::ready(AuthzOutcome::Fault("authzd pool is shut down".into()))
        })
    }

    /// Submit a request unless the pool is shut down (`None`), so the
    /// caller can evaluate it some other way — the kernel falls back
    /// to the inline guard path. The priority (if a prioritizer is
    /// configured) is computed here, on the submitting thread, before
    /// the queue lock is taken — workers never run caller code while
    /// holding the queue mutex.
    pub fn try_submit(&self, req: AuthzRequest) -> Option<AuthzTicket> {
        let priority = match &self.shared.prioritizer {
            Some(pri) => pri(&req),
            None => 0,
        };
        let inner = TicketInner::new();
        let ticket = AuthzTicket::from_inner(Arc::clone(&inner));
        {
            let mut queue = self.shared.queue.lock().expect("authzd queue");
            if queue.shutdown {
                return None;
            }
            self.shared.submitted.fetch_add(1, Ordering::SeqCst);
            queue.entries.push_back(Pending {
                req,
                ticket: inner,
                priority,
            });
        }
        self.shared.work.notify_one();
        Some(ticket)
    }

    /// Wait until every request submitted before this call has
    /// completed. This is the invalidation fence: `setgoal` calls it
    /// after bumping the goal epoch so that any batch evaluated under
    /// the old goal has re-validated (and, if stale, re-evaluated)
    /// before the syscall returns.
    pub fn quiesce(&self) {
        let target = self.shared.submitted.load(Ordering::SeqCst);
        let mut queue = self.shared.queue.lock().expect("authzd queue");
        while self.shared.completed.load(Ordering::SeqCst) < target {
            queue = self.shared.drained.wait(queue).expect("authzd quiesce");
        }
        drop(queue);
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            submitted: self.shared.submitted.load(Ordering::SeqCst),
            completed: self.shared.completed.load(Ordering::SeqCst),
            batches: self.shared.batches.load(Ordering::SeqCst),
            coalesced: self.shared.coalesced.load(Ordering::SeqCst),
            max_batch_seen: self.shared.max_batch_seen.load(Ordering::SeqCst),
        }
    }

    /// Stop accepting work, fault out everything still queued, and
    /// join the workers. Idempotent.
    pub fn shutdown(&self) {
        let leftovers: Vec<Pending> = {
            let mut queue = self.shared.queue.lock().expect("authzd queue");
            queue.shutdown = true;
            self.shared.stopping.store(true, Ordering::SeqCst);
            queue.entries.drain(..).collect()
        };
        self.shared.work.notify_all();
        let n = leftovers.len() as u64;
        for p in leftovers {
            p.ticket
                .complete(AuthzOutcome::Fault("authzd pool shut down".into()));
        }
        if n > 0 {
            self.shared.note_completed(n);
        }
        let handles: Vec<JoinHandle<()>> = self
            .workers
            .lock()
            .expect("authzd workers")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for GuardPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Pop the next batch: pick the highest-priority entry (FIFO when no
/// prioritizer), then drain every queued request sharing its key, up
/// to `max_batch`. Returns `None` on shutdown.
fn pop_batch(shared: &Shared) -> Option<(BatchKey, Vec<Pending>)> {
    let mut queue = shared.queue.lock().expect("authzd queue");
    loop {
        if shared.stopping.load(Ordering::SeqCst) || queue.shutdown {
            return None;
        }
        if queue.entries.is_empty() {
            queue = shared.work.wait(queue).expect("authzd worker wait");
            continue;
        }
        let lead_idx = if shared.prioritizer.is_none() {
            0
        } else {
            // Priorities were computed at submit time: this scan is a
            // plain integer max. Highest priority wins; FIFO among
            // equals (the *earlier* index wins, hence the reversed
            // index comparison).
            queue
                .entries
                .iter()
                .enumerate()
                .max_by(|(ia, a), (ib, b)| a.priority.cmp(&b.priority).then(ib.cmp(ia)))
                .map(|(i, _)| i)
                .unwrap_or(0)
        };
        let lead = queue.entries.remove(lead_idx).expect("index in bounds");
        let key = lead.req.key();
        let mut batch = vec![lead];
        let mut i = 0;
        while i < queue.entries.len() && batch.len() < shared.cfg_max_batch {
            // Compare by reference — no per-entry key clones while the
            // queue mutex is held.
            let entry = &queue.entries[i].req;
            if entry.op == key.0 && entry.object == key.1 {
                batch.push(queue.entries.remove(i).expect("index in bounds"));
            } else {
                i += 1;
            }
        }
        return Some((key, batch));
    }
}

fn worker_loop(shared: Arc<Shared>, executor: Arc<dyn BatchExecutor>) {
    while let Some((key, batch)) = pop_batch(&shared) {
        // Move the owned requests out — the executor borrows them, no
        // proof-tree clones on the worker hot path.
        let (reqs, tickets): (Vec<AuthzRequest>, Vec<Arc<TicketInner>>) =
            batch.into_iter().map(|p| (p.req, p.ticket)).unzip();
        let outcomes = executor.execute_batch(&key, &reqs);
        debug_assert_eq!(outcomes.len(), reqs.len(), "executor contract");
        shared.batches.fetch_add(1, Ordering::SeqCst);
        shared
            .coalesced
            .fetch_add(reqs.len().saturating_sub(1) as u64, Ordering::SeqCst);
        shared
            .max_batch_seen
            .fetch_max(reqs.len() as u64, Ordering::SeqCst);
        let n = tickets.len() as u64;
        let mut outcomes = outcomes.into_iter();
        for ticket in tickets {
            let outcome = outcomes
                .next()
                .unwrap_or_else(|| AuthzOutcome::Fault("executor returned short batch".into()));
            ticket.complete(outcome);
        }
        shared.note_completed(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_core::{OpName, ResourceId};
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    fn req(pid: u64, op: &str, obj: &str) -> AuthzRequest {
        AuthzRequest {
            pid,
            op: OpName::from(op),
            object: ResourceId(obj.to_string()),
            proof: None,
        }
    }

    /// Allows even pids, denies odd; records batch sizes.
    struct ParityExecutor {
        batches: Mutex<Vec<usize>>,
        delay: Duration,
    }

    impl ParityExecutor {
        fn new(delay: Duration) -> Self {
            ParityExecutor {
                batches: Mutex::new(Vec::new()),
                delay,
            }
        }
    }

    impl BatchExecutor for ParityExecutor {
        fn execute_batch(&self, _key: &BatchKey, reqs: &[AuthzRequest]) -> Vec<AuthzOutcome> {
            if !self.delay.is_zero() {
                std::thread::sleep(self.delay);
            }
            self.batches.lock().unwrap().push(reqs.len());
            reqs.iter()
                .map(|r| {
                    if r.pid % 2 == 0 {
                        AuthzOutcome::Allow
                    } else {
                        AuthzOutcome::Deny
                    }
                })
                .collect()
        }
    }

    #[test]
    fn submit_wait_roundtrip() {
        let pool = GuardPool::new(
            GuardPoolConfig::default(),
            Arc::new(ParityExecutor::new(Duration::ZERO)),
        );
        assert_eq!(
            pool.submit(req(2, "read", "file:/a")).wait(),
            AuthzOutcome::Allow
        );
        assert_eq!(
            pool.submit(req(3, "read", "file:/a")).wait(),
            AuthzOutcome::Deny
        );
    }

    #[test]
    fn poll_and_callback_paths() {
        let pool = GuardPool::new(
            GuardPoolConfig::default(),
            Arc::new(ParityExecutor::new(Duration::from_millis(20))),
        );
        let t = pool.submit(req(4, "read", "file:/a"));
        // Likely still pending thanks to the executor delay; either
        // way, poll must never return a wrong verdict.
        if let Some(o) = t.try_outcome() {
            assert_eq!(o, AuthzOutcome::Allow);
        }
        let fired = Arc::new(AtomicUsize::new(0));
        let fired2 = Arc::clone(&fired);
        t.on_complete(move |o| {
            assert!(o.is_allow());
            fired2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(t.wait(), AuthzOutcome::Allow);
        // Callback attached after completion runs immediately.
        let fired3 = Arc::clone(&fired);
        t.on_complete(move |_| {
            fired3.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(fired.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn wait_timeout_observes_pending_then_done() {
        let pool = GuardPool::new(
            GuardPoolConfig {
                workers: 1,
                ..Default::default()
            },
            Arc::new(ParityExecutor::new(Duration::from_millis(50))),
        );
        let t = pool.submit(req(2, "read", "file:/a"));
        // Immediately after submit the worker is still sleeping.
        assert_eq!(t.wait_timeout(Duration::from_millis(1)), None);
        assert_eq!(
            t.wait_timeout(Duration::from_secs(10)),
            Some(AuthzOutcome::Allow)
        );
    }

    #[test]
    fn same_key_requests_coalesce() {
        // One worker, slow executor: while the first batch runs, the
        // rest of the submissions pile up and must coalesce.
        let exec = Arc::new(ParityExecutor::new(Duration::from_millis(10)));
        let pool = GuardPool::new(
            GuardPoolConfig {
                workers: 1,
                max_batch: 64,
                prioritizer: None,
            },
            Arc::clone(&exec) as Arc<dyn BatchExecutor>,
        );
        let tickets: Vec<AuthzTicket> = (0..20)
            .map(|pid| pool.submit(req(pid, "read", "file:/hot")))
            .collect();
        for (pid, t) in tickets.iter().enumerate() {
            let expect = if pid % 2 == 0 {
                AuthzOutcome::Allow
            } else {
                AuthzOutcome::Deny
            };
            assert_eq!(t.wait(), expect, "pid {pid}");
        }
        let stats = pool.stats();
        assert_eq!(stats.completed, 20);
        assert!(
            stats.batches < 20,
            "20 same-key requests through 1 slow worker must coalesce, got {} batches",
            stats.batches
        );
        assert!(stats.max_batch_seen >= 2);
        assert_eq!(stats.coalesced, 20 - stats.batches);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let exec = Arc::new(ParityExecutor::new(Duration::from_millis(5)));
        let pool = GuardPool::new(
            GuardPoolConfig {
                workers: 1,
                max_batch: 64,
                prioritizer: None,
            },
            Arc::clone(&exec) as Arc<dyn BatchExecutor>,
        );
        let tickets: Vec<AuthzTicket> = (0..8)
            .map(|pid| pool.submit(req(pid, "read", &format!("file:/{pid}"))))
            .collect();
        for t in &tickets {
            let _ = t.wait();
        }
        let sizes = exec.batches.lock().unwrap().clone();
        assert!(sizes.iter().all(|&s| s == 1), "sizes: {sizes:?}");
    }

    #[test]
    fn max_batch_caps_coalescing() {
        let exec = Arc::new(ParityExecutor::new(Duration::from_millis(10)));
        let pool = GuardPool::new(
            GuardPoolConfig {
                workers: 1,
                max_batch: 4,
                prioritizer: None,
            },
            Arc::clone(&exec) as Arc<dyn BatchExecutor>,
        );
        let tickets: Vec<AuthzTicket> = (0..16)
            .map(|pid| pool.submit(req(pid, "read", "file:/hot")))
            .collect();
        for t in &tickets {
            let _ = t.wait();
        }
        let sizes = exec.batches.lock().unwrap().clone();
        assert!(sizes.iter().all(|&s| s <= 4), "sizes: {sizes:?}");
    }

    #[test]
    fn per_key_fifo_order_is_preserved() {
        // Order within a key must be submission order even under
        // coalescing: the executor sees pids in ascending order.
        struct OrderCheck {
            seen: Mutex<Vec<u64>>,
        }
        impl BatchExecutor for OrderCheck {
            fn execute_batch(&self, _k: &BatchKey, reqs: &[AuthzRequest]) -> Vec<AuthzOutcome> {
                std::thread::sleep(Duration::from_millis(5));
                let mut seen = self.seen.lock().unwrap();
                for r in reqs {
                    seen.push(r.pid);
                }
                vec![AuthzOutcome::Allow; reqs.len()]
            }
        }
        let exec = Arc::new(OrderCheck {
            seen: Mutex::new(Vec::new()),
        });
        let pool = GuardPool::new(
            GuardPoolConfig {
                workers: 1,
                max_batch: 64,
                prioritizer: None,
            },
            Arc::clone(&exec) as Arc<dyn BatchExecutor>,
        );
        let tickets: Vec<AuthzTicket> = (0..32)
            .map(|pid| pool.submit(req(pid, "read", "file:/hot")))
            .collect();
        for t in &tickets {
            let _ = t.wait();
        }
        let seen = exec.seen.lock().unwrap().clone();
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(seen, sorted, "per-key order must be FIFO: {seen:?}");
    }

    #[test]
    fn prioritizer_orders_backlog() {
        // One worker, pinned by a slow first batch; the backlog then
        // drains highest-priority-first (priority = pid here).
        struct Recorder {
            seen: Mutex<Vec<u64>>,
        }
        impl BatchExecutor for Recorder {
            fn execute_batch(&self, _k: &BatchKey, reqs: &[AuthzRequest]) -> Vec<AuthzOutcome> {
                std::thread::sleep(Duration::from_millis(15));
                self.seen.lock().unwrap().extend(reqs.iter().map(|r| r.pid));
                vec![AuthzOutcome::Allow; reqs.len()]
            }
        }
        let exec = Arc::new(Recorder {
            seen: Mutex::new(Vec::new()),
        });
        let pool = GuardPool::new(
            GuardPoolConfig {
                workers: 1,
                max_batch: 1,
                prioritizer: Some(Arc::new(|r: &AuthzRequest| r.pid)),
            },
            Arc::clone(&exec) as Arc<dyn BatchExecutor>,
        );
        // Distinct keys so nothing coalesces; the plug request keeps
        // the worker busy while the rest queue up.
        let plug = pool.submit(req(0, "read", "file:/plug"));
        std::thread::sleep(Duration::from_millis(5));
        let tickets: Vec<AuthzTicket> = (1..=4)
            .map(|pid| pool.submit(req(pid, "read", &format!("file:/{pid}"))))
            .collect();
        let _ = plug.wait();
        for t in &tickets {
            let _ = t.wait();
        }
        let seen = exec.seen.lock().unwrap().clone();
        assert_eq!(seen[0], 0, "plug ran first");
        assert_eq!(&seen[1..], &[4, 3, 2, 1], "backlog must drain by priority");
    }

    #[test]
    fn quiesce_waits_for_in_flight_work() {
        let pool = GuardPool::new(
            GuardPoolConfig {
                workers: 2,
                ..Default::default()
            },
            Arc::new(ParityExecutor::new(Duration::from_millis(10))),
        );
        let tickets: Vec<AuthzTicket> = (0..8)
            .map(|pid| pool.submit(req(pid, "read", &format!("file:/{pid}"))))
            .collect();
        pool.quiesce();
        for t in &tickets {
            assert!(
                t.try_outcome().is_some(),
                "quiesce returned with work in flight"
            );
        }
    }

    #[test]
    fn shutdown_faults_queued_requests_and_rejects_new_ones() {
        let pool = GuardPool::new(
            GuardPoolConfig {
                workers: 1,
                max_batch: 1,
                prioritizer: None,
            },
            Arc::new(ParityExecutor::new(Duration::from_millis(30))),
        );
        let running = pool.submit(req(0, "read", "file:/a"));
        std::thread::sleep(Duration::from_millis(5));
        let queued = pool.submit(req(2, "read", "file:/b"));
        pool.shutdown();
        // The in-flight one finished; the queued one faulted.
        assert_eq!(running.wait(), AuthzOutcome::Allow);
        assert!(matches!(queued.wait(), AuthzOutcome::Fault(_)));
        // New submissions fault immediately.
        assert!(matches!(
            pool.submit(req(4, "read", "file:/c")).wait(),
            AuthzOutcome::Fault(_)
        ));
        let stats = pool.stats();
        assert_eq!(stats.submitted, 2, "post-shutdown submit not counted");
        assert_eq!(stats.completed, 2);
        // Shutdown is idempotent.
        pool.shutdown();
    }

    #[test]
    fn concurrent_submitters_all_complete() {
        let pool = Arc::new(GuardPool::new(
            GuardPoolConfig {
                workers: 4,
                max_batch: 16,
                prioritizer: None,
            },
            Arc::new(ParityExecutor::new(Duration::ZERO)),
        ));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let pid = t * 1000 + i;
                    let expect = if pid % 2 == 0 {
                        AuthzOutcome::Allow
                    } else {
                        AuthzOutcome::Deny
                    };
                    let obj = format!("file:/{}", i % 4);
                    assert_eq!(pool.submit(req(pid, "read", &obj)).wait(), expect);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = pool.stats();
        assert_eq!(stats.submitted, 8 * 500);
        assert_eq!(stats.completed, 8 * 500);
    }
}
