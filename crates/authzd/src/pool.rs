//! The guard pool: worker threads pulling from MPMC submission
//! queues, coalescing requests that share a goal into batches, and
//! completing tickets.
//!
//! Coalescing is the point: requests for the same `(op, object)` pair
//! evaluate against the same goal formula, so the executor fetches,
//! instantiates, and normalizes that goal once per *batch* instead of
//! once per *request* (§2.9's guard-cache insight applied across
//! concurrent requests instead of across time). Batches additionally
//! coalesce on the requests' *label shape* — a fingerprint of the
//! submitting process's credential set — so the executor's batch
//! prover sees maximal frontier sharing: every member of a batch
//! shares one (goal, credential-shape) pair and auto-proved requests
//! ride one proof search ([`PoolStats::prover_memo_hits`]).
//!
//! Admission is bounded and authorities are isolated: see the crate
//! docs for the two liveness properties ([`GuardPoolConfig::max_queued`]
//! with [`OverflowPolicy`], and the external lane sized by
//! [`GuardPoolConfig::external_workers`]).

use crate::ticket::{AuthzOutcome, AuthzTicket, TicketInner};
use crate::{AuthzRequest, BatchKey};
use nexus_obs::{Stage, StageTimers};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// How a batch of coalesced requests is evaluated. Implemented by the
/// kernel (the real guard path) and by test doubles.
pub trait BatchExecutor: Send + Sync {
    /// Evaluate a batch sharing one [`BatchKey`]; must return exactly
    /// one outcome per request, in order. The executor owns epoch
    /// fencing: if goals/proofs/labels moved while the batch was in
    /// flight, it must re-evaluate rather than let a stale allow
    /// escape.
    fn execute_batch(&self, key: &BatchKey, reqs: &[AuthzRequest]) -> Vec<AuthzOutcome>;

    /// Cumulative (hits, misses) of the executor's batch-prover memo,
    /// surfaced in [`PoolStats::prover_memo_hits`] /
    /// [`PoolStats::prover_memo_misses`]. Executors without a prover
    /// (test doubles) keep the default `(0, 0)`.
    fn prover_memo_stats(&self) -> (u64, u64) {
        (0, 0)
    }
}

/// Priority for queue ordering: higher runs first. The kernel wires
/// this to per-IPD scheduler weights so heavyweight tenants' batches
/// are picked up before lightweights' when the queue backs up.
pub type Prioritizer = Arc<dyn Fn(&AuthzRequest) -> u64 + Send + Sync>;

/// What happens to a submission that finds its lane's queue at the
/// high-water mark ([`GuardPoolConfig::max_queued`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Resolve the ticket immediately to [`AuthzOutcome::Fault`]. The
    /// kernel's sync path treats the fault as "pipeline unavailable"
    /// and evaluates inline, so overload sheds to the caller's own
    /// thread instead of growing the queue without bound.
    Reject,
    /// Block the submitting thread until a worker drains the lane
    /// below the mark (or the pool shuts down). For async callers
    /// that prefer back-pressure over faults.
    Block,
}

/// Pool configuration.
#[derive(Clone)]
pub struct GuardPoolConfig {
    /// Number of worker threads on the embedded lane.
    pub workers: usize,
    /// Maximum requests coalesced into one batch.
    pub max_batch: usize,
    /// Optional request prioritizer (None = FIFO).
    pub prioritizer: Option<Prioritizer>,
    /// High-water mark per lane: a submission that would leave more
    /// than this many requests queued in its lane triggers the
    /// overflow policy. `usize::MAX` restores unbounded queues.
    pub max_queued: usize,
    /// What to do with a submission past the high-water mark.
    pub overflow: OverflowPolicy,
    /// Workers dedicated to requests classified as external-authority
    /// -touching ([`AuthzRequest::external`]). `0` disables the lane:
    /// external requests then share the embedded queue and a stuck
    /// authority can wedge the whole pool (the pre-back-pressure
    /// behavior, kept reachable for comparison benchmarks).
    pub external_workers: usize,
    /// Per-stage latency timers, shared (same `Arc`) with the kernel
    /// so pool-side spans (submit, queue-wait, batch-assembly,
    /// complete) and kernel-side spans (prove, verify) land in one
    /// set of histograms. `None` — or a disabled timer set — records
    /// nothing.
    pub stage_timers: Option<Arc<StageTimers>>,
}

impl Default for GuardPoolConfig {
    fn default() -> Self {
        GuardPoolConfig {
            workers: 4,
            max_batch: 64,
            prioritizer: None,
            max_queued: 4096,
            overflow: OverflowPolicy::Reject,
            external_workers: 1,
            stage_timers: None,
        }
    }
}

impl std::fmt::Debug for GuardPoolConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GuardPoolConfig")
            .field("workers", &self.workers)
            .field("max_batch", &self.max_batch)
            .field("prioritizer", &self.prioritizer.is_some())
            .field("max_queued", &self.max_queued)
            .field("overflow", &self.overflow)
            .field("external_workers", &self.external_workers)
            .field("stage_timers", &self.stage_timers.is_some())
            .finish()
    }
}

/// Pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests submitted (admitted into a queue).
    pub submitted: u64,
    /// Requests completed (including faults of admitted requests).
    pub completed: u64,
    /// Batches executed.
    pub batches: u64,
    /// Requests that rode along in a batch after the first (i.e. the
    /// per-batch overhead they did *not* pay).
    pub coalesced: u64,
    /// Largest batch observed.
    pub max_batch_seen: u64,
    /// Submissions refused at the high-water mark under
    /// [`OverflowPolicy::Reject`] (resolved to faults, never queued;
    /// not counted in `submitted`).
    pub rejected: u64,
    /// Batches executed on the external-authority lane.
    pub external_batches: u64,
    /// Ticket callbacks that panicked on a worker thread (caught;
    /// the worker survived).
    pub callback_panics: u64,
    /// Batches whose executor panicked (caught; the batch faulted and
    /// the worker survived — an unwinding worker would strand every
    /// ticket queued behind it and wedge the quiesce fence).
    pub executor_panics: u64,
    /// Prover-memo subgoal hits reported by the executor (auto-proved
    /// requests whose derivations were spliced instead of searched).
    pub prover_memo_hits: u64,
    /// Prover-memo subgoal misses reported by the executor.
    pub prover_memo_misses: u64,
    /// Requests currently queued on the embedded lane (a gauge, not a
    /// counter: admitted minus popped at snapshot time).
    pub embedded_depth: u64,
    /// Requests currently queued on the external lane (gauge).
    pub external_depth: u64,
}

struct Pending {
    req: AuthzRequest,
    ticket: Arc<TicketInner>,
    /// Computed once at submit time (outside the queue lock) so the
    /// pop-side scan is a plain integer comparison.
    priority: u64,
    /// When this entry landed in its queue. `Some` only while stage
    /// timers are configured and enabled — the queue-wait span.
    enqueued_at: Option<Instant>,
}

/// Which worker class serves a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lane {
    Embedded,
    External,
}

#[derive(Default)]
struct Queue {
    embedded: VecDeque<Pending>,
    external: VecDeque<Pending>,
    shutdown: bool,
}

impl Queue {
    fn lane(&self, lane: Lane) -> &VecDeque<Pending> {
        match lane {
            Lane::Embedded => &self.embedded,
            Lane::External => &self.external,
        }
    }

    fn lane_mut(&mut self, lane: Lane) -> &mut VecDeque<Pending> {
        match lane {
            Lane::Embedded => &mut self.embedded,
            Lane::External => &mut self.external,
        }
    }
}

/// How many queued entries one `pop_batch` may examine while holding
/// the queue mutex (for both the priority scan and batch assembly).
/// Deep backlogs otherwise turn every pop into an O(backlog) critical
/// section that starves submitters blocked on the same mutex; the cap
/// bounds submit latency at the cost of priority ordering and
/// coalescing being exact only within the window — an admission-order
/// approximation, not a correctness property.
const SCAN_WINDOW: usize = 128;

struct Shared {
    queue: Mutex<Queue>,
    /// Wakes embedded-lane workers on submit/shutdown.
    work: Condvar,
    /// Wakes external-lane workers on submit/shutdown.
    ext_work: Condvar,
    /// Wakes [`OverflowPolicy::Block`] submitters when a lane drains.
    space: Condvar,
    /// Wakes `quiesce` waiters on completion.
    drained: Condvar,
    cfg_max_batch: usize,
    max_queued: usize,
    overflow: OverflowPolicy,
    external_workers: usize,
    prioritizer: Option<Prioritizer>,
    submitted: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
    coalesced: AtomicU64,
    max_batch_seen: AtomicU64,
    rejected: AtomicU64,
    external_batches: AtomicU64,
    callback_panics: AtomicU64,
    executor_panics: AtomicU64,
    /// Per-lane backlog gauges (incremented on push, decremented on
    /// pop/drain, always under the queue lock).
    embedded_depth: AtomicU64,
    external_depth: AtomicU64,
    stage_timers: Option<Arc<StageTimers>>,
    stopping: AtomicBool,
}

impl Shared {
    /// The stage timers, iff configured *and* currently enabled.
    fn timers(&self) -> Option<&StageTimers> {
        self.stage_timers.as_deref().filter(|t| t.enabled())
    }

    fn depth(&self, lane: Lane) -> &AtomicU64 {
        match lane {
            Lane::Embedded => &self.embedded_depth,
            Lane::External => &self.external_depth,
        }
    }

    /// Mark `n` requests finished and wake any quiesce waiters.
    fn note_completed(&self, n: u64) {
        self.completed.fetch_add(n, Ordering::SeqCst);
        // The waiter re-checks counters under the queue lock; taking
        // it here orders the notification after the waiter's check.
        let _guard = self.queue.lock().expect("authzd queue");
        self.drained.notify_all();
    }
}

/// The asynchronous authorization pipeline.
///
/// ```
/// use nexus_authzd::{
///     AuthzOutcome, AuthzRequest, BatchExecutor, BatchKey, GuardPool, GuardPoolConfig,
/// };
/// use nexus_core::{OpName, ResourceId};
/// use std::sync::Arc;
///
/// // The pool is kernel-agnostic: evaluation hides behind a
/// // BatchExecutor. This toy one allows everything.
/// struct AllowAll;
/// impl BatchExecutor for AllowAll {
///     fn execute_batch(&self, _key: &BatchKey, reqs: &[AuthzRequest]) -> Vec<AuthzOutcome> {
///         vec![AuthzOutcome::Allow; reqs.len()]
///     }
/// }
///
/// let pool = GuardPool::new(GuardPoolConfig::default(), Arc::new(AllowAll));
/// let ticket = pool.submit(AuthzRequest {
///     pid: 7,
///     op: OpName::from("read"),
///     object: ResourceId::file("/tmp/x"),
///     proof: None,
///     external: false,
///     label_shape: 0,
///     submitted_at: None,
/// });
/// assert!(ticket.wait().is_allow());
/// pool.shutdown();
/// ```
pub struct GuardPool {
    shared: Arc<Shared>,
    /// Kept for [`BatchExecutor::prover_memo_stats`] polling.
    executor: Arc<dyn BatchExecutor>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl GuardPool {
    /// Spawn `cfg.workers` embedded-lane workers (plus
    /// `cfg.external_workers` external-lane workers) over `executor`.
    pub fn new(cfg: GuardPoolConfig, executor: Arc<dyn BatchExecutor>) -> GuardPool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue::default()),
            work: Condvar::new(),
            ext_work: Condvar::new(),
            space: Condvar::new(),
            drained: Condvar::new(),
            cfg_max_batch: cfg.max_batch.max(1),
            max_queued: cfg.max_queued.max(1),
            overflow: cfg.overflow,
            external_workers: cfg.external_workers,
            prioritizer: cfg.prioritizer.clone(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            max_batch_seen: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            external_batches: AtomicU64::new(0),
            callback_panics: AtomicU64::new(0),
            executor_panics: AtomicU64::new(0),
            embedded_depth: AtomicU64::new(0),
            external_depth: AtomicU64::new(0),
            stage_timers: cfg.stage_timers.clone(),
            stopping: AtomicBool::new(false),
        });
        let spawn = |lane: Lane, i: usize| {
            let shared = Arc::clone(&shared);
            let executor = Arc::clone(&executor);
            let prefix = match lane {
                Lane::Embedded => "authzd-worker",
                Lane::External => "authzd-ext",
            };
            std::thread::Builder::new()
                .name(format!("{prefix}-{i}"))
                .spawn(move || worker_loop(shared, executor, lane))
                .expect("spawn authzd worker")
        };
        let workers = (0..cfg.workers.max(1))
            .map(|i| spawn(Lane::Embedded, i))
            .chain((0..cfg.external_workers).map(|i| spawn(Lane::External, i)))
            .collect();
        GuardPool {
            shared,
            executor,
            workers: Mutex::new(workers),
        }
    }

    /// Submit a request; returns immediately with its ticket. After
    /// shutdown the ticket resolves to a fault.
    pub fn submit(&self, req: AuthzRequest) -> AuthzTicket {
        self.try_submit(req).unwrap_or_else(|| {
            AuthzTicket::ready(AuthzOutcome::Fault("authzd pool is shut down".into()))
        })
    }

    /// Submit a request unless the pool is shut down (`None`), so the
    /// caller can evaluate it some other way — the kernel falls back
    /// to the inline guard path. The priority (if a prioritizer is
    /// configured) is computed here, on the submitting thread, before
    /// the queue lock is taken — workers never run caller code while
    /// holding the queue mutex.
    ///
    /// Admission is bounded: a submission that finds its lane at the
    /// high-water mark is rejected (ticket already resolved to
    /// [`AuthzOutcome::Fault`]) or blocks until space frees, per
    /// [`GuardPoolConfig::overflow`]. External-classified requests go
    /// to the external lane when one is configured.
    pub fn try_submit(&self, req: AuthzRequest) -> Option<AuthzTicket> {
        let shared = &self.shared;
        let lane = if req.external && shared.external_workers > 0 {
            Lane::External
        } else {
            Lane::Embedded
        };
        let priority = match &shared.prioritizer {
            Some(pri) => pri(&req),
            None => 0,
        };
        let mut queue = shared.queue.lock().expect("authzd queue");
        if queue.shutdown {
            return None;
        }
        while queue.lane(lane).len() >= shared.max_queued {
            match shared.overflow {
                OverflowPolicy::Reject => {
                    shared.rejected.fetch_add(1, Ordering::SeqCst);
                    return Some(AuthzTicket::ready(AuthzOutcome::Fault(format!(
                        "authzd {} queue at high-water mark ({})",
                        match lane {
                            Lane::Embedded => "embedded",
                            Lane::External => "external",
                        },
                        shared.max_queued
                    ))));
                }
                OverflowPolicy::Block => {
                    queue = shared.space.wait(queue).expect("authzd space wait");
                    if queue.shutdown {
                        return None;
                    }
                }
            }
        }
        let inner = TicketInner::new();
        let ticket = AuthzTicket::from_inner(Arc::clone(&inner));
        shared.submitted.fetch_add(1, Ordering::SeqCst);
        let submitted_at = req.submitted_at;
        let enqueued_at = shared.timers().map(|_| Instant::now());
        queue.lane_mut(lane).push_back(Pending {
            req,
            ticket: inner,
            priority,
            enqueued_at,
        });
        shared.depth(lane).fetch_add(1, Ordering::Relaxed);
        drop(queue);
        // Submit span: submitter's stamp → admitted into the queue.
        if let (Some(timers), Some(now), Some(at)) = (shared.timers(), enqueued_at, submitted_at) {
            timers.record_duration(Stage::Submit, now.saturating_duration_since(at));
        }
        match lane {
            Lane::Embedded => shared.work.notify_one(),
            Lane::External => shared.ext_work.notify_one(),
        }
        Some(ticket)
    }

    /// Wait until every request submitted before this call has
    /// completed — on *both* lanes (the counters are pool-global, so
    /// a fence covers in-flight external batches too). This is the
    /// invalidation fence: `setgoal` calls it after bumping the goal
    /// epoch so that any batch evaluated under the old goal has
    /// re-validated (and, if stale, re-evaluated) before the syscall
    /// returns. Rejected submissions were never admitted and are not
    /// waited for.
    pub fn quiesce(&self) {
        let target = self.shared.submitted.load(Ordering::SeqCst);
        let mut queue = self.shared.queue.lock().expect("authzd queue");
        while self.shared.completed.load(Ordering::SeqCst) < target {
            queue = self.shared.drained.wait(queue).expect("authzd quiesce");
        }
        drop(queue);
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> PoolStats {
        let (prover_memo_hits, prover_memo_misses) = self.executor.prover_memo_stats();
        PoolStats {
            prover_memo_hits,
            prover_memo_misses,
            submitted: self.shared.submitted.load(Ordering::SeqCst),
            completed: self.shared.completed.load(Ordering::SeqCst),
            batches: self.shared.batches.load(Ordering::SeqCst),
            coalesced: self.shared.coalesced.load(Ordering::SeqCst),
            max_batch_seen: self.shared.max_batch_seen.load(Ordering::SeqCst),
            rejected: self.shared.rejected.load(Ordering::SeqCst),
            external_batches: self.shared.external_batches.load(Ordering::SeqCst),
            callback_panics: self.shared.callback_panics.load(Ordering::SeqCst),
            executor_panics: self.shared.executor_panics.load(Ordering::SeqCst),
            embedded_depth: self.shared.embedded_depth.load(Ordering::Relaxed),
            external_depth: self.shared.external_depth.load(Ordering::Relaxed),
        }
    }

    /// Stop accepting work, fault out everything still queued on both
    /// lanes, release blocked submitters, and join the workers.
    /// Idempotent.
    pub fn shutdown(&self) {
        let leftovers: Vec<Pending> = {
            let mut queue = self.shared.queue.lock().expect("authzd queue");
            queue.shutdown = true;
            self.shared.stopping.store(true, Ordering::SeqCst);
            self.shared
                .embedded_depth
                .fetch_sub(queue.embedded.len() as u64, Ordering::Relaxed);
            self.shared
                .external_depth
                .fetch_sub(queue.external.len() as u64, Ordering::Relaxed);
            let mut drained: Vec<Pending> = queue.embedded.drain(..).collect();
            drained.extend(queue.external.drain(..));
            drained
        };
        self.shared.work.notify_all();
        self.shared.ext_work.notify_all();
        self.shared.space.notify_all();
        let n = leftovers.len() as u64;
        let mut panics = 0u64;
        for p in leftovers {
            panics += p
                .ticket
                .complete(AuthzOutcome::Fault("authzd pool shut down".into()));
        }
        if panics > 0 {
            self.shared
                .callback_panics
                .fetch_add(panics, Ordering::SeqCst);
        }
        if n > 0 {
            self.shared.note_completed(n);
        }
        let handles: Vec<JoinHandle<()>> = self
            .workers
            .lock()
            .expect("authzd workers")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for GuardPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Pop the next batch from `lane`: pick the highest-priority entry
/// within the scan window (FIFO when no prioritizer), then drain
/// queued requests sharing its key, up to `max_batch`, examining at
/// most [`SCAN_WINDOW`] entries while the queue mutex is held.
/// Returns `None` on shutdown.
fn pop_batch(shared: &Shared, lane: Lane) -> Option<(BatchKey, Vec<Pending>)> {
    let mut queue = shared.queue.lock().expect("authzd queue");
    loop {
        if shared.stopping.load(Ordering::SeqCst) || queue.shutdown {
            return None;
        }
        if queue.lane(lane).is_empty() {
            let cv = match lane {
                Lane::Embedded => &shared.work,
                Lane::External => &shared.ext_work,
            };
            queue = cv.wait(queue).expect("authzd worker wait");
            continue;
        }
        let assembly_start = shared.timers().map(|_| Instant::now());
        let entries = queue.lane_mut(lane);
        let window = entries.len().min(SCAN_WINDOW);
        let lead_idx = if shared.prioritizer.is_none() {
            0
        } else {
            // Priorities were computed at submit time: this scan is a
            // plain integer max over the window. Highest priority
            // wins; FIFO among equals (the *earlier* index wins,
            // hence the reversed index comparison).
            entries
                .iter()
                .take(window)
                .enumerate()
                .max_by(|(ia, a), (ib, b)| a.priority.cmp(&b.priority).then(ib.cmp(ia)))
                .map(|(i, _)| i)
                .unwrap_or(0)
        };
        let lead = entries.remove(lead_idx).expect("index in bounds");
        let key = lead.req.key();
        let mut batch = vec![lead];
        let mut i = 0;
        // Assembly budget: every examined entry (matched or not)
        // spends one unit, so the critical section stays O(window)
        // even against a deep backlog of same-key requests.
        let mut budget = SCAN_WINDOW;
        while i < entries.len() && budget > 0 && batch.len() < shared.cfg_max_batch {
            budget -= 1;
            // Compare by reference — no per-entry key clones while the
            // queue mutex is held.
            let entry = &entries[i].req;
            if entry.op == key.op
                && entry.object == key.object
                && entry.label_shape == key.label_shape
            {
                batch.push(entries.remove(i).expect("index in bounds"));
            } else {
                i += 1;
            }
        }
        shared
            .depth(lane)
            .fetch_sub(batch.len() as u64, Ordering::Relaxed);
        drop(queue);
        // The lane just lost at least one entry: admit any submitter
        // blocked at the high-water mark.
        if shared.overflow == OverflowPolicy::Block {
            shared.space.notify_all();
        }
        // Queue-wait per member (enqueue → this pop), plus one
        // batch-assembly span for the whole scan.
        if let (Some(timers), Some(start)) = (shared.timers(), assembly_start) {
            for p in &batch {
                if let Some(at) = p.enqueued_at {
                    timers.record_duration(Stage::QueueWait, start.saturating_duration_since(at));
                }
            }
            let done = Instant::now();
            timers.record_duration(Stage::BatchAssembly, done.saturating_duration_since(start));
        }
        return Some((key, batch));
    }
}

fn worker_loop(shared: Arc<Shared>, executor: Arc<dyn BatchExecutor>, lane: Lane) {
    while let Some((key, batch)) = pop_batch(&shared, lane) {
        // Move the owned requests out — the executor borrows them, no
        // proof-tree clones on the worker hot path.
        let (reqs, tickets): (Vec<AuthzRequest>, Vec<Arc<TicketInner>>) =
            batch.into_iter().map(|p| (p.req, p.ticket)).unzip();
        // A panicking executor must not unwind through (and kill)
        // this worker: the batch faults instead — the kernel's sync
        // path falls back inline on a fault — and the tickets queued
        // behind it keep draining. AssertUnwindSafe: the executor is
        // behind an Arc and owns its own synchronization; the batch's
        // tickets are completed below either way.
        let outcomes = catch_unwind(AssertUnwindSafe(|| executor.execute_batch(&key, &reqs)))
            .unwrap_or_else(|_| {
                shared.executor_panics.fetch_add(1, Ordering::SeqCst);
                vec![AuthzOutcome::Fault("authz batch executor panicked".into()); reqs.len()]
            });
        debug_assert_eq!(outcomes.len(), reqs.len(), "executor contract");
        shared.batches.fetch_add(1, Ordering::SeqCst);
        if lane == Lane::External {
            shared.external_batches.fetch_add(1, Ordering::SeqCst);
        }
        shared
            .coalesced
            .fetch_add(reqs.len().saturating_sub(1) as u64, Ordering::SeqCst);
        shared
            .max_batch_seen
            .fetch_max(reqs.len() as u64, Ordering::SeqCst);
        let n = tickets.len() as u64;
        let mut outcomes = outcomes.into_iter();
        let mut panics = 0u64;
        for (i, ticket) in tickets.into_iter().enumerate() {
            let outcome = outcomes
                .next()
                .unwrap_or_else(|| AuthzOutcome::Fault("executor returned short batch".into()));
            // A panicking user callback is caught inside `complete`;
            // this worker must survive it (with workers == 1 an
            // unwind here would wedge the whole pipeline).
            panics += ticket.complete(outcome);
            // End-to-end span: submitter's stamp → verdict delivered.
            if let (Some(timers), Some(at)) = (shared.timers(), reqs[i].submitted_at) {
                let span = Instant::now().saturating_duration_since(at);
                timers.record_duration(Stage::Complete, span);
            }
        }
        if panics > 0 {
            shared.callback_panics.fetch_add(panics, Ordering::SeqCst);
        }
        shared.note_completed(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nexus_core::{OpName, ResourceId};
    use std::sync::atomic::AtomicUsize;
    use std::time::{Duration, Instant};

    fn req(pid: u64, op: &str, obj: &str) -> AuthzRequest {
        AuthzRequest {
            pid,
            op: OpName::from(op),
            object: ResourceId(obj.to_string()),
            proof: None,
            external: false,
            label_shape: 0,
            submitted_at: None,
        }
    }

    fn ext_req(pid: u64, op: &str, obj: &str) -> AuthzRequest {
        AuthzRequest {
            external: true,
            ..req(pid, op, obj)
        }
    }

    /// Allows even pids, denies odd; records batch sizes.
    struct ParityExecutor {
        batches: Mutex<Vec<usize>>,
        delay: Duration,
    }

    impl ParityExecutor {
        fn new(delay: Duration) -> Self {
            ParityExecutor {
                batches: Mutex::new(Vec::new()),
                delay,
            }
        }
    }

    impl BatchExecutor for ParityExecutor {
        fn execute_batch(&self, _key: &BatchKey, reqs: &[AuthzRequest]) -> Vec<AuthzOutcome> {
            if !self.delay.is_zero() {
                std::thread::sleep(self.delay);
            }
            self.batches.lock().unwrap().push(reqs.len());
            reqs.iter()
                .map(|r| {
                    if r.pid % 2 == 0 {
                        AuthzOutcome::Allow
                    } else {
                        AuthzOutcome::Deny
                    }
                })
                .collect()
        }
    }

    /// Holds every batch at a gate until released; allows everything.
    struct GateExecutor {
        gate: Arc<AtomicBool>,
        entered: AtomicUsize,
    }

    impl GateExecutor {
        fn new() -> Arc<Self> {
            Arc::new(GateExecutor {
                gate: Arc::new(AtomicBool::new(false)),
                entered: AtomicUsize::new(0),
            })
        }

        fn release(&self) {
            self.gate.store(true, Ordering::SeqCst);
        }

        /// Spin until `n` batches have reached the gate.
        fn await_entered(&self, n: usize) {
            let deadline = Instant::now() + Duration::from_secs(10);
            while self.entered.load(Ordering::SeqCst) < n {
                assert!(Instant::now() < deadline, "executor never entered");
                std::thread::yield_now();
            }
        }
    }

    impl BatchExecutor for GateExecutor {
        fn execute_batch(&self, _key: &BatchKey, reqs: &[AuthzRequest]) -> Vec<AuthzOutcome> {
            self.entered.fetch_add(1, Ordering::SeqCst);
            while !self.gate.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
            vec![AuthzOutcome::Allow; reqs.len()]
        }
    }

    /// Like [`GateExecutor`], but only external-classified batches
    /// block; embedded batches pass straight through.
    struct ExternalGateExecutor {
        inner: Arc<GateExecutor>,
    }

    impl BatchExecutor for ExternalGateExecutor {
        fn execute_batch(&self, key: &BatchKey, reqs: &[AuthzRequest]) -> Vec<AuthzOutcome> {
            if reqs.iter().any(|r| r.external) {
                self.inner.execute_batch(key, reqs)
            } else {
                vec![AuthzOutcome::Allow; reqs.len()]
            }
        }
    }

    #[test]
    fn submit_wait_roundtrip() {
        let pool = GuardPool::new(
            GuardPoolConfig::default(),
            Arc::new(ParityExecutor::new(Duration::ZERO)),
        );
        assert_eq!(
            pool.submit(req(2, "read", "file:/a")).wait(),
            AuthzOutcome::Allow
        );
        assert_eq!(
            pool.submit(req(3, "read", "file:/a")).wait(),
            AuthzOutcome::Deny
        );
    }

    #[test]
    fn poll_and_callback_paths() {
        let pool = GuardPool::new(
            GuardPoolConfig::default(),
            Arc::new(ParityExecutor::new(Duration::from_millis(20))),
        );
        let t = pool.submit(req(4, "read", "file:/a"));
        // Likely still pending thanks to the executor delay; either
        // way, poll must never return a wrong verdict.
        if let Some(o) = t.try_outcome() {
            assert_eq!(o, AuthzOutcome::Allow);
        }
        let fired = Arc::new(AtomicUsize::new(0));
        let fired2 = Arc::clone(&fired);
        t.on_complete(move |o| {
            assert!(o.is_allow());
            fired2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(t.wait(), AuthzOutcome::Allow);
        // Callback attached after completion runs immediately.
        let fired3 = Arc::clone(&fired);
        t.on_complete(move |_| {
            fired3.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(fired.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn wait_timeout_observes_pending_then_done() {
        let pool = GuardPool::new(
            GuardPoolConfig {
                workers: 1,
                ..Default::default()
            },
            Arc::new(ParityExecutor::new(Duration::from_millis(50))),
        );
        let t = pool.submit(req(2, "read", "file:/a"));
        // Immediately after submit the worker is still sleeping.
        assert_eq!(t.wait_timeout(Duration::from_millis(1)), None);
        assert_eq!(
            t.wait_timeout(Duration::from_secs(10)),
            Some(AuthzOutcome::Allow)
        );
    }

    #[test]
    fn same_key_requests_coalesce() {
        // One worker, slow executor: while the first batch runs, the
        // rest of the submissions pile up and must coalesce.
        let exec = Arc::new(ParityExecutor::new(Duration::from_millis(10)));
        let pool = GuardPool::new(
            GuardPoolConfig {
                workers: 1,
                max_batch: 64,
                ..Default::default()
            },
            Arc::clone(&exec) as Arc<dyn BatchExecutor>,
        );
        let tickets: Vec<AuthzTicket> = (0..20)
            .map(|pid| pool.submit(req(pid, "read", "file:/hot")))
            .collect();
        for (pid, t) in tickets.iter().enumerate() {
            let expect = if pid % 2 == 0 {
                AuthzOutcome::Allow
            } else {
                AuthzOutcome::Deny
            };
            assert_eq!(t.wait(), expect, "pid {pid}");
        }
        // Counters are bumped just after tickets resolve: settle first.
        pool.quiesce();
        let stats = pool.stats();
        assert_eq!(stats.completed, 20);
        assert!(
            stats.batches < 20,
            "20 same-key requests through 1 slow worker must coalesce, got {} batches",
            stats.batches
        );
        assert!(stats.max_batch_seen >= 2);
        assert_eq!(stats.coalesced, 20 - stats.batches);
    }

    #[test]
    fn distinct_label_shapes_do_not_coalesce() {
        // Same (op, object) but different credential shapes: the batch
        // prover could not share a frontier across them, so they must
        // land in separate batches.
        let exec = Arc::new(ParityExecutor::new(Duration::from_millis(5)));
        let pool = GuardPool::new(
            GuardPoolConfig {
                workers: 1,
                max_batch: 64,
                ..Default::default()
            },
            Arc::clone(&exec) as Arc<dyn BatchExecutor>,
        );
        let tickets: Vec<AuthzTicket> = (0..8)
            .map(|pid| {
                pool.submit(AuthzRequest {
                    label_shape: pid % 2,
                    ..req(pid, "read", "file:/hot")
                })
            })
            .collect();
        for t in &tickets {
            let _ = t.wait();
        }
        pool.quiesce();
        let stats = pool.stats();
        assert!(
            stats.batches >= 2,
            "two shapes cannot share one batch: {stats:?}"
        );
        // And the default executor reports no prover memo activity.
        assert_eq!(stats.prover_memo_hits, 0);
        assert_eq!(stats.prover_memo_misses, 0);
    }

    #[test]
    fn executor_prover_stats_surface_in_pool_stats() {
        struct CountingExecutor;
        impl BatchExecutor for CountingExecutor {
            fn execute_batch(&self, _k: &BatchKey, reqs: &[AuthzRequest]) -> Vec<AuthzOutcome> {
                vec![AuthzOutcome::Allow; reqs.len()]
            }
            fn prover_memo_stats(&self) -> (u64, u64) {
                (42, 7)
            }
        }
        let pool = GuardPool::new(GuardPoolConfig::default(), Arc::new(CountingExecutor));
        assert_eq!(
            pool.submit(req(0, "read", "file:/a")).wait(),
            AuthzOutcome::Allow
        );
        let stats = pool.stats();
        assert_eq!(stats.prover_memo_hits, 42);
        assert_eq!(stats.prover_memo_misses, 7);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let exec = Arc::new(ParityExecutor::new(Duration::from_millis(5)));
        let pool = GuardPool::new(
            GuardPoolConfig {
                workers: 1,
                max_batch: 64,
                ..Default::default()
            },
            Arc::clone(&exec) as Arc<dyn BatchExecutor>,
        );
        let tickets: Vec<AuthzTicket> = (0..8)
            .map(|pid| pool.submit(req(pid, "read", &format!("file:/{pid}"))))
            .collect();
        for t in &tickets {
            let _ = t.wait();
        }
        let sizes = exec.batches.lock().unwrap().clone();
        assert!(sizes.iter().all(|&s| s == 1), "sizes: {sizes:?}");
    }

    #[test]
    fn max_batch_caps_coalescing() {
        let exec = Arc::new(ParityExecutor::new(Duration::from_millis(10)));
        let pool = GuardPool::new(
            GuardPoolConfig {
                workers: 1,
                max_batch: 4,
                ..Default::default()
            },
            Arc::clone(&exec) as Arc<dyn BatchExecutor>,
        );
        let tickets: Vec<AuthzTicket> = (0..16)
            .map(|pid| pool.submit(req(pid, "read", "file:/hot")))
            .collect();
        for t in &tickets {
            let _ = t.wait();
        }
        let sizes = exec.batches.lock().unwrap().clone();
        assert!(sizes.iter().all(|&s| s <= 4), "sizes: {sizes:?}");
    }

    #[test]
    fn per_key_fifo_order_is_preserved() {
        // Order within a key must be submission order even under
        // coalescing: the executor sees pids in ascending order.
        struct OrderCheck {
            seen: Mutex<Vec<u64>>,
        }
        impl BatchExecutor for OrderCheck {
            fn execute_batch(&self, _k: &BatchKey, reqs: &[AuthzRequest]) -> Vec<AuthzOutcome> {
                std::thread::sleep(Duration::from_millis(5));
                let mut seen = self.seen.lock().unwrap();
                for r in reqs {
                    seen.push(r.pid);
                }
                vec![AuthzOutcome::Allow; reqs.len()]
            }
        }
        let exec = Arc::new(OrderCheck {
            seen: Mutex::new(Vec::new()),
        });
        let pool = GuardPool::new(
            GuardPoolConfig {
                workers: 1,
                max_batch: 64,
                ..Default::default()
            },
            Arc::clone(&exec) as Arc<dyn BatchExecutor>,
        );
        let tickets: Vec<AuthzTicket> = (0..32)
            .map(|pid| pool.submit(req(pid, "read", "file:/hot")))
            .collect();
        for t in &tickets {
            let _ = t.wait();
        }
        let seen = exec.seen.lock().unwrap().clone();
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(seen, sorted, "per-key order must be FIFO: {seen:?}");
    }

    #[test]
    fn prioritizer_orders_backlog() {
        // One worker, pinned by a slow first batch; the backlog then
        // drains highest-priority-first (priority = pid here).
        struct Recorder {
            seen: Mutex<Vec<u64>>,
        }
        impl BatchExecutor for Recorder {
            fn execute_batch(&self, _k: &BatchKey, reqs: &[AuthzRequest]) -> Vec<AuthzOutcome> {
                std::thread::sleep(Duration::from_millis(15));
                self.seen.lock().unwrap().extend(reqs.iter().map(|r| r.pid));
                vec![AuthzOutcome::Allow; reqs.len()]
            }
        }
        let exec = Arc::new(Recorder {
            seen: Mutex::new(Vec::new()),
        });
        let pool = GuardPool::new(
            GuardPoolConfig {
                workers: 1,
                max_batch: 1,
                prioritizer: Some(Arc::new(|r: &AuthzRequest| r.pid)),
                ..Default::default()
            },
            Arc::clone(&exec) as Arc<dyn BatchExecutor>,
        );
        // Distinct keys so nothing coalesces; the plug request keeps
        // the worker busy while the rest queue up.
        let plug = pool.submit(req(0, "read", "file:/plug"));
        std::thread::sleep(Duration::from_millis(5));
        let tickets: Vec<AuthzTicket> = (1..=4)
            .map(|pid| pool.submit(req(pid, "read", &format!("file:/{pid}"))))
            .collect();
        let _ = plug.wait();
        for t in &tickets {
            let _ = t.wait();
        }
        let seen = exec.seen.lock().unwrap().clone();
        assert_eq!(seen[0], 0, "plug ran first");
        assert_eq!(&seen[1..], &[4, 3, 2, 1], "backlog must drain by priority");

        // Submit latency must stay bounded under a *deep* backlog:
        // pop_batch's scans are capped at SCAN_WINDOW, so a pop's
        // critical section — and therefore a submitter's wait on the
        // queue mutex — cannot grow with queue depth. Plug the worker
        // again, pile up a deep same-key backlog (the worst case for
        // the assembly scan), and time fresh submissions racing the
        // worker's pops.
        let plug2 = pool.submit(req(0, "read", "file:/plug2"));
        let _ = plug2;
        for i in 0..10_000u64 {
            let _ = pool.submit(req(i, "read", "file:/deep"));
        }
        let start = Instant::now();
        for i in 0..500u64 {
            let _ = pool.submit(req(i, "probe", &format!("file:/probe{i}")));
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(500),
            "500 submits under a 10k backlog took {elapsed:?} — pop_batch is starving submitters"
        );
        // Shutdown faults the backlog (we only asserted latency).
        pool.shutdown();
    }

    #[test]
    fn quiesce_waits_for_in_flight_work() {
        let pool = GuardPool::new(
            GuardPoolConfig {
                workers: 2,
                ..Default::default()
            },
            Arc::new(ParityExecutor::new(Duration::from_millis(10))),
        );
        let tickets: Vec<AuthzTicket> = (0..8)
            .map(|pid| pool.submit(req(pid, "read", &format!("file:/{pid}"))))
            .collect();
        pool.quiesce();
        for t in &tickets {
            assert!(
                t.try_outcome().is_some(),
                "quiesce returned with work in flight"
            );
        }
    }

    #[test]
    fn shutdown_faults_queued_requests_and_rejects_new_ones() {
        let pool = GuardPool::new(
            GuardPoolConfig {
                workers: 1,
                max_batch: 1,
                ..Default::default()
            },
            Arc::new(ParityExecutor::new(Duration::from_millis(30))),
        );
        let running = pool.submit(req(0, "read", "file:/a"));
        std::thread::sleep(Duration::from_millis(5));
        let queued = pool.submit(req(2, "read", "file:/b"));
        pool.shutdown();
        // The in-flight one finished; the queued one faulted.
        assert_eq!(running.wait(), AuthzOutcome::Allow);
        assert!(matches!(queued.wait(), AuthzOutcome::Fault(_)));
        // New submissions fault immediately.
        assert!(matches!(
            pool.submit(req(4, "read", "file:/c")).wait(),
            AuthzOutcome::Fault(_)
        ));
        let stats = pool.stats();
        assert_eq!(stats.submitted, 2, "post-shutdown submit not counted");
        assert_eq!(stats.completed, 2);
        // Shutdown is idempotent.
        pool.shutdown();
    }

    #[test]
    fn concurrent_submitters_all_complete() {
        let pool = Arc::new(GuardPool::new(
            GuardPoolConfig {
                workers: 4,
                max_batch: 16,
                ..Default::default()
            },
            Arc::new(ParityExecutor::new(Duration::ZERO)),
        ));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let pid = t * 1000 + i;
                    let expect = if pid % 2 == 0 {
                        AuthzOutcome::Allow
                    } else {
                        AuthzOutcome::Deny
                    };
                    let obj = format!("file:/{}", i % 4);
                    assert_eq!(pool.submit(req(pid, "read", &obj)).wait(), expect);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // `wait` returns when the ticket resolves, which happens just
        // *before* the worker bumps the completion counter (the order
        // the quiesce fence needs); settle before comparing counters.
        pool.quiesce();
        let stats = pool.stats();
        assert_eq!(stats.submitted, 8 * 500);
        assert_eq!(stats.completed, 8 * 500);
    }

    #[test]
    fn panicking_callback_does_not_kill_the_worker() {
        // Regression: a panicking on_complete used to unwind through
        // worker_loop; with workers == 1 that deadlocked the pool.
        let exec = GateExecutor::new();
        let pool = GuardPool::new(
            GuardPoolConfig {
                workers: 1,
                external_workers: 0,
                ..Default::default()
            },
            Arc::clone(&exec) as Arc<dyn BatchExecutor>,
        );
        let t = pool.submit(req(2, "read", "file:/a"));
        exec.await_entered(1); // the batch is held at the gate...
        t.on_complete(|_| panic!("user callback exploding on the worker thread"));
        exec.release(); // ...so the callback is guaranteed to run on the worker.
        assert_eq!(t.wait(), AuthzOutcome::Allow);
        // The sole worker survived: subsequent work still completes.
        assert_eq!(
            pool.submit(req(4, "read", "file:/b")).wait(),
            AuthzOutcome::Allow
        );
        assert_eq!(pool.stats().callback_panics, 1);
    }

    #[test]
    fn panicking_executor_faults_the_batch_and_spares_the_worker() {
        // Same bug class one layer down: an executor panic (e.g. a
        // poisoned lock inside guard evaluation) must not kill the
        // worker — the batch faults and the lane keeps draining.
        struct Grenade;
        impl BatchExecutor for Grenade {
            fn execute_batch(&self, _k: &BatchKey, reqs: &[AuthzRequest]) -> Vec<AuthzOutcome> {
                if reqs.iter().any(|r| r.pid == 13) {
                    panic!("executor exploding mid-batch");
                }
                vec![AuthzOutcome::Allow; reqs.len()]
            }
        }
        let pool = GuardPool::new(
            GuardPoolConfig {
                workers: 1,
                max_batch: 1,
                external_workers: 0,
                ..Default::default()
            },
            Arc::new(Grenade),
        );
        assert!(matches!(
            pool.submit(req(13, "read", "file:/boom")).wait(),
            AuthzOutcome::Fault(_)
        ));
        // The sole worker survived and the quiesce fence still works.
        assert_eq!(
            pool.submit(req(2, "read", "file:/ok")).wait(),
            AuthzOutcome::Allow
        );
        pool.quiesce();
        let stats = pool.stats();
        assert_eq!(stats.executor_panics, 1);
        assert_eq!(stats.submitted, stats.completed);
    }

    #[test]
    fn ready_tickets_serve_all_accessors() {
        // The allocation-free resolved representation must behave
        // exactly like a completed shared ticket.
        let t = AuthzTicket::ready(AuthzOutcome::Allow);
        assert_eq!(t.try_outcome(), Some(AuthzOutcome::Allow));
        assert_eq!(t.wait(), AuthzOutcome::Allow);
        assert_eq!(t.wait_timeout(Duration::ZERO), Some(AuthzOutcome::Allow));
        let fired = Arc::new(AtomicUsize::new(0));
        let fired2 = Arc::clone(&fired);
        t.on_complete(move |o| {
            assert!(o.is_allow());
            fired2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        let clone = t.clone();
        assert_eq!(clone.wait(), AuthzOutcome::Allow);
    }

    #[test]
    fn reject_policy_faults_at_high_water() {
        let exec = GateExecutor::new();
        let pool = GuardPool::new(
            GuardPoolConfig {
                workers: 1,
                max_batch: 1,
                max_queued: 2,
                overflow: OverflowPolicy::Reject,
                external_workers: 0,
                ..Default::default()
            },
            Arc::clone(&exec) as Arc<dyn BatchExecutor>,
        );
        let in_flight = pool.submit(req(0, "read", "file:/0"));
        exec.await_entered(1); // worker occupied, queue empty
        let q1 = pool.submit(req(2, "read", "file:/1"));
        let q2 = pool.submit(req(4, "read", "file:/2"));
        // Queue is now at the mark: the next submission faults
        // immediately instead of growing the backlog.
        let over = pool.submit(req(6, "read", "file:/3"));
        assert!(
            matches!(over.try_outcome(), Some(AuthzOutcome::Fault(_))),
            "over-high-water submission must fault without waiting"
        );
        assert_eq!(pool.stats().rejected, 1);
        exec.release();
        assert_eq!(in_flight.wait(), AuthzOutcome::Allow);
        assert_eq!(q1.wait(), AuthzOutcome::Allow);
        assert_eq!(q2.wait(), AuthzOutcome::Allow);
        // Rejected requests are not admitted, so quiesce does not
        // wait for them and the counters reconcile.
        pool.quiesce();
        let stats = pool.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 3);
    }

    #[test]
    fn block_policy_holds_submitter_until_space_frees() {
        let exec = GateExecutor::new();
        let pool = Arc::new(GuardPool::new(
            GuardPoolConfig {
                workers: 1,
                max_batch: 1,
                max_queued: 1,
                overflow: OverflowPolicy::Block,
                external_workers: 0,
                ..Default::default()
            },
            Arc::clone(&exec) as Arc<dyn BatchExecutor>,
        ));
        let in_flight = pool.submit(req(0, "read", "file:/0"));
        exec.await_entered(1);
        let queued = pool.submit(req(2, "read", "file:/1")); // lane now full
        let blocked_done = Arc::new(AtomicBool::new(false));
        let submitter = {
            let pool = Arc::clone(&pool);
            let done = Arc::clone(&blocked_done);
            std::thread::spawn(move || {
                let t = pool.submit(req(4, "read", "file:/2"));
                done.store(true, Ordering::SeqCst);
                t.wait()
            })
        };
        // The submitter must be parked on the space condvar, not
        // faulted and not admitted.
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            !blocked_done.load(Ordering::SeqCst),
            "Block-policy submitter returned while the lane was full"
        );
        assert_eq!(pool.stats().rejected, 0);
        exec.release();
        assert_eq!(submitter.join().unwrap(), AuthzOutcome::Allow);
        assert_eq!(in_flight.wait(), AuthzOutcome::Allow);
        assert_eq!(queued.wait(), AuthzOutcome::Allow);
    }

    #[test]
    fn blocked_submitter_released_by_shutdown() {
        let exec = GateExecutor::new();
        let pool = Arc::new(GuardPool::new(
            GuardPoolConfig {
                workers: 1,
                max_batch: 1,
                max_queued: 1,
                overflow: OverflowPolicy::Block,
                external_workers: 0,
                ..Default::default()
            },
            Arc::clone(&exec) as Arc<dyn BatchExecutor>,
        ));
        let _in_flight = pool.submit(req(0, "read", "file:/0"));
        exec.await_entered(1);
        let _queued = pool.submit(req(2, "read", "file:/1"));
        let submitter = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.submit(req(4, "read", "file:/2")).wait())
        };
        std::thread::sleep(Duration::from_millis(30));
        exec.release(); // shutdown joins workers; don't leave them gated
        pool.shutdown();
        // The blocked submitter observed the shutdown and faulted
        // rather than hanging forever.
        assert!(matches!(submitter.join().unwrap(), AuthzOutcome::Fault(_)));
    }

    #[test]
    fn stuck_external_batch_leaves_embedded_lane_flowing() {
        // One stuck external authority may occupy at most the
        // external workers: embedded traffic must keep completing
        // while the external lane is wedged, and external overflow
        // must fault instead of backing up forever.
        let gate = GateExecutor::new();
        let exec = Arc::new(ExternalGateExecutor {
            inner: Arc::clone(&gate),
        });
        let pool = GuardPool::new(
            GuardPoolConfig {
                workers: 2,
                max_batch: 1,
                max_queued: 2,
                overflow: OverflowPolicy::Reject,
                external_workers: 1,
                ..Default::default()
            },
            exec as Arc<dyn BatchExecutor>,
        );
        let stuck = pool.submit(ext_req(0, "poke", "svc:/stale"));
        gate.await_entered(1); // the external worker is now wedged
        let ext_queued: Vec<AuthzTicket> = (1..=2)
            .map(|i| pool.submit(ext_req(i * 2, "poke", &format!("svc:/s{i}"))))
            .collect();
        // External lane at its mark: further external work faults...
        let overflow = pool.submit(ext_req(8, "poke", "svc:/s3"));
        assert!(matches!(
            overflow.try_outcome(),
            Some(AuthzOutcome::Fault(_))
        ));
        // ...while embedded traffic flows freely the whole time.
        for pid in 0..20u64 {
            assert_eq!(
                pool.submit(req(pid * 2, "read", &format!("file:/{pid}")))
                    .wait(),
                AuthzOutcome::Allow,
                "embedded request starved by a stuck external authority"
            );
        }
        gate.release();
        assert_eq!(stuck.wait(), AuthzOutcome::Allow);
        for t in &ext_queued {
            assert_eq!(t.wait(), AuthzOutcome::Allow);
        }
        let stats = pool.stats();
        assert!(stats.external_batches >= 1, "{stats:?}");
        assert_eq!(stats.rejected, 1);
    }

    #[test]
    fn depth_gauges_track_per_lane_backlog() {
        let exec = GateExecutor::new();
        let pool = GuardPool::new(
            GuardPoolConfig {
                workers: 1,
                max_batch: 1,
                external_workers: 0,
                ..Default::default()
            },
            Arc::clone(&exec) as Arc<dyn BatchExecutor>,
        );
        let in_flight = pool.submit(req(0, "read", "file:/0"));
        exec.await_entered(1); // worker occupied: everything else queues
        let queued: Vec<AuthzTicket> = (1..=3)
            .map(|i| pool.submit(req(i, "read", &format!("file:/{i}"))))
            .collect();
        let stats = pool.stats();
        assert_eq!(stats.embedded_depth, 3, "{stats:?}");
        assert_eq!(stats.external_depth, 0);
        exec.release();
        let _ = in_flight.wait();
        for t in &queued {
            let _ = t.wait();
        }
        pool.quiesce();
        assert_eq!(pool.stats().embedded_depth, 0, "gauge must drain to zero");
    }

    #[test]
    fn stage_timers_capture_pool_side_spans() {
        let timers = Arc::new(StageTimers::new(true));
        let pool = GuardPool::new(
            GuardPoolConfig {
                workers: 1,
                stage_timers: Some(Arc::clone(&timers)),
                ..Default::default()
            },
            Arc::new(ParityExecutor::new(Duration::ZERO)),
        );
        let mut r = req(2, "read", "file:/a");
        r.submitted_at = Some(Instant::now());
        assert!(pool.submit(r).wait().is_allow());
        pool.quiesce();
        // One request → one sample in each pool-side stage histogram
        // (batch assembly records once per batch).
        assert_eq!(timers.snapshot(Stage::Submit).count, 1);
        assert_eq!(timers.snapshot(Stage::QueueWait).count, 1);
        assert_eq!(timers.snapshot(Stage::BatchAssembly).count, 1);
        assert_eq!(timers.snapshot(Stage::Complete).count, 1);
        // Disabled timers record nothing more.
        timers.set_enabled(false);
        let mut r = req(4, "read", "file:/a");
        r.submitted_at = Some(Instant::now());
        assert!(pool.submit(r).wait().is_allow());
        pool.quiesce();
        assert_eq!(timers.snapshot(Stage::Submit).count, 1);
    }

    #[test]
    fn external_requests_share_embedded_lane_when_lane_disabled() {
        // external_workers == 0 is the legacy topology: external
        // requests ride the embedded queue (and can wedge it — that
        // is what the back-pressure bench demonstrates).
        let pool = GuardPool::new(
            GuardPoolConfig {
                workers: 1,
                external_workers: 0,
                ..Default::default()
            },
            Arc::new(ParityExecutor::new(Duration::ZERO)),
        );
        assert_eq!(
            pool.submit(ext_req(2, "poke", "svc:/x")).wait(),
            AuthzOutcome::Allow
        );
        assert_eq!(pool.stats().external_batches, 0);
    }
}
