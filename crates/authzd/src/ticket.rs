//! Completion tickets: the request/response membrane between syscall
//! threads and the guard pool (the completion-driven shape BRB uses
//! for its request/response membranes, here without any network).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// The pipeline's verdict on one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthzOutcome {
    /// The guard discharged the goal.
    Allow,
    /// The guard refused (missing/unsound proof, missing credential,
    /// authority denial, …).
    Deny,
    /// The request could not be evaluated (kernel gone, pool shut
    /// down, submission queue at its high-water mark, no such
    /// process). Carries the error text. The kernel's sync path treats
    /// a fault as "pipeline unavailable" and falls back to inline
    /// evaluation; ticket holders decide for themselves.
    Fault(String),
}

impl AuthzOutcome {
    /// True only for [`AuthzOutcome::Allow`].
    pub fn is_allow(&self) -> bool {
        matches!(self, AuthzOutcome::Allow)
    }
}

type Callback = Box<dyn FnOnce(&AuthzOutcome) + Send + 'static>;

enum State {
    Pending(Vec<Callback>),
    Done(AuthzOutcome),
}

pub(crate) struct TicketInner {
    state: Mutex<State>,
    cond: Condvar,
}

impl TicketInner {
    pub(crate) fn new() -> Arc<TicketInner> {
        Arc::new(TicketInner {
            state: Mutex::new(State::Pending(Vec::new())),
            cond: Condvar::new(),
        })
    }

    /// Resolve the ticket. Idempotent: the first completion wins.
    /// Callbacks run on the completing thread, outside the lock, each
    /// isolated by `catch_unwind`: a panicking user callback must not
    /// unwind into (and kill) the pool worker that completed the
    /// ticket. Returns how many callbacks panicked so the pool can
    /// count them.
    pub(crate) fn complete(&self, outcome: AuthzOutcome) -> u64 {
        let callbacks = {
            let mut state = self.state.lock().expect("ticket lock");
            match &mut *state {
                State::Done(_) => return 0,
                State::Pending(cbs) => {
                    let cbs = std::mem::take(cbs);
                    *state = State::Done(outcome.clone());
                    cbs
                }
            }
        };
        self.cond.notify_all();
        let mut panics = 0u64;
        for cb in callbacks {
            // AssertUnwindSafe: the callback is consumed either way,
            // and the ticket state was finalized above, so a panic
            // cannot leave shared state half-updated.
            if catch_unwind(AssertUnwindSafe(|| cb(&outcome))).is_err() {
                panics += 1;
            }
        }
        panics
    }
}

/// How a ticket is represented: resolved-at-birth tickets (decision
/// cache hits, admission rejections) carry their outcome inline and
/// never allocate synchronization state.
#[derive(Clone)]
enum Repr {
    /// Resolved before the handle was ever shared: no lock, no
    /// condvar, no `Arc` — a cache hit costs one enum move.
    Ready(AuthzOutcome),
    /// In flight (or resolved later) through the pool.
    Shared(Arc<TicketInner>),
}

/// A handle to an in-flight authorization: poll it, block on it, or
/// attach a completion callback. Cloned handles observe the same
/// completion.
///
/// ```
/// use nexus_authzd::{AuthzOutcome, AuthzTicket};
///
/// // Decision-cache hits and rejected admissions hand back tickets
/// // that are already resolved (allocation-free inline repr); every
/// // accessor behaves exactly like a completed in-flight ticket.
/// let ticket = AuthzTicket::ready(AuthzOutcome::Allow);
/// assert_eq!(ticket.try_outcome(), Some(AuthzOutcome::Allow));
/// assert!(ticket.wait().is_allow());
/// ticket.on_complete(|outcome| assert!(outcome.is_allow()));
/// let clone = ticket.clone();
/// assert!(clone.wait().is_allow());
/// ```
#[derive(Clone)]
pub struct AuthzTicket {
    repr: Repr,
}

impl AuthzTicket {
    pub(crate) fn from_inner(inner: Arc<TicketInner>) -> AuthzTicket {
        AuthzTicket {
            repr: Repr::Shared(inner),
        }
    }

    /// An already-resolved ticket (used when a decision-cache hit
    /// short-circuits the pipeline, or admission control rejects the
    /// request). Allocation-free: the outcome is stored inline, so
    /// the hot cache-hit path pays for no mutex or condvar it will
    /// never use.
    pub fn ready(outcome: AuthzOutcome) -> AuthzTicket {
        AuthzTicket {
            repr: Repr::Ready(outcome),
        }
    }

    /// Poll: `Some(outcome)` once resolved, `None` while in flight.
    pub fn try_outcome(&self) -> Option<AuthzOutcome> {
        match &self.repr {
            Repr::Ready(o) => Some(o.clone()),
            Repr::Shared(inner) => match &*inner.state.lock().expect("ticket lock") {
                State::Done(o) => Some(o.clone()),
                State::Pending(_) => None,
            },
        }
    }

    /// Block until the ticket resolves.
    pub fn wait(&self) -> AuthzOutcome {
        let inner = match &self.repr {
            Repr::Ready(o) => return o.clone(),
            Repr::Shared(inner) => inner,
        };
        let mut state = inner.state.lock().expect("ticket lock");
        loop {
            match &*state {
                State::Done(o) => return o.clone(),
                State::Pending(_) => {
                    state = inner.cond.wait(state).expect("ticket wait");
                }
            }
        }
    }

    /// Block up to `timeout`; `None` if the ticket is still pending.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<AuthzOutcome> {
        let inner = match &self.repr {
            Repr::Ready(o) => return Some(o.clone()),
            Repr::Shared(inner) => inner,
        };
        let deadline = Instant::now() + timeout;
        let mut state = inner.state.lock().expect("ticket lock");
        loop {
            match &*state {
                State::Done(o) => return Some(o.clone()),
                State::Pending(_) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return None;
                    }
                    let (s, _) = inner
                        .cond
                        .wait_timeout(state, deadline - now)
                        .expect("ticket wait");
                    state = s;
                }
            }
        }
    }

    /// Attach a completion callback. Runs on the completing worker
    /// thread — or immediately on this thread if already resolved —
    /// so callbacks must not block or re-enter kernel mutators. A
    /// callback that panics on a worker thread is caught there (the
    /// worker stays alive); one that panics on the immediate path
    /// unwinds into the caller, whose panic it rightfully is.
    pub fn on_complete(&self, cb: impl FnOnce(&AuthzOutcome) + Send + 'static) {
        let inner = match &self.repr {
            Repr::Ready(o) => {
                cb(o);
                return;
            }
            Repr::Shared(inner) => inner,
        };
        let mut cb = Some(cb);
        let run_now = {
            let mut state = inner.state.lock().expect("ticket lock");
            match &mut *state {
                State::Done(o) => Some(o.clone()),
                State::Pending(cbs) => {
                    let cb = cb.take().expect("callback taken once");
                    cbs.push(Box::new(cb));
                    None
                }
            }
        };
        if let Some(outcome) = run_now {
            (cb.take().expect("callback taken once"))(&outcome);
        }
    }
}
