//! Criterion bench for Figure 5: proof checking vs proof length.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nexus_bench::fig5::{build, Family};
use nexus_nal::check::{check, Assumptions};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_proof_eval");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(1));
    for family in [Family::Delegate, Family::Negate, Family::Boolean] {
        for n in [5usize, 10, 20] {
            let (proof, creds, _) = build(family, n);
            let asm = Assumptions::from_iter(creds.iter());
            g.bench_with_input(BenchmarkId::new(family.name(), n), &n, |b, _| {
                b.iter(|| check(&proof, &asm).unwrap())
            });
        }
    }
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
