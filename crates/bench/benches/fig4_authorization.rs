//! Criterion bench for Figure 4: authorization cost per case.
use criterion::{criterion_group, criterion_main, Criterion};
use nexus_bench::fig4;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_authorization");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("all_cases", |b| {
        b.iter(|| std::hint::black_box(fig4::run(200)))
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
