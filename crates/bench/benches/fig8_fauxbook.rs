//! Criterion bench for Figure 8: application throughput under access
//! control, interposition, and attested storage.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nexus_bench::fig8::{AcMode, MonMode, ServerKind, StoreMode, WebBench};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_fauxbook");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(1));
    let scenarios: &[(&str, AcMode, MonMode, StoreMode)] = &[
        ("none", AcMode::None, MonMode::None, StoreMode::None),
        ("static_ac", AcMode::Static, MonMode::None, StoreMode::None),
        (
            "dynamic_ac",
            AcMode::Dynamic,
            MonMode::None,
            StoreMode::None,
        ),
        (
            "user_monitor",
            AcMode::None,
            MonMode::UserUncached,
            StoreMode::None,
        ),
        ("hash", AcMode::None, MonMode::None, StoreMode::Hash),
        ("decrypt", AcMode::None, MonMode::None, StoreMode::Decrypt),
    ];
    for (name, ac, mon, store) in scenarios {
        let mut world = WebBench::new(ServerKind::StaticFiles, *ac, *mon, *store, 10_000);
        g.bench_with_input(BenchmarkId::new(*name, 10_000), name, |b, _| {
            b.iter(|| std::hint::black_box(world.serve()))
        });
    }
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
