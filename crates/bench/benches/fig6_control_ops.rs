//! Criterion bench for Figure 6: control-operation overhead.
use criterion::{criterion_group, criterion_main, Criterion};
use nexus_bench::fig6;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_control_ops");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("all_ops", |b| {
        b.iter(|| std::hint::black_box(fig6::run(100)))
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
