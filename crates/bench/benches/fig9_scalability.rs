//! Criterion bench for Figure 9: sync vs async-batched authorization
//! throughput on a shared kernel.
use criterion::{criterion_group, criterion_main, Criterion};
use nexus_bench::fig9;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_scalability");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("curve_1_to_8_threads", |b| {
        b.iter(|| std::hint::black_box(fig9::run(200)))
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
