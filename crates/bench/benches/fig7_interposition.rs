//! Criterion bench for Figure 7: packet paths under interposition.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nexus_bench::fig7::{measure, Config};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_interposition");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(1));
    for cfg in Config::ALL {
        g.bench_with_input(
            BenchmarkId::new(cfg.name().replace(' ', "_"), 100),
            &cfg,
            |b, &cfg| b.iter(|| std::hint::black_box(measure(cfg, 100, 500))),
        );
    }
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
