//! Criterion bench for Table 1: per-syscall latency in the three
//! kernel configurations.
use criterion::{criterion_group, criterion_main, Criterion};
use nexus_bench::table1;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_syscalls");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("all_rows", |b| {
        b.iter(|| std::hint::black_box(table1::run(200)))
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
