//! Table 2: lines of code per component (the TCB inventory).
//!
//! Counts physical, non-blank, non-comment-only source lines per
//! component of this repository — the same measurement the paper
//! performs with `sloc` over the Nexus sources.

use std::fs;
use std::path::{Path, PathBuf};

fn sloc(path: &Path) -> usize {
    let Ok(text) = fs::read_to_string(path) else {
        return 0;
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count()
}

fn dir_sloc(dir: &Path) -> usize {
    let mut total = 0;
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().map(|x| x == "rs").unwrap_or(false) {
                total += sloc(&p);
            }
        }
    }
    total
}

fn main() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let components: &[(&str, &str, bool)] = &[
        ("NAL logic", "crates/nal/src", false),
        ("TPM", "crates/tpm/src", false),
        ("logical attestation core", "crates/core/src", false),
        ("attested storage", "crates/storage/src", false),
        ("kernel", "crates/kernel/src", false),
        ("analyzers / labeling fns", "crates/analyzers/src", true),
        ("applications", "crates/apps/src", true),
        ("bench harness", "crates/bench/src", true),
    ];
    println!("=== Table 2: lines of code per component ===");
    println!(
        "{:<30} {:>8}   († optional / outside TCB)",
        "component", "lines"
    );
    let mut tcb = 0usize;
    let mut total = 0usize;
    for (name, rel, optional) in components {
        let n = dir_sloc(&root.join(rel));
        total += n;
        if !*optional {
            tcb += n;
        }
        println!(
            "{:<30} {:>8}",
            format!("{}{}", name, if *optional { " †" } else { "" }),
            n
        );
    }
    println!("{:<30} {:>8}", "TCB (non-optional)", tcb);
    println!("{:<30} {:>8}", "total", total);
}
