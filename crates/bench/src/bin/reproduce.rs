//! Regenerate every table and figure of the paper's evaluation (§5)
//! — plus the beyond-the-paper Figure 7a analysis-vs-reuse bench, the
//! Figure 9 scalability curve, and the Figure 12 telemetry-overhead
//! A/B — and print them in the paper's layout.
//!
//! Usage:
//! `cargo run --release -p nexus-bench --bin reproduce \
//!    [quick|fig7a|fig9|fig9-hits|fig9-bp|fig9-prover|fig11|fig12] [--json <path>]`
//!
//! `fig7a` runs only the attestation-analyzer bench (static analysis
//! cost per authorization vs standing-credential reuse on the
//! CertiPics upload gate); `fig9` runs only the scalability bench
//! (full iteration counts);
//! `fig9-hits` runs only its hit-path mode (seqlock vs mutexed
//! decision-cache reads on a hit-dominated workload, 1..=64 threads);
//! `fig9-bp` runs only its back-pressure mode (stuck external
//! authority vs. bounded admission + authority isolation);
//! `fig9-prover` runs only the batch-aware prover comparison
//! (per-request vs frontier-sharing proof search); `fig11` runs only
//! the distributed-Nexus bench (cross-node revocation latency and
//! replicated authorization throughput vs cluster size, over the
//! deterministic simulator); `fig12` runs only the telemetry-overhead
//! A/B (default telemetry vs `ObsConfig::disabled` on the primed hit
//! workload).
//!
//! `--json <path>` additionally writes machine-readable results to
//! `path`: for the full and `quick` modes, one document covering every
//! figure (see `nexus_bench::report`); for single-figure modes, just
//! that figure's points.

use nexus_bench::{fig11, fig12, fig4, fig5, fig6, fig7, fig7a, fig8, fig9, report, table1};

fn print_fig9(iters: u64) {
    println!("\n=== Figure 9: authorization scalability (ops/s, shared Arc<Nexus>) ===");
    println!(
        "{:<8} {:>14} {:>14} {:>8}",
        "threads", "sync inline", "async batched", "ratio"
    );
    for p in fig9::run(iters) {
        println!(
            "{:<8} {:>14.0} {:>14.0} {:>7.2}x",
            p.threads,
            p.sync_ops_per_s,
            p.async_ops_per_s,
            p.async_ops_per_s / p.sync_ops_per_s
        );
    }
    println!("(cache-miss-heavy: decision cache off, 32-disjunct ground goal)");
}

fn print_fig9_hits(iters: u64) {
    println!("\n=== Figure 9 (hit path): seqlock vs mutexed decision cache ===");
    println!(
        "{:<8} {:>14} {:>14} {:>8} {:>10} {:>10}",
        "threads", "seqlock", "mutexed", "speedup", "retries", "fallbacks"
    );
    for p in fig9::run_hits(iters) {
        println!(
            "{:<8} {:>14.0} {:>14.0} {:>7.2}x {:>10} {:>10}",
            p.threads,
            p.seqlock_ops_per_s,
            p.mutexed_ops_per_s,
            p.speedup(),
            p.read_retries,
            p.read_fallbacks
        );
    }
    println!(
        "(hit-dominated: all threads authorize one primed cached allow; \
         multicore acceptance bound seqlock ≥ mutexed everywhere, ≥ 1.5x at \
         32+ threads — on a single-core host the shard mutex is never \
         contended cross-core and the two paths measure at parity)"
    );
}

fn print_fig9_bp(window_ms: u64) {
    println!("\n=== Figure 9 (back-pressure): one stuck external authority ===");
    println!(
        "{:<10} {:>16} {:>14} {:>10}",
        "config", "embedded ops/s", "ext submitted", "rejected"
    );
    let pts = fig9::run_back_pressure(window_ms);
    for p in &pts {
        println!(
            "{:<10} {:>16.0} {:>14} {:>10}",
            p.mode, p.embedded_ops_per_s, p.external_submitted, p.rejected
        );
    }
    let baseline = pts.iter().find(|p| p.mode == "baseline").unwrap();
    let isolated = pts.iter().find(|p| p.mode == "isolated").unwrap();
    let degradation = 100.0 * (1.0 - isolated.embedded_ops_per_s / baseline.embedded_ops_per_s);
    println!(
        "(isolated embedded degradation vs baseline: {degradation:.1}% — acceptance bound < 20%; \
         rejected submissions faulted immediately to the inline path)"
    );
}

fn print_fig9_prover(iters: u64) {
    println!("\n=== Figure 9 (prover): batch-aware proof search ===");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "mode", "ops/s", "memo hits", "hit rate", "share rate", "avg batch"
    );
    let pts = fig9::run_prover(iters);
    for p in &pts {
        println!(
            "{:<12} {:>12.0} {:>12} {:>11.1}% {:>11.1}% {:>10.1}",
            p.mode,
            p.ops_per_s,
            p.memo_hits,
            100.0 * p.memo_hit_rate(),
            100.0 * p.share_rate(),
            p.avg_batch
        );
    }
    let per_request = pts.iter().find(|p| p.mode == "per-request").unwrap();
    let batch_aware = pts.iter().find(|p| p.mode == "batch-aware").unwrap();
    println!(
        "(batch-aware / per-request: {:.2}x — acceptance bound ≥ 1.3x at batch sizes ≥ 4; \
         proof-heavy auto-prove workload, {}-hop delegation chain × {} conjuncts)",
        batch_aware.ops_per_s / per_request.ops_per_s,
        fig9::PROVER_CHAIN_LEN,
        fig9::PROVER_GOAL_WIDTH
    );
}

fn print_fig7a(auths: u64) {
    println!("\n=== Figure 7a: analysis cost vs credential reuse (CertiPics upload gate) ===");
    println!(
        "{:<20} {:>14} {:>8} {:>10} {:>8}",
        "mode", "ns/auth", "auths", "analyses", "minted"
    );
    let pts = fig7a::run(auths);
    for p in &pts {
        println!(
            "{:<20} {:>14.0} {:>8} {:>10} {:>8}",
            p.mode, p.ns_per_auth, p.auths, p.analyses, p.minted
        );
    }
    println!(
        "(credential reuse vs re-analysis per auth: {:.1}x — acceptance bound ≥ 5x; \
         {}-stage encoder, forced re-attest = revoke + analyze + re-mint + epoch flush)",
        fig7a::speedup(&pts),
        fig7a::ENCODER_WIDTH
    );
}

fn print_fig4_assoc(rounds: u64) {
    println!("\n=== Figure 4 (ablation): decision-cache hit rate vs associativity ===");
    println!(
        "{:<14} {:>10} {:>10} {:>10}",
        "config", "hits", "misses", "rate"
    );
    for p in fig4::associativity(rounds) {
        let name = if p.ways == 1 {
            "direct-mapped"
        } else {
            "2-way"
        };
        println!(
            "{:<14} {:>10} {:>10} {:>9.1}%",
            name,
            p.hits,
            p.misses,
            100.0 * p.hit_rate()
        );
    }
    println!("(Fauxbook hot-follower wall-polling pattern, 64-slot cache)");
}

fn print_fig11(revocations: u64, authz: u64) {
    println!("\n=== Figure 11: distributed Nexus (BFT-replicated credentials) ===");
    println!(
        "{:<8} {:>18} {:>16} {:>16}",
        "nodes", "revoke lat (µs)", "msgs/revoke", "authz ops/s"
    );
    for p in fig11::run(revocations, authz) {
        println!(
            "{:<8} {:>18.1} {:>16.1} {:>16.0}",
            p.nodes, p.revoke_latency_us, p.msgs_per_revoke, p.authz_ops_per_s
        );
    }
    println!(
        "(in-process cluster over the deterministic simulator; latency = \
         broadcast to applied-on-every-node, fence included; {revocations} \
         revocation rounds and {authz} round-robin authorizations per size; \
         reads stay node-local — only credential writes pay for agreement)"
    );
}

fn print_fig12(iters: u64, reps: usize) {
    println!("\n=== Figure 12: telemetry overhead (primed hit path, 1 thread) ===");
    let r = fig12::run(iters, reps);
    println!("{:<12} {:>14} {:>16}", "mode", "hit ops/s", "audit events");
    println!(
        "{:<12} {:>14.0} {:>16}",
        "disabled", r.disabled_ops_per_s, 0
    );
    println!(
        "{:<12} {:>14.0} {:>16}",
        "enabled", r.enabled_ops_per_s, r.audit_recorded
    );
    println!(
        "(telemetry-on overhead: {:.2}% — acceptance bound < 5%; medians of {} \
         interleaved reps; enabled = stage timers + audit journal + 1-in-64 hit sampling)",
        r.overhead_pct(),
        r.reps
    );
}

/// Write `json` to `path`, exiting with a message on failure.
fn write_json(path: &str, json: &str) {
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("machine-readable results written to {path}");
}

/// Emit a single figure's report document to `path`.
fn write_single(path: &str, figure: &str, cfg: &report::ReportConfig) {
    let section = report::section(figure, cfg).expect("known figure");
    let doc = serde::Value::Map(vec![(serde::Value::Str(figure.to_string()), section)]);
    write_json(
        path,
        &serde_json::to_string(&doc).expect("report serialization is infallible"),
    );
}

fn usage() -> ! {
    eprintln!(
        "usage: reproduce [quick|fig7a|fig9|fig9-hits|fig9-bp|fig9-prover|fig11|fig12] [--json <path>]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = match args.iter().position(|a| a == "--json") {
        Some(i) => {
            if i + 1 >= args.len() {
                eprintln!("--json requires a path");
                usage();
            }
            let path = args.remove(i + 1);
            args.remove(i);
            Some(path)
        }
        None => None,
    };
    let quick = match args.as_slice() {
        [] => false,
        [a] if a == "quick" => true,
        [a] if a == "fig7a" => {
            print_fig7a(1_000);
            if let Some(path) = &json_path {
                write_single(path, "fig7a", &report::ReportConfig::full());
            }
            return;
        }
        [a] if a == "fig9" => {
            print_fig9(2_000);
            print_fig9_hits(200_000);
            print_fig9_bp(1_500);
            print_fig9_prover(600);
            if let Some(path) = &json_path {
                let cfg = report::ReportConfig::full();
                let doc: Vec<(serde::Value, serde::Value)> =
                    ["fig9", "fig9_hits", "fig9_bp", "fig9_prover"]
                        .iter()
                        .map(|f| {
                            (
                                serde::Value::Str((*f).to_string()),
                                report::section(f, &cfg).expect("known figure"),
                            )
                        })
                        .collect();
                write_json(
                    path,
                    &serde_json::to_string(&serde::Value::Map(doc))
                        .expect("report serialization is infallible"),
                );
            }
            return;
        }
        [a] if a == "fig9-hits" => {
            print_fig9_hits(200_000);
            if let Some(path) = &json_path {
                write_single(path, "fig9_hits", &report::ReportConfig::full());
            }
            return;
        }
        [a] if a == "fig9-bp" => {
            print_fig9_bp(1_500);
            if let Some(path) = &json_path {
                write_single(path, "fig9_bp", &report::ReportConfig::full());
            }
            return;
        }
        [a] if a == "fig9-prover" => {
            print_fig9_prover(600);
            if let Some(path) = &json_path {
                write_single(path, "fig9_prover", &report::ReportConfig::full());
            }
            return;
        }
        [a] if a == "fig11" => {
            print_fig11(10, 2_000);
            if let Some(path) = &json_path {
                write_single(path, "fig11", &report::ReportConfig::quick());
            }
            return;
        }
        [a] if a == "fig12" => {
            print_fig12(100_000, 5);
            if let Some(path) = &json_path {
                write_single(path, "fig12", &report::ReportConfig::full());
            }
            return;
        }
        other => {
            eprintln!("unknown argument(s): {other:?}");
            usage();
        }
    };
    // With --json, the whole run goes through the report generator (one
    // pass over every figure) instead of the printed tables.
    if let Some(path) = &json_path {
        let cfg = if quick {
            report::ReportConfig::quick()
        } else {
            report::ReportConfig::full()
        };
        write_json(path, &report::generate(&cfg));
        return;
    }
    let (iters, pkts, reqs) = if quick {
        (300, 2_000, 50)
    } else {
        (2_000, 20_000, 300)
    };

    println!("=== Table 1: system call overhead (ns/call) ===");
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "call", "Nexus bare", "Nexus", "direct"
    );
    for row in table1::run(iters) {
        println!(
            "{:<14} {:>12.0} {:>12.0} {:>12.0}",
            row.call, row.bare_ns, row.nexus_ns, row.direct_ns
        );
    }

    println!("\n=== Figure 4: authorization cost (ns/call) ===");
    println!("{:<12} {:>14} {:>14}", "case", "kernel cache", "no cache");
    for p in fig4::run(iters) {
        println!(
            "{:<12} {:>14.0} {:>14.0}",
            p.case, p.cached_ns, p.uncached_ns
        );
    }

    println!("\n=== Figure 5: proof evaluation cost (ns/check) ===");
    println!(
        "{:<10} {:>7} {:>12} {:>12}",
        "family", "#rules", "eval (E)", "full (F)"
    );
    for p in fig5::run(iters.min(500), 20) {
        println!(
            "{:<10} {:>7} {:>12.0} {:>12.0}",
            p.family, p.rules, p.eval_ns, p.full_ns
        );
    }

    println!("\n=== Figure 6: control operation overhead (ns/op) ===");
    for p in fig6::run(iters) {
        println!("{:<16} {:>12.0}", p.op, p.ns);
    }

    println!("\n=== Figure 7: interposition overhead (packets/s) ===");
    println!("{:<10} {:>12} {:>12}", "config", "100 B", "1500 B");
    let pts = fig7::run(pkts);
    for cfg in fig7::Config::ALL {
        let small = pts
            .iter()
            .find(|p| p.config == cfg.name() && p.pkt_size == 100)
            .unwrap();
        let large = pts
            .iter()
            .find(|p| p.config == cfg.name() && p.pkt_size == 1500)
            .unwrap();
        println!("{:<10} {:>12.0} {:>12.0}", cfg.name(), small.pps, large.pps);
    }

    println!("\n=== Figure 8: application throughput (requests/s) ===");
    let pts = fig8::run(reqs);
    for kind in ["static", "www"] {
        for column in ["access control", "introspection", "attested storage"] {
            println!("\n-- {kind} files / {column} --");
            let variants: Vec<&str> = {
                let mut v: Vec<&str> = Vec::new();
                for p in pts.iter().filter(|p| p.kind == kind && p.column == column) {
                    if !v.contains(&p.variant) {
                        v.push(p.variant);
                    }
                }
                v
            };
            print!("{:<10}", "size");
            for v in &variants {
                print!(" {v:>12}");
            }
            println!();
            for size in fig8::SIZES {
                print!("{size:<10}");
                for v in &variants {
                    let p = pts
                        .iter()
                        .find(|p| {
                            p.kind == kind
                                && p.column == column
                                && p.variant == *v
                                && p.size == size
                        })
                        .unwrap();
                    print!(" {:>12.0}", p.rps);
                }
                println!();
            }
        }
    }
    print_fig7a(if quick { 300 } else { 1_000 });
    print_fig4_assoc(if quick { 48 } else { 256 });
    print_fig9(if quick { 300 } else { 2_000 });
    print_fig9_hits(if quick { 20_000 } else { 200_000 });
    print_fig9_bp(if quick { 500 } else { 1_500 });
    print_fig9_prover(if quick { 100 } else { 600 });
    print_fig11(
        if quick { 10 } else { 40 },
        if quick { 2_000 } else { 10_000 },
    );
    // fig12 keeps full iteration counts even in quick mode: one rep is
    // ~30 ms, and short runs are too noisy for the 5% overhead bound.
    print_fig12(100_000, 5);

    println!("\n(see EXPERIMENTS.md for paper-vs-measured discussion)");
}
