//! Figure 9 (beyond the paper): authorization scalability under
//! multi-core load.
//!
//! The paper's evaluation is single-core; this bench hammers one
//! shared `Arc<Nexus>` from 1..=8 OS threads through both
//! authorization paths:
//!
//! * **sync** — every thread runs the guard inline on its own
//!   (syscall) thread, the paper's architecture;
//! * **async** — threads submit tickets to the `nexus-authzd`
//!   pipeline in windows; workers coalesce requests sharing the
//!   (op, object) goal and amortize goal fetch + NAL normalization
//!   across each batch.
//!
//! The workload is deliberately cache-miss-heavy (the decision cache
//! is disabled for the measurement, modeling the miss-dominated
//! regime of many distinct subjects), with a structurally wide ground
//! goal so per-request normalization is the dominant guard cost — the
//! paper's "slow goal" scenario where batching should pay.

use crate::boot_with;
use nexus_core::ResourceId;
use nexus_kernel::{GuardPoolConfig, Nexus, NexusConfig};
use nexus_nal::{parse, Formula, Principal, Proof};
use std::sync::{Arc, Barrier};

/// Thread counts on the x-axis.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Disjuncts in the goal formula (wide ⇒ expensive to normalize).
const GOAL_WIDTH: usize = 32;

/// Tickets in flight per submitter thread on the async path.
const WINDOW: usize = 32;

/// One point on the scalability curve.
#[derive(Debug, Clone)]
pub struct Point {
    /// OS threads hammering the kernel.
    pub threads: usize,
    /// Inline-guard throughput (authorizations/s).
    pub sync_ops_per_s: f64,
    /// Pipeline (batched) throughput (authorizations/s).
    pub async_ops_per_s: f64,
}

/// The wide ground goal: `Gate says g0 or Gate says g1 or …` —
/// no `$subject`, so pipeline batches amortize its normalization.
fn wide_goal() -> Formula {
    (1..GOAL_WIDTH).fold(parse("Gate says g0").unwrap(), |acc, k| {
        acc.or(parse(&format!("Gate says g{k}")).unwrap())
    })
}

/// A proof of the first disjunct, widened by OrIntroL to conclude the
/// full goal: one credential leaf, conclusion as wide as the goal.
fn wide_proof() -> Proof {
    (1..GOAL_WIDTH).fold(Proof::assume(parse("Gate says g0").unwrap()), |acc, k| {
        Proof::OrIntroL(Box::new(acc), parse(&format!("Gate says g{k}")).unwrap())
    })
}

/// Boot a kernel with `threads` ready subjects, each holding the
/// `Gate says g0` credential and the stored wide proof.
fn setup(threads: usize) -> (Arc<Nexus>, Vec<u64>, ResourceId) {
    let nexus = boot_with(NexusConfig::default());
    let object = ResourceId::new("bench", "fig9");
    let owner = nexus.spawn("owner", b"img");
    nexus.grant_ownership(owner, &object).unwrap();
    nexus
        .sys_setgoal(owner, object.clone(), "op", wide_goal())
        .unwrap();
    let pids: Vec<u64> = (0..threads)
        .map(|t| {
            let pid = nexus.spawn(&format!("fig9-{t}"), b"img");
            nexus
                .kernel_label(pid, Principal::name("Gate"), parse("g0").unwrap())
                .unwrap();
            nexus
                .sys_set_proof(pid, "op", &object, wide_proof())
                .unwrap();
            pid
        })
        .collect();
    // Miss-heavy regime: no decision cache, no auto-proving.
    nexus.set_config(NexusConfig {
        decision_cache: false,
        auto_prove: false,
        ..NexusConfig::default()
    });
    (Arc::new(nexus), pids, object)
}

/// Run `iters` authorizations per thread; returns authorizations/s.
fn run_threads(
    nexus: &Arc<Nexus>,
    pids: &[u64],
    object: &ResourceId,
    iters: u64,
    body: impl Fn(&Nexus, u64, &ResourceId, u64) + Send + Sync + Copy + 'static,
) -> f64 {
    let threads = pids.len();
    let barrier = Arc::new(Barrier::new(threads + 1));
    let mut handles = Vec::new();
    for &pid in pids {
        let nexus = Arc::clone(nexus);
        let object = object.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            body(&nexus, pid, &object, iters);
        }));
    }
    barrier.wait();
    let start = std::time::Instant::now();
    for h in handles {
        h.join().unwrap();
    }
    let secs = start.elapsed().as_secs_f64();
    (threads as u64 * iters) as f64 / secs
}

fn sync_body(nexus: &Nexus, pid: u64, object: &ResourceId, iters: u64) {
    for _ in 0..iters {
        assert!(nexus.authorize(pid, "op", object).unwrap());
    }
}

fn async_body(nexus: &Nexus, pid: u64, object: &ResourceId, iters: u64) {
    let mut remaining = iters;
    while remaining > 0 {
        let window = remaining.min(WINDOW as u64);
        let tickets: Vec<_> = (0..window)
            .map(|_| nexus.authorize_async(pid, "op", object).unwrap())
            .collect();
        for t in tickets {
            assert!(t.wait().is_allow());
        }
        remaining -= window;
    }
}

/// Measure one thread count through both paths.
pub fn measure(threads: usize, iters: u64) -> Point {
    // Fresh kernels per mode so one path's warmup can't help the other.
    let (nexus, pids, object) = setup(threads);
    sync_body(&nexus, pids[0], &object, 16); // warm the guard memo
    let sync_ops_per_s = run_threads(&nexus, &pids, &object, iters, sync_body);

    let (nexus, pids, object) = setup(threads);
    nexus.start_authz_pipeline(GuardPoolConfig {
        workers: threads,
        max_batch: 64,
        prioritizer: None,
    });
    async_body(&nexus, pids[0], &object, 16);
    let async_ops_per_s = run_threads(&nexus, &pids, &object, iters, async_body);
    nexus.stop_authz_pipeline();

    Point {
        threads,
        sync_ops_per_s,
        async_ops_per_s,
    }
}

/// The full curve.
pub fn run(iters: u64) -> Vec<Point> {
    THREADS.iter().map(|&t| measure(t, iters)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_paths_authorize_correctly() {
        let _serial = crate::timing_guard();
        let (nexus, pids, object) = setup(2);
        assert!(nexus.authorize(pids[0], "op", &object).unwrap());
        nexus.start_authz_pipeline(GuardPoolConfig::default());
        let t = nexus.authorize_async(pids[1], "op", &object).unwrap();
        assert!(t.wait().is_allow());
        // A subject without the credential is denied on both paths.
        let stranger = nexus.spawn("stranger", b"img");
        assert!(!nexus.authorize(stranger, "op", &object).unwrap());
        nexus.stop_authz_pipeline();
    }

    #[test]
    fn async_batched_keeps_pace_with_sync_under_contention() {
        let _serial = crate::timing_guard();
        // The acceptance criterion proper (async ≥ sync at 8 threads)
        // is asserted on the `reproduce` run; under the test harness's
        // noisy parallelism allow a safety margin, but batching must
        // at least be in the same league.
        let p = measure(4, 400);
        assert!(
            p.async_ops_per_s >= 0.6 * p.sync_ops_per_s,
            "async {:.0}/s vs sync {:.0}/s",
            p.async_ops_per_s,
            p.sync_ops_per_s
        );
    }

    #[test]
    fn pipeline_actually_batches_this_workload() {
        let _serial = crate::timing_guard();
        let (nexus, pids, object) = setup(4);
        let pool = nexus.start_authz_pipeline(GuardPoolConfig {
            workers: 1,
            max_batch: 64,
            prioritizer: None,
        });
        let tickets: Vec<_> = (0..64)
            .map(|i| {
                nexus
                    .authorize_async(pids[i % pids.len()], "op", &object)
                    .unwrap()
            })
            .collect();
        for t in tickets {
            assert!(t.wait().is_allow());
        }
        pool.quiesce();
        let stats = nexus.authz_stats().unwrap();
        assert!(
            stats.coalesced > 0,
            "same-goal requests through one worker must coalesce: {stats:?}"
        );
        nexus.stop_authz_pipeline();
    }
}
