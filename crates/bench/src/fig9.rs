//! Figure 9 (beyond the paper): authorization scalability under
//! multi-core load.
//!
//! The paper's evaluation is single-core; this bench hammers one
//! shared `Arc<Nexus>` from 1 up to 64 OS threads (the sweep is
//! derived from `available_parallelism` and always includes the 2×/4×
//! oversubscribed points plus 32 and 64) through both authorization
//! paths:
//!
//! * **sync** — every thread runs the guard inline on its own
//!   (syscall) thread, the paper's architecture;
//! * **async** — threads submit tickets to the `nexus-authzd`
//!   pipeline in windows; workers coalesce requests sharing the
//!   (op, object) goal and amortize goal fetch + NAL normalization
//!   across each batch.
//!
//! The workload is deliberately cache-miss-heavy (the decision cache
//! is disabled for the measurement, modeling the miss-dominated
//! regime of many distinct subjects), with a structurally wide ground
//! goal so per-request normalization is the dominant guard cost — the
//! paper's "slow goal" scenario where batching should pay.
//!
//! The **hit-path** mode ([`run_hits`]) measures the opposite regime —
//! every request a decision-cache hit, all threads on one cache key —
//! as an A/B between the seqlock (lock-free) read path and the
//! pre-ISSUE-6 mutexed baseline (`DecisionCacheConfig::lock_free =
//! false`): the mutexed curve bends where every thread serializes on
//! one subregion mutex; the seqlock curve is a handful of atomic
//! loads and stays flat.

use crate::boot_with;
use nexus_core::{AuthorityKind, DecisionCacheConfig, FnAuthority, ResourceId};
use nexus_kernel::{GuardPoolConfig, Nexus, NexusConfig, OverflowPolicy};
use nexus_nal::{parse, Formula, Principal, Proof};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Thread counts on the x-axis: powers of two up to the machine's
/// `available_parallelism`, the 2× and 4× oversubscribed points, and
/// always 32 and 64 (the ISSUE-6 acceptance range) — sorted, deduped.
pub fn thread_counts() -> Vec<usize> {
    let p = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8);
    let mut v = Vec::new();
    let mut t = 1;
    while t <= p {
        v.push(t);
        t *= 2;
    }
    v.extend([p, 2 * p, 4 * p, 32, 64]);
    v.sort_unstable();
    v.dedup();
    v
}

/// Per-thread iterations for a sweep point, scaled so total work stays
/// roughly constant as the thread count grows (64 threads would
/// otherwise take 64× the wall clock of the single-thread point).
fn per_thread(iters: u64, threads: usize) -> u64 {
    (iters / threads as u64).max(64)
}

/// Disjuncts in the goal formula (wide ⇒ expensive to normalize).
const GOAL_WIDTH: usize = 32;

/// Tickets in flight per submitter thread on the async path.
const WINDOW: usize = 32;

/// One point on the scalability curve.
#[derive(Debug, Clone)]
pub struct Point {
    /// OS threads hammering the kernel.
    pub threads: usize,
    /// Inline-guard throughput (authorizations/s).
    pub sync_ops_per_s: f64,
    /// Pipeline (batched) throughput (authorizations/s).
    pub async_ops_per_s: f64,
}

/// The wide ground goal: `Gate says g0 or Gate says g1 or …` —
/// no `$subject`, so pipeline batches amortize its normalization.
fn wide_goal() -> Formula {
    (1..GOAL_WIDTH).fold(parse("Gate says g0").unwrap(), |acc, k| {
        acc.or(parse(&format!("Gate says g{k}")).unwrap())
    })
}

/// A proof of the first disjunct, widened by OrIntroL to conclude the
/// full goal: one credential leaf, conclusion as wide as the goal.
fn wide_proof() -> Proof {
    (1..GOAL_WIDTH).fold(Proof::assume(parse("Gate says g0").unwrap()), |acc, k| {
        Proof::OrIntroL(Box::new(acc), parse(&format!("Gate says g{k}")).unwrap())
    })
}

/// Boot a kernel with `threads` ready subjects, each holding the
/// `Gate says g0` credential and the stored wide proof.
fn setup(threads: usize) -> (Arc<Nexus>, Vec<u64>, ResourceId) {
    let nexus = boot_with(NexusConfig::default());
    let object = ResourceId::new("bench", "fig9");
    let owner = nexus.spawn("owner", b"img");
    nexus.grant_ownership(owner, &object).unwrap();
    nexus
        .sys_setgoal(owner, object.clone(), "op", wide_goal())
        .unwrap();
    let pids: Vec<u64> = (0..threads)
        .map(|t| {
            let pid = nexus.spawn(&format!("fig9-{t}"), b"img");
            nexus
                .kernel_label(pid, Principal::name("Gate"), parse("g0").unwrap())
                .unwrap();
            nexus
                .sys_set_proof(pid, "op", &object, wide_proof())
                .unwrap();
            pid
        })
        .collect();
    // Miss-heavy regime: no decision cache, no auto-proving.
    nexus.set_config(NexusConfig {
        decision_cache: false,
        auto_prove: false,
        ..NexusConfig::default()
    });
    (Arc::new(nexus), pids, object)
}

/// Run `iters` authorizations per thread; returns authorizations/s.
fn run_threads(
    nexus: &Arc<Nexus>,
    pids: &[u64],
    object: &ResourceId,
    iters: u64,
    body: impl Fn(&Nexus, u64, &ResourceId, u64) + Send + Sync + Copy + 'static,
) -> f64 {
    let threads = pids.len();
    let barrier = Arc::new(Barrier::new(threads));
    let mut handles = Vec::new();
    for &pid in pids {
        let nexus = Arc::clone(nexus);
        let object = object.clone();
        let barrier = Arc::clone(&barrier);
        // Each worker times its own window; the measured span is
        // earliest start to latest end across workers. Timing on the
        // coordinating thread instead would race the scheduler: under
        // heavy oversubscription the workers can finish most of their
        // iterations before the coordinator is ever rescheduled to
        // start (or stop) its clock.
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            let start = std::time::Instant::now();
            body(&nexus, pid, &object, iters);
            (start, std::time::Instant::now())
        }));
    }
    let windows: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let first = windows.iter().map(|w| w.0).min().unwrap();
    let last = windows.iter().map(|w| w.1).max().unwrap();
    let secs = last.duration_since(first).as_secs_f64();
    (threads as u64 * iters) as f64 / secs
}

fn sync_body(nexus: &Nexus, pid: u64, object: &ResourceId, iters: u64) {
    for _ in 0..iters {
        assert!(nexus.authorize(pid, "op", object).unwrap());
    }
}

fn async_body(nexus: &Nexus, pid: u64, object: &ResourceId, iters: u64) {
    let mut remaining = iters;
    while remaining > 0 {
        let window = remaining.min(WINDOW as u64);
        let tickets: Vec<_> = (0..window)
            .map(|_| nexus.authorize_async(pid, "op", object).unwrap())
            .collect();
        for t in tickets {
            assert!(t.wait().is_allow());
        }
        remaining -= window;
    }
}

/// Measure one thread count through both paths.
pub fn measure(threads: usize, iters: u64) -> Point {
    // Fresh kernels per mode so one path's warmup can't help the other.
    let (nexus, pids, object) = setup(threads);
    sync_body(&nexus, pids[0], &object, 16); // warm the guard memo
    let sync_ops_per_s = run_threads(&nexus, &pids, &object, iters, sync_body);

    let (nexus, pids, object) = setup(threads);
    nexus.start_authz_pipeline(GuardPoolConfig {
        workers: threads,
        max_batch: 64,
        ..Default::default()
    });
    async_body(&nexus, pids[0], &object, 16);
    let async_ops_per_s = run_threads(&nexus, &pids, &object, iters, async_body);
    nexus.stop_authz_pipeline();

    Point {
        threads,
        sync_ops_per_s,
        async_ops_per_s,
    }
}

/// The full curve. `iters` is the single-thread iteration count;
/// higher thread counts run proportionally fewer per-thread
/// iterations so every point does comparable total work.
pub fn run(iters: u64) -> Vec<Point> {
    thread_counts()
        .into_iter()
        .map(|t| measure(t, per_thread(iters, t)))
        .collect()
}

// ---- hit-path mode (ISSUE 6): seqlock vs mutexed decision cache ----

/// One point on the hit-path A/B curve.
#[derive(Debug, Clone)]
pub struct HitPoint {
    /// OS threads hammering one cached decision.
    pub threads: usize,
    /// Hit throughput on the seqlock (lock-free) read path.
    pub seqlock_ops_per_s: f64,
    /// Hit throughput on the mutexed baseline read path.
    pub mutexed_ops_per_s: f64,
    /// Seqlock probe retries observed during the seqlock run (a
    /// writer was mid-flight on the probed slot).
    pub read_retries: u64,
    /// Bounded-retry exhaustions that fell back to the locked lookup
    /// during the seqlock run.
    pub read_fallbacks: u64,
}

impl HitPoint {
    /// seqlock / mutexed throughput ratio.
    pub fn speedup(&self) -> f64 {
        if self.mutexed_ops_per_s == 0.0 {
            0.0
        } else {
            self.seqlock_ops_per_s / self.mutexed_ops_per_s
        }
    }
}

/// Boot a kernel with one primed, cacheable allow decision, with the
/// decision cache on the requested read path. Every thread then
/// authorizes the *same* (subject, op, object) tuple, so the whole
/// measurement lands on one slot of one subregion — the maximal
/// contention case for the mutexed baseline, and the paper's "cached
/// decisions are nearly free" case for the seqlock path.
fn hit_setup(lock_free: bool) -> (Arc<Nexus>, u64, ResourceId) {
    let nexus = boot_with(NexusConfig::default());
    let object = ResourceId::new("bench", "fig9-hit");
    let owner = nexus.spawn("owner", b"img");
    nexus.grant_ownership(owner, &object).unwrap();
    nexus
        .sys_setgoal(owner, object.clone(), "op", wide_goal())
        .unwrap();
    let pid = nexus.spawn("fig9-hit", b"img");
    nexus
        .kernel_label(pid, Principal::name("Gate"), parse("g0").unwrap())
        .unwrap();
    nexus
        .sys_set_proof(pid, "op", &object, wide_proof())
        .unwrap();
    nexus.set_config(NexusConfig {
        auto_prove: false,
        ..NexusConfig::default()
    });
    // Select the read path under test (resize drops entries), then
    // prime the one decision every measurement iteration will hit.
    nexus.resize_decision_cache(DecisionCacheConfig {
        lock_free,
        ..Default::default()
    });
    assert!(nexus.authorize(pid, "op", &object).unwrap());
    (Arc::new(nexus), pid, object)
}

/// Measure one thread count through both read paths.
pub fn measure_hits(threads: usize, iters: u64) -> HitPoint {
    let run_one = |lock_free: bool| {
        let (nexus, pid, object) = hit_setup(lock_free);
        let pids = vec![pid; threads];
        let ops = run_threads(&nexus, &pids, &object, iters, sync_body);
        (ops, nexus.decision_cache_stats())
    };
    let (seqlock_ops_per_s, stats) = run_one(true);
    let (mutexed_ops_per_s, _) = run_one(false);
    HitPoint {
        threads,
        seqlock_ops_per_s,
        mutexed_ops_per_s,
        read_retries: stats.read_retries,
        read_fallbacks: stats.read_fallbacks,
    }
}

/// The full hit-path A/B curve over [`thread_counts`].
pub fn run_hits(iters: u64) -> Vec<HitPoint> {
    thread_counts()
        .into_iter()
        .map(|t| measure_hits(t, per_thread(iters, t)))
        .collect()
}

// ---- back-pressure mode ----
//
// The guard mediates every syscall, so a slow or stuck external
// authority must never be able to wedge the whole authorization path.
// This mode wedges one: an NTP-style freshness authority that stops
// answering for the duration of the measurement window, while hammer
// threads flood the pipeline with requests whose goal depends on it
// and embedded threads measure ordinary (label-backed) authorization
// throughput. Three configurations:
//
// * `baseline`  — bounded pool, no external load (the reference);
// * `isolated`  — bounded pool + dedicated external lane, under load:
//                 the stuck authority occupies only the external
//                 worker, the external queue fills to its high-water
//                 mark and further external submissions fault
//                 (Reject), and embedded throughput must stay within
//                 20% of baseline;
// * `legacy`    — the pre-back-pressure topology (unbounded queue, no
//                 external lane): the stuck batches occupy every
//                 worker and embedded throughput collapses.

/// Embedded measurement threads / pool workers.
const BP_THREADS: usize = 4;
/// Hammer threads flooding the external authority.
const BP_HAMMER_THREADS: usize = 2;
/// External submissions per hammer thread (spread over distinct
/// objects so legacy-mode batches land on every worker).
const BP_HAMMER_REQS: usize = 400;
/// Distinct external objects.
const BP_EXT_OBJECTS: usize = 8;
/// External-lane high-water mark in the bounded configurations.
const BP_MAX_QUEUED: usize = 256;

/// One back-pressure configuration's measurement.
#[derive(Debug, Clone)]
pub struct BackPressurePoint {
    /// `baseline`, `isolated`, or `legacy`.
    pub mode: &'static str,
    /// Embedded-authority (label-backed) authorization throughput.
    pub embedded_ops_per_s: f64,
    /// External-authority requests submitted by the hammer.
    pub external_submitted: u64,
    /// Submissions refused at the high-water mark (Reject policy) —
    /// each resolved to a fault immediately instead of waiting behind
    /// the stuck authority.
    pub rejected: u64,
}

/// The bounded + isolated pipeline configuration under test.
fn bp_isolated_cfg() -> GuardPoolConfig {
    GuardPoolConfig {
        workers: BP_THREADS,
        max_batch: 64,
        prioritizer: None,
        max_queued: BP_MAX_QUEUED,
        overflow: OverflowPolicy::Reject,
        external_workers: 1,
        stage_timers: None,
    }
}

/// The PR-2 topology: unbounded queue, no external lane.
fn bp_legacy_cfg() -> GuardPoolConfig {
    GuardPoolConfig {
        workers: BP_THREADS,
        max_batch: 64,
        prioritizer: None,
        max_queued: usize::MAX,
        overflow: OverflowPolicy::Reject,
        external_workers: 0,
        stage_timers: None,
    }
}

/// A world with the fig9 embedded workload plus `BP_EXT_OBJECTS`
/// resources whose goal depends on the `Stale` external authority —
/// which answers nothing until `release` is set.
#[allow(clippy::type_complexity)]
fn bp_setup() -> (
    Arc<Nexus>,
    Vec<u64>,
    ResourceId,
    Vec<(u64, ResourceId)>,
    Arc<AtomicBool>,
) {
    let nexus = boot_with(NexusConfig::default());
    let object = ResourceId::new("bench", "fig9");
    let owner = nexus.spawn("owner", b"img");
    nexus.grant_ownership(owner, &object).unwrap();
    nexus
        .sys_setgoal(owner, object.clone(), "op", wide_goal())
        .unwrap();
    let pids: Vec<u64> = (0..BP_THREADS)
        .map(|t| {
            let pid = nexus.spawn(&format!("bp-{t}"), b"img");
            nexus
                .kernel_label(pid, Principal::name("Gate"), parse("g0").unwrap())
                .unwrap();
            nexus
                .sys_set_proof(pid, "op", &object, wide_proof())
                .unwrap();
            pid
        })
        .collect();
    let stale_goal = parse("Stale says fresh").unwrap();
    let ext: Vec<(u64, ResourceId)> = (0..BP_EXT_OBJECTS)
        .map(|i| {
            let obj = ResourceId::new("bench", format!("ext{i}"));
            nexus.grant_ownership(owner, &obj).unwrap();
            nexus
                .sys_setgoal(owner, obj.clone(), "op", stale_goal.clone())
                .unwrap();
            let pid = nexus.spawn(&format!("ext-{i}"), b"img");
            nexus
                .sys_set_proof(pid, "op", &obj, Proof::assume(stale_goal.clone()))
                .unwrap();
            (pid, obj)
        })
        .collect();
    let release = Arc::new(AtomicBool::new(false));
    let gate = Arc::clone(&release);
    nexus.register_authority(
        Principal::name("Stale"),
        Arc::new(FnAuthority(move |_s: &Formula| {
            // A stuck freshness service: answers nothing until the
            // measurement window closes, then says yes.
            while !gate.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(1));
            }
            true
        })),
        AuthorityKind::External,
    );
    // Miss-heavy regime, same as the scalability curve.
    nexus.set_config(NexusConfig {
        decision_cache: false,
        auto_prove: false,
        ..NexusConfig::default()
    });
    (Arc::new(nexus), pids, object, ext, release)
}

/// Measure one configuration for `window`: embedded threads count
/// completed authorizations until the deadline while (optionally)
/// hammer threads flood the stuck external authority.
fn bp_measure(
    mode: &'static str,
    cfg: GuardPoolConfig,
    hammer: bool,
    window: Duration,
) -> BackPressurePoint {
    let (nexus, pids, object, ext, release) = bp_setup();
    nexus.start_authz_pipeline(cfg);
    let deadline = Instant::now() + window;
    let external_submitted = Arc::new(AtomicU64::new(0));

    let mut embedded = Vec::new();
    for &pid in &pids {
        let nexus = Arc::clone(&nexus);
        let object = object.clone();
        embedded.push(std::thread::spawn(move || {
            let mut ops = 0u64;
            while Instant::now() < deadline {
                // Sync path: rides the pipeline, falls back inline on
                // a fault — exactly what a syscall does.
                assert!(nexus.authorize(pid, "op", &object).unwrap());
                ops += 1;
            }
            ops
        }));
    }
    let mut hammers = Vec::new();
    if hammer {
        for h in 0..BP_HAMMER_THREADS {
            let nexus = Arc::clone(&nexus);
            let ext = ext.clone();
            let submitted = Arc::clone(&external_submitted);
            hammers.push(std::thread::spawn(move || {
                let mut tickets = Vec::new();
                for i in 0..BP_HAMMER_REQS {
                    if Instant::now() >= deadline {
                        break;
                    }
                    let (pid, obj) = &ext[(h + i) % ext.len()];
                    tickets.push(nexus.authorize_async(*pid, "op", obj).unwrap());
                    submitted.fetch_add(1, Ordering::Relaxed);
                }
                // Tickets resolve once the authority un-sticks (or
                // instantly, as faults, past the high-water mark).
                for t in tickets {
                    let _ = t.wait();
                }
            }));
        }
    }
    let now = Instant::now();
    if deadline > now {
        std::thread::sleep(deadline - now);
    }
    release.store(true, Ordering::Relaxed);
    let embedded_ops: u64 = embedded.into_iter().map(|h| h.join().unwrap()).sum();
    for h in hammers {
        h.join().unwrap();
    }
    let stats = nexus.authz_stats().expect("pipeline running");
    nexus.stop_authz_pipeline();
    BackPressurePoint {
        mode,
        embedded_ops_per_s: embedded_ops as f64 / window.as_secs_f64(),
        external_submitted: external_submitted.load(Ordering::Relaxed),
        rejected: stats.rejected,
    }
}

/// Run the three configurations (baseline / isolated / legacy) with a
/// `window_ms`-long measurement window each.
pub fn run_back_pressure(window_ms: u64) -> Vec<BackPressurePoint> {
    let window = Duration::from_millis(window_ms);
    vec![
        bp_measure("baseline", bp_isolated_cfg(), false, window),
        bp_measure("isolated", bp_isolated_cfg(), true, window),
        bp_measure("legacy", bp_legacy_cfg(), true, window),
    ]
}

// ---- batch-aware prover mode ----
//
// The pipeline amortizes goal fetch + normalization per batch; this
// mode measures the next cost down: proof *search*. The workload is
// proof-heavy — no stored proofs, the kernel auto-proves every
// request from the subject's labels, and the goal is a conjunction of
// delegation-chain subgoals so each search walks the chain's handoff
// graph per conjunct. Two configurations, identical except for
// `NexusConfig::batch_prover`:
//
// * `per-request` — the legacy one-shot search per request, even
//   inside a coalesced batch;
// * `batch-aware` — one `ProofSearch` session per guard: a batch's
//   identical (goal, label-shape) requests are partitioned into
//   frontier-sharing groups, searched once per group, memoized
//   subgoals spliced into each request's proof (and into subsequent
//   batches' — the memo lives until the label epoch moves).

/// Handoff hops in the delegation chain (P0 → P1 → … → Owner).
pub const PROVER_CHAIN_LEN: usize = 10;
/// Conjuncts in the goal (each one walks the chain again).
pub const PROVER_GOAL_WIDTH: usize = 8;
/// Submitter threads.
const PROVER_THREADS: usize = 4;
/// Pool workers (fewer than submitters so batches actually form).
const PROVER_WORKERS: usize = 2;

/// One prover-mode configuration's measurement.
#[derive(Debug, Clone)]
pub struct ProverPoint {
    /// `per-request` or `batch-aware`.
    pub mode: &'static str,
    /// Authorizations per second.
    pub ops_per_s: f64,
    /// Prover memo hits over the run (0 for per-request).
    pub memo_hits: u64,
    /// Prover memo misses over the run.
    pub memo_misses: u64,
    /// Auto-proved goals over the run.
    pub proofs: u64,
    /// Frontier-sharing groups (root proof searches) over the run.
    pub groups: u64,
    /// Average coalesced batch size observed by the pool.
    pub avg_batch: f64,
}

impl ProverPoint {
    /// Memo hit rate in [0, 1]; 0 when the memo never engaged.
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }

    /// Fraction of auto-proved requests that rode a frontier-sharing
    /// group instead of running their own root search.
    pub fn share_rate(&self) -> f64 {
        if self.proofs == 0 {
            0.0
        } else {
            1.0 - self.groups as f64 / self.proofs as f64
        }
    }
}

/// The proof-heavy goal: `Owner says g0 and … and Owner says g{W-1}`.
fn prover_goal() -> Formula {
    (1..PROVER_GOAL_WIDTH).fold(parse("Owner says g0").unwrap(), |acc, k| {
        acc.and(parse(&format!("Owner says g{k}")).unwrap())
    })
}

/// Boot a kernel where every subject holds the same labels: the
/// handoff chain `P1 says (P0 sf P1) … Owner says (P{n-1} sf Owner)`
/// plus the payloads `P0 says gk` — so `Owner says gk` is provable
/// only by searching the chain. No stored proofs anywhere.
fn prover_setup(batch_prover: bool) -> (Arc<Nexus>, Vec<u64>, ResourceId) {
    let nexus = boot_with(NexusConfig::default());
    let object = ResourceId::new("bench", "fig9-prover");
    let owner = nexus.spawn("owner", b"img");
    nexus.grant_ownership(owner, &object).unwrap();
    nexus
        .sys_setgoal(owner, object.clone(), "op", prover_goal())
        .unwrap();
    let chain: Vec<(Principal, Formula)> = (0..PROVER_CHAIN_LEN)
        .map(|k| {
            let target = if k + 1 == PROVER_CHAIN_LEN {
                "Owner".to_string()
            } else {
                format!("P{}", k + 1)
            };
            (
                Principal::name(&target),
                parse(&format!("P{k} speaksfor {target}")).unwrap(),
            )
        })
        .collect();
    let pids: Vec<u64> = (0..PROVER_THREADS)
        .map(|t| {
            let pid = nexus.spawn(&format!("prover-{t}"), b"img");
            for (speaker, stmt) in &chain {
                nexus
                    .kernel_label(pid, speaker.clone(), stmt.clone())
                    .unwrap();
            }
            for k in 0..PROVER_GOAL_WIDTH {
                nexus
                    .kernel_label(pid, Principal::name("P0"), parse(&format!("g{k}")).unwrap())
                    .unwrap();
            }
            pid
        })
        .collect();
    // Proof-heavy regime: every request reaches the guard (no
    // decision cache) and must be auto-proved (no stored proofs).
    nexus.set_config(NexusConfig {
        decision_cache: false,
        batch_prover,
        ..NexusConfig::default()
    });
    (Arc::new(nexus), pids, object)
}

fn prover_measure(mode: &'static str, batch_prover: bool, iters: u64) -> ProverPoint {
    let (nexus, pids, object) = prover_setup(batch_prover);
    nexus.start_authz_pipeline(GuardPoolConfig {
        workers: PROVER_WORKERS,
        max_batch: 64,
        ..Default::default()
    });
    let ops_per_s = run_threads(&nexus, &pids, &object, iters, async_body);
    let stats = nexus.authz_stats().expect("pipeline running");
    let prover = nexus.guard_prover_stats();
    nexus.stop_authz_pipeline();
    ProverPoint {
        mode,
        ops_per_s,
        memo_hits: stats.prover_memo_hits,
        memo_misses: stats.prover_memo_misses,
        proofs: prover.proved + prover.failed,
        groups: prover.batch_groups,
        avg_batch: if stats.batches == 0 {
            0.0
        } else {
            stats.completed as f64 / stats.batches as f64
        },
    }
}

/// Run the per-request vs batch-aware prover comparison.
pub fn run_prover(iters: u64) -> Vec<ProverPoint> {
    vec![
        prover_measure("per-request", false, iters),
        prover_measure("batch-aware", true, iters),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_paths_authorize_correctly() {
        let _serial = crate::timing_guard();
        let (nexus, pids, object) = setup(2);
        assert!(nexus.authorize(pids[0], "op", &object).unwrap());
        nexus.start_authz_pipeline(GuardPoolConfig::default());
        let t = nexus.authorize_async(pids[1], "op", &object).unwrap();
        assert!(t.wait().is_allow());
        // A subject without the credential is denied on both paths.
        let stranger = nexus.spawn("stranger", b"img");
        assert!(!nexus.authorize(stranger, "op", &object).unwrap());
        nexus.stop_authz_pipeline();
    }

    #[test]
    fn seqlock_hit_path_stats_and_counts_are_sane() {
        let _serial = crate::timing_guard();
        // The acceptance criterion proper (seqlock ≥ mutexed at every
        // count, ≥ 1.5× at 32+) is asserted on the `reproduce` run;
        // here assert the harness itself: both paths produce
        // throughput, the sweep reaches 64 threads, and the seqlock
        // hit path never falls back to the locked lookup when no
        // writer is running.
        let counts = thread_counts();
        assert_eq!(counts.first(), Some(&1));
        assert!(counts.contains(&32) && counts.contains(&64));
        assert!(counts.windows(2).all(|w| w[0] < w[1]), "sweep not sorted");
        let p = measure_hits(4, 400);
        assert!(p.seqlock_ops_per_s > 0.0 && p.mutexed_ops_per_s > 0.0);
        assert_eq!(
            p.read_fallbacks, 0,
            "hit-only workload with no writers must never exhaust retries"
        );
        // Noisy-harness margin, same spirit as the async test below.
        assert!(
            p.speedup() >= 0.5,
            "seqlock {:.0}/s vs mutexed {:.0}/s",
            p.seqlock_ops_per_s,
            p.mutexed_ops_per_s
        );
    }

    #[test]
    fn async_batched_keeps_pace_with_sync_under_contention() {
        let _serial = crate::timing_guard();
        // The acceptance criterion proper (async ≥ sync at 8 threads)
        // is asserted on the `reproduce` run; under the test harness's
        // noisy parallelism allow a safety margin, but batching must
        // at least be in the same league.
        let p = measure(4, 400);
        assert!(
            p.async_ops_per_s >= 0.6 * p.sync_ops_per_s,
            "async {:.0}/s vs sync {:.0}/s",
            p.async_ops_per_s,
            p.sync_ops_per_s
        );
    }

    #[test]
    fn back_pressure_isolates_the_stuck_external_authority() {
        let _serial = crate::timing_guard();
        let pts = run_back_pressure(300);
        let find = |m: &str| pts.iter().find(|p| p.mode == m).unwrap().clone();
        let (baseline, isolated, legacy) = (find("baseline"), find("isolated"), find("legacy"));
        // The acceptance criterion proper (< 20% degradation) is
        // asserted on the `reproduce` run with a longer window; under
        // the noisy test harness allow a wide margin — but isolation
        // must clearly hold where the legacy topology clearly wedges.
        assert!(
            isolated.embedded_ops_per_s >= 0.35 * baseline.embedded_ops_per_s,
            "stuck external authority starved embedded traffic: isolated {:.0}/s vs baseline {:.0}/s",
            isolated.embedded_ops_per_s,
            baseline.embedded_ops_per_s
        );
        assert!(
            isolated.rejected > 0,
            "hammer never hit the high-water mark: {isolated:?}"
        );
        assert!(
            legacy.embedded_ops_per_s < 0.5 * isolated.embedded_ops_per_s,
            "legacy topology should collapse under the stuck authority: legacy {:.0}/s vs isolated {:.0}/s",
            legacy.embedded_ops_per_s,
            isolated.embedded_ops_per_s
        );
    }

    #[test]
    fn prover_modes_authorize_correctly() {
        let _serial = crate::timing_guard();
        for batch_prover in [false, true] {
            let (nexus, pids, object) = prover_setup(batch_prover);
            nexus.start_authz_pipeline(GuardPoolConfig::default());
            assert!(nexus.authorize(pids[0], "op", &object).unwrap());
            let t = nexus.authorize_async(pids[1], "op", &object).unwrap();
            assert!(t.wait().is_allow());
            // A subject without the chain labels is denied either way.
            let stranger = nexus.spawn("stranger", b"img");
            assert!(!nexus.authorize(stranger, "op", &object).unwrap());
            nexus.stop_authz_pipeline();
        }
    }

    #[test]
    fn batch_aware_prover_shares_the_frontier() {
        let _serial = crate::timing_guard();
        let pts = run_prover(100);
        let per_request = &pts[0];
        let batch_aware = &pts[1];
        assert_eq!(
            per_request.memo_hits, 0,
            "legacy mode must not touch the prover memo"
        );
        assert!(
            batch_aware.memo_hits > 0,
            "batch-aware mode must share derivations: {batch_aware:?}"
        );
        assert!(
            batch_aware.share_rate() > 0.5,
            "most auto-proves should ride a frontier-sharing group: {batch_aware:?}"
        );
        // The acceptance criterion proper (≥ 1.3× at batch ≥ 4) is
        // asserted on the release `reproduce fig9-prover` run; under
        // the noisy debug test harness just require batch-aware not to
        // be slower.
        assert!(
            batch_aware.ops_per_s >= 0.9 * per_request.ops_per_s,
            "batch-aware {:.0}/s vs per-request {:.0}/s",
            batch_aware.ops_per_s,
            per_request.ops_per_s
        );
    }

    #[test]
    fn pipeline_actually_batches_this_workload() {
        let _serial = crate::timing_guard();
        let (nexus, pids, object) = setup(4);
        let pool = nexus.start_authz_pipeline(GuardPoolConfig {
            workers: 1,
            max_batch: 64,
            ..Default::default()
        });
        let tickets: Vec<_> = (0..64)
            .map(|i| {
                nexus
                    .authorize_async(pids[i % pids.len()], "op", &object)
                    .unwrap()
            })
            .collect();
        for t in tickets {
            assert!(t.wait().is_allow());
        }
        pool.quiesce();
        let stats = nexus.authz_stats().unwrap();
        assert!(
            stats.coalesced > 0,
            "same-goal requests through one worker must coalesce: {stats:?}"
        );
        nexus.stop_authz_pipeline();
    }
}
