//! Figure 8: application-level impact of access control,
//! interpositioning, and attested storage on web-serving throughput
//! (static files and dynamic PyLite content) across file sizes.

use crate::boot_with;
use nexus_analyzers::pylite::{self, PyValue};
use nexus_core::{AuthorityKind, FnAuthority, ResourceId};
use nexus_kernel::{Interceptor, IpcCall, MonitorLevel, Nexus, NexusConfig, Verdict};
use nexus_nal::{parse, Principal, Proof};
use nexus_storage::SsrConfig;
use std::sync::Arc;

/// Access-control column (left pair of plots).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcMode {
    /// No authorization checks.
    None,
    /// Cacheable (label-backed) proof per request.
    Static,
    /// External authority consulted per request.
    Dynamic,
}

/// Interposition column (middle pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonMode {
    None,
    KernelCached,
    KernelUncached,
    UserCached,
    UserUncached,
}

/// Attested-storage column (right pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreMode {
    /// Plain RAM filesystem.
    None,
    /// SSR with hash-tree integrity.
    Hash,
    /// SSR with integrity + AES-CTR decryption.
    Decrypt,
}

/// Server flavor (top vs bottom row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerKind {
    StaticFiles,
    Python,
}

struct PassMonitor;
impl Interceptor for PassMonitor {
    fn name(&self) -> &str {
        "fig8-monitor"
    }
    fn on_call(&mut self, _call: &mut IpcCall) -> Verdict {
        Verdict::Continue
    }
    fn cacheable(&self) -> bool {
        true
    }
}

/// One web-serving world.
pub struct WebBench {
    nexus: Nexus,
    pid: u64,
    object: ResourceId,
    path: String,
    ssr: Option<&'static str>,
    port: Option<u64>,
    kind: ServerKind,
    ac: AcMode,
    size: usize,
}

impl WebBench {
    /// Build a world serving one file of `size` bytes.
    pub fn new(
        kind: ServerKind,
        ac: AcMode,
        mon: MonMode,
        store: StoreMode,
        size: usize,
    ) -> WebBench {
        // Defaults during setup (auto-prove discharges setgoal);
        // measurement config applied at the end.
        let nexus = boot_with(NexusConfig::default());
        let pid = nexus.spawn("www", b"www-image");
        let path = "/www/index".to_string();
        let object = ResourceId::file(&path);
        let body = vec![0x42u8; size];

        // Storage backend.
        let ssr = match store {
            StoreMode::None => {
                nexus.fs_raw().create(&path, pid).unwrap();
                nexus.fs_raw().write_all(&path, &body).unwrap();
                None
            }
            StoreMode::Hash | StoreMode::Decrypt => {
                let encrypt = if store == StoreMode::Decrypt {
                    Some(nexus.vkeys().create_symmetric(&mut nexus.tpm()))
                } else {
                    None
                };
                let ssr_cfg = SsrConfig {
                    block_size: 1024,
                    encrypt_with: encrypt,
                };
                let mut ssrs = nexus.ssrs();
                let mut vdirs = nexus.vdirs();
                ssrs.create("www", ssr_cfg, &mut vdirs, &mut nexus.tpm())
                    .unwrap();
                ssrs.write_all("www", &body, &mut *nexus.disk(), &mut vdirs, &nexus.vkeys())
                    .unwrap();
                Some("www")
            }
        };

        // Access control.
        let owner_goal = match ac {
            AcMode::None => None,
            AcMode::Static => Some(parse("Owner says ok").unwrap()),
            AcMode::Dynamic => Some(parse("Sessions says active(www)").unwrap()),
        };
        if let Some(goal) = owner_goal {
            nexus.grant_ownership(pid, &object).unwrap();
            nexus
                .sys_setgoal(pid, object.clone(), "get", goal.clone())
                .unwrap();
            match ac {
                AcMode::Static => {
                    nexus
                        .kernel_label(pid, Principal::name("Owner"), parse("ok").unwrap())
                        .unwrap();
                    nexus
                        .sys_set_proof(pid, "get", &object, Proof::assume(goal))
                        .unwrap();
                }
                AcMode::Dynamic => {
                    nexus
                        .sys_set_proof(pid, "get", &object, Proof::assume(goal))
                        .unwrap();
                    nexus.register_authority(
                        Principal::name("Sessions"),
                        Arc::new(FnAuthority(|s: &nexus_nal::Formula| {
                            s.to_string() == "active(www)"
                        })),
                        AuthorityKind::External,
                    );
                }
                AcMode::None => unreachable!(),
            }
        }

        // Interposition on the request channel.
        let port = match mon {
            MonMode::None => None,
            _ => {
                let port = nexus.create_port(pid).unwrap();
                let level = match mon {
                    MonMode::KernelCached | MonMode::KernelUncached => MonitorLevel::Kernel,
                    _ => MonitorLevel::User,
                };
                nexus
                    .interpose(pid, port, Box::new(PassMonitor), level)
                    .unwrap();
                nexus
                    .redirector()
                    .set_caching(matches!(mon, MonMode::KernelCached | MonMode::UserCached));
                Some(port)
            }
        };

        nexus.set_config(NexusConfig {
            authorize_fs: false, // serve() authorizes explicitly
            auto_prove: false,
            ..NexusConfig::default()
        });
        WebBench {
            nexus,
            pid,
            object,
            path,
            ssr,
            port,
            kind,
            ac,
            size,
        }
    }

    /// Serve one request; returns the response length.
    pub fn serve(&mut self) -> usize {
        // Request enters over the (possibly monitored) channel.
        if let Some(port) = self.port {
            self.nexus
                .ipc_send(self.pid, port, b"GET /index".to_vec())
                .expect("request");
            let _ = self.nexus.ipc_recv(self.pid, port);
        }
        // Access control.
        if self.ac != AcMode::None {
            let ok = self
                .nexus
                .authorize(self.pid, "get", &self.object)
                .expect("authorize");
            assert!(ok, "request must be authorized");
        }
        // Fetch the body.
        let body = match self.ssr {
            None => self.nexus.fs_raw().read_all(&self.path).expect("read"),
            Some(name) => {
                let ssrs = self.nexus.ssrs();
                let body = ssrs
                    .read_all(
                        name,
                        &*self.nexus.disk(),
                        &self.nexus.vdirs(),
                        &self.nexus.vkeys(),
                    )
                    .expect("ssr read");
                body
            }
        };
        // Dynamic content: the PyLite handler assembles the page.
        match self.kind {
            ServerKind::StaticFiles => body.len(),
            ServerKind::Python => {
                let mut interp = pylite::Interpreter::new();
                let len = body.len();
                interp.bind("body", PyValue::Handle(1));
                interp.register(
                    "render",
                    Box::new(move |_args| Ok(PyValue::Int(len as i64))),
                );
                let prog = pylite::parse("out = render(body)").expect("handler");
                interp.run(&prog).expect("tenant handler");
                match interp.get("out") {
                    Some(PyValue::Int(n)) => *n as usize,
                    _ => 0,
                }
            }
        }
    }

    /// Body size.
    pub fn size(&self) -> usize {
        self.size
    }
}

#[derive(Debug, Clone)]
pub struct Point {
    pub kind: &'static str,
    pub column: &'static str,
    pub variant: &'static str,
    pub size: usize,
    pub rps: f64,
}

fn measure(
    kind: ServerKind,
    ac: AcMode,
    mon: MonMode,
    store: StoreMode,
    size: usize,
    reqs: u64,
) -> f64 {
    let mut world = WebBench::new(kind, ac, mon, store, size);
    for _ in 0..8 {
        world.serve();
    }
    let start = std::time::Instant::now();
    for _ in 0..reqs {
        world.serve();
    }
    reqs as f64 / start.elapsed().as_secs_f64()
}

/// Sizes on the x-axis (100 B to 1 MB, log scale in the paper).
pub const SIZES: [usize; 5] = [100, 1_000, 10_000, 100_000, 1_000_000];

/// The full sweep.
pub fn run(reqs: u64) -> Vec<Point> {
    let mut out = Vec::new();
    for (kind, kname) in [
        (ServerKind::StaticFiles, "static"),
        (ServerKind::Python, "www"),
    ] {
        for size in SIZES {
            // Column 1: access control.
            for (ac, vname) in [
                (AcMode::None, "none"),
                (AcMode::Static, "static"),
                (AcMode::Dynamic, "dynamic"),
            ] {
                out.push(Point {
                    kind: kname,
                    column: "access control",
                    variant: vname,
                    size,
                    rps: measure(kind, ac, MonMode::None, StoreMode::None, size, reqs),
                });
            }
            // Column 2: interposition.
            for (mon, vname) in [
                (MonMode::None, "none"),
                (MonMode::KernelCached, "kernel +"),
                (MonMode::KernelUncached, "kernel -"),
                (MonMode::UserCached, "user +"),
                (MonMode::UserUncached, "user -"),
            ] {
                out.push(Point {
                    kind: kname,
                    column: "introspection",
                    variant: vname,
                    size,
                    rps: measure(kind, AcMode::None, mon, StoreMode::None, size, reqs),
                });
            }
            // Column 3: attested storage.
            for (store, vname) in [
                (StoreMode::None, "none"),
                (StoreMode::Hash, "hash"),
                (StoreMode::Decrypt, "decrypt"),
            ] {
                out.push(Point {
                    kind: kname,
                    column: "attested storage",
                    variant: vname,
                    size,
                    rps: measure(kind, AcMode::None, MonMode::None, store, size, reqs),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_works_in_every_mode() {
        for kind in [ServerKind::StaticFiles, ServerKind::Python] {
            for ac in [AcMode::None, AcMode::Static, AcMode::Dynamic] {
                let mut w = WebBench::new(kind, ac, MonMode::None, StoreMode::None, 1000);
                assert_eq!(w.serve(), 1000);
            }
            for store in [StoreMode::Hash, StoreMode::Decrypt] {
                let mut w = WebBench::new(kind, AcMode::None, MonMode::None, store, 1000);
                assert_eq!(w.serve(), 1024, "SSR pads to block size");
            }
            for mon in [MonMode::KernelCached, MonMode::UserUncached] {
                let mut w = WebBench::new(kind, AcMode::None, mon, StoreMode::None, 500);
                assert_eq!(w.serve(), 500);
            }
        }
    }

    #[test]
    fn static_ac_is_cheap_dynamic_costs() {
        let _serial = crate::timing_guard();
        let none = measure(
            ServerKind::StaticFiles,
            AcMode::None,
            MonMode::None,
            StoreMode::None,
            1000,
            500,
        );
        let dynamic = measure(
            ServerKind::StaticFiles,
            AcMode::Dynamic,
            MonMode::None,
            StoreMode::None,
            1000,
            500,
        );
        assert!(
            none > dynamic,
            "dynamic AC ({dynamic:.0} rps) must cost more than none ({none:.0} rps)"
        );
    }

    #[test]
    fn encryption_costs_most_at_large_sizes() {
        let _serial = crate::timing_guard();
        let plain = measure(
            ServerKind::StaticFiles,
            AcMode::None,
            MonMode::None,
            StoreMode::None,
            1_000_000,
            20,
        );
        let decrypt = measure(
            ServerKind::StaticFiles,
            AcMode::None,
            MonMode::None,
            StoreMode::Decrypt,
            1_000_000,
            20,
        );
        assert!(
            plain > decrypt,
            "decryption ({decrypt:.0} rps) must be slower than plain ({plain:.0} rps)"
        );
    }
}
