//! Table 1: system call overhead — Nexus bare (no interposition),
//! Nexus (interposed), and a direct/monolithic comparator standing in
//! for Linux.

use crate::{boot_with, time_ns};
use nexus_kernel::{Nexus, NexusConfig, Syscall};

/// One measured row.
#[derive(Debug, Clone)]
pub struct Row {
    pub call: &'static str,
    pub bare_ns: f64,
    pub nexus_ns: f64,
    pub direct_ns: f64,
}

fn prep(cfg: NexusConfig) -> (Nexus, u64, u64) {
    let nexus = boot_with(cfg);
    let parent = nexus.spawn("bench-parent", b"img");
    let pid = nexus.spawn_child(parent, "bench", b"img").unwrap();
    nexus.fs_create(pid, "/bench").unwrap();
    // Warm the authorization path so file ops measure the cached
    // steady state, as the paper's medians do.
    let _ = nexus.syscall(pid, Syscall::Open("/bench".into()));
    (nexus, pid, parent)
}

fn measure(nexus: &mut Nexus, pid: u64, which: &str, iters: u64) -> f64 {
    match which {
        "null" => time_ns(iters, || {
            nexus.syscall(pid, Syscall::Null).unwrap();
        }),
        "getppid" => time_ns(iters, || {
            nexus.syscall(pid, Syscall::GetPpid).unwrap();
        }),
        "gettimeofday" => time_ns(iters, || {
            nexus.syscall(pid, Syscall::GetTimeOfDay).unwrap();
        }),
        "yield" => time_ns(iters, || {
            nexus.syscall(pid, Syscall::Yield).unwrap();
        }),
        "open" => time_ns(iters, || {
            if let Ok(nexus_kernel::SysRet::Int(fd)) =
                nexus.syscall(pid, Syscall::Open("/bench".into()))
            {
                let _ = nexus.fs_raw().close(fd);
            }
        }),
        "close" => time_ns(iters, || {
            let fd = nexus.fs_raw().open("/bench").unwrap();
            nexus.syscall(pid, Syscall::Close(fd)).unwrap();
        }),
        "read" => {
            let fd = match nexus.syscall(pid, Syscall::Open("/bench".into())).unwrap() {
                nexus_kernel::SysRet::Int(fd) => fd,
                _ => unreachable!(),
            };
            time_ns(iters, || {
                nexus.syscall(pid, Syscall::Read(fd, 64)).unwrap();
            })
        }
        "write" => {
            let fd = match nexus.syscall(pid, Syscall::Open("/bench".into())).unwrap() {
                nexus_kernel::SysRet::Int(fd) => fd,
                _ => unreachable!(),
            };
            time_ns(iters, || {
                nexus
                    .syscall(pid, Syscall::Write(fd, vec![0u8; 64]))
                    .unwrap();
            })
        }
        other => panic!("unknown call {other}"),
    }
}

/// The "Linux" comparator: a monolithic kernel's syscall is a direct
/// handler invocation with no IPC hops or interposition.
fn measure_direct(nexus: &mut Nexus, pid: u64, parent: u64, which: &str, iters: u64) -> f64 {
    match which {
        "null" => time_ns(iters, || {
            std::hint::black_box(());
        }),
        "getppid" => time_ns(iters, || {
            std::hint::black_box(parent);
            let _ = nexus.ipds().get(pid).map(|i| i.parent);
        }),
        "gettimeofday" => time_ns(iters, || {
            let _ = std::hint::black_box(std::time::SystemTime::now());
        }),
        "yield" => time_ns(iters, || {
            nexus.sched().next();
        }),
        "open" => time_ns(iters, || {
            let fd = nexus.fs_raw().open("/bench").unwrap();
            let _ = nexus.fs_raw().close(fd);
        }),
        "close" => time_ns(iters, || {
            let fd = nexus.fs_raw().open("/bench").unwrap();
            nexus.fs_raw().close(fd).unwrap();
        }),
        "read" => {
            let fd = nexus.fs_raw().open("/bench").unwrap();
            time_ns(iters, || {
                let _ = nexus.fs_raw().read(fd, 64);
            })
        }
        "write" => {
            let fd = nexus.fs_raw().open("/bench").unwrap();
            time_ns(iters, || {
                let _ = nexus.fs_raw().write(fd, &[0u8; 64]);
            })
        }
        other => panic!("unknown call {other}"),
    }
}

/// Run the whole table.
pub fn run(iters: u64) -> Vec<Row> {
    let calls = [
        "null",
        "getppid",
        "gettimeofday",
        "yield",
        "open",
        "close",
        "read",
        "write",
    ];
    let bare_cfg = NexusConfig {
        interpose_syscalls: false,
        ..NexusConfig::default()
    };
    let nexus_cfg = NexusConfig::default();
    let mut rows = Vec::new();
    for call in calls {
        let (mut bare, pid_b, _) = prep(bare_cfg);
        let bare_ns = measure(&mut bare, pid_b, call, iters);
        let (mut full, pid_f, _) = prep(nexus_cfg);
        let nexus_ns = measure(&mut full, pid_f, call, iters);
        let (mut dir, pid_d, parent_d) = prep(bare_cfg);
        let direct_ns = measure_direct(&mut dir, pid_d, parent_d, call, iters);
        rows.push(Row {
            call,
            bare_ns,
            nexus_ns,
            direct_ns,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_hold() {
        let _serial = crate::timing_guard();
        let rows = run(200);
        let by_name = |n: &str| rows.iter().find(|r| r.call == n).unwrap().clone();
        // Interposition adds cost to the null call.
        let null = by_name("null");
        assert!(
            null.nexus_ns > null.bare_ns,
            "interposed null ({:.0}ns) must exceed bare ({:.0}ns)",
            null.nexus_ns,
            null.bare_ns
        );
        // File operations cost more on Nexus than direct (user-level
        // server IPC hops).
        for f in ["open", "read", "write"] {
            let r = by_name(f);
            assert!(
                r.nexus_ns > r.direct_ns,
                "{f}: nexus {:.0}ns vs direct {:.0}ns",
                r.nexus_ns,
                r.direct_ns
            );
        }
    }
}
