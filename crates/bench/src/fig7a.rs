//! Figure 7a (beyond the paper): analysis cost vs credential reuse.
//!
//! The attestation analyzer (ISSUE 8) is a labeling function: the
//! expensive static analysis runs once at first contact, mints
//! `panic_free` into the encoder's labelstore, and every later
//! authorization discharges the CertiPics upload goal from that
//! credential — a decision-cache hit after the first proof. The
//! alternative the paper's analytic basis replaces is re-establishing
//! the property on every request. This bench measures both against the
//! same CertiPics upload gate:
//!
//! * **reanalyze-per-auth** — every upload is preceded by a forced
//!   re-analysis (revoke → analyze → re-mint, flushing the decision
//!   cache and prover memo through the label-removal epoch), so each
//!   authorization pays the full analysis plus an uncached proof;
//! * **first-contact** — the one-time cost of registering an encoder:
//!   analysis, minting, and the first (uncached) authorization;
//! * **credential-reuse** — steady state: uploads authorized against
//!   the standing credential, decision-cache hits throughout.
//!
//! Acceptance bound (checked in the test and recorded in the ROADMAP):
//! credential reuse is ≥ 5× cheaper per authorization than
//! re-analysis.

use crate::{boot_with, time_ns};
use nexus_apps::certipics::{sample_encoder, CertiPicsService, Image};
use nexus_kernel::{Nexus, NexusConfig};
use std::sync::Arc;

/// Stage functions in the benchmark encoder binary (analysis size).
pub const ENCODER_WIDTH: usize = 32;

/// One mode's measurement.
#[derive(Debug, Clone)]
pub struct Fig7aPoint {
    /// `"reanalyze-per-auth"`, `"first-contact"`, or
    /// `"credential-reuse"`.
    pub mode: &'static str,
    /// Nanoseconds per authorized upload in this mode.
    pub ns_per_auth: f64,
    /// Authorizations measured.
    pub auths: u64,
    /// Analyzer runs this mode triggered (`nexus_attest_analyses_total`
    /// delta).
    pub analyses: u64,
    /// Credentials minted during the mode.
    pub minted: u64,
}

fn deploy() -> (Arc<Nexus>, CertiPicsService) {
    let nexus = Arc::new(boot_with(NexusConfig::default()));
    let svc = CertiPicsService::deploy(Arc::clone(&nexus)).expect("deploy");
    (nexus, svc)
}

/// Run the three modes, `auths` authorizations each.
pub fn run(auths: u64) -> Vec<Fig7aPoint> {
    let auths = auths.max(1);
    let binary = sample_encoder("fig7a-encoder", ENCODER_WIDTH);
    let img = Image::solid(16, 16, 128);
    let mut points = Vec::new();

    // --- reanalyze-per-auth ---
    {
        let (nexus, svc) = deploy();
        let (pid, _) = svc
            .register_encoder("encoder-a", &binary)
            .expect("register");
        let before = nexus.attest_stats();
        let ns = time_ns(auths, || {
            svc.analyzer()
                .attest_binary_with(&nexus, pid, &binary, true)
                .expect("re-attest");
            assert!(svc.upload(pid, &img).expect("upload"));
        });
        let after = nexus.attest_stats();
        points.push(Fig7aPoint {
            mode: "reanalyze-per-auth",
            ns_per_auth: ns,
            auths,
            analyses: after.analyses_run - before.analyses_run,
            minted: after.credentials_minted - before.credentials_minted,
        });
    }

    // --- first-contact + credential-reuse (one fresh world) ---
    {
        let (nexus, svc) = deploy();
        let before = nexus.attest_stats();
        let first_ns = time_ns(1, || {
            let (pid, att) = svc
                .register_encoder("encoder-b", &binary)
                .expect("register");
            assert!(!att.minted.is_empty());
            assert!(svc.upload(pid, &img).expect("upload"));
        });
        let after = nexus.attest_stats();
        points.push(Fig7aPoint {
            mode: "first-contact",
            ns_per_auth: first_ns,
            auths: 1,
            analyses: after.analyses_run - before.analyses_run,
            minted: after.credentials_minted - before.credentials_minted,
        });

        // Steady state: the credential (and the cached decision) do
        // all the work.
        let pid = nexus.spawn("encoder-c", b"encoder-c-image");
        svc.analyzer()
            .attest_binary(&nexus, pid, &binary)
            .expect("attest");
        assert!(svc.upload(pid, &img).expect("prime"));
        let before = nexus.attest_stats();
        let ns = time_ns(auths, || {
            assert!(svc.upload(pid, &img).expect("upload"));
        });
        let after = nexus.attest_stats();
        points.push(Fig7aPoint {
            mode: "credential-reuse",
            ns_per_auth: ns,
            auths,
            analyses: after.analyses_run - before.analyses_run,
            minted: after.credentials_minted - before.credentials_minted,
        });
    }

    points
}

/// Reuse-vs-reanalysis speedup from a run's points.
pub fn speedup(points: &[Fig7aPoint]) -> f64 {
    let ns_of = |mode: &str| {
        points
            .iter()
            .find(|p| p.mode == mode)
            .map(|p| p.ns_per_auth)
            .unwrap_or(f64::NAN)
    };
    ns_of("reanalyze-per-auth") / ns_of("credential-reuse")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credential_reuse_beats_reanalysis_5x() {
        let _guard = crate::timing_guard();
        let points = run(200);
        assert_eq!(points.len(), 3);
        let reanalyze = &points[0];
        assert_eq!(reanalyze.mode, "reanalyze-per-auth");
        assert_eq!(
            reanalyze.analyses, 200,
            "forced mode must re-analyze per auth"
        );
        let reuse = &points[2];
        assert_eq!(reuse.mode, "credential-reuse");
        assert_eq!(reuse.analyses, 0, "steady state must not re-analyze");
        assert_eq!(reuse.minted, 0);
        let s = speedup(&points);
        assert!(
            s >= 5.0,
            "credential reuse must be ≥5× cheaper than re-analysis per auth, got {s:.1}×"
        );
    }
}
