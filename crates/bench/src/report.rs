//! Machine-readable results: every figure's points assembled into one
//! JSON document (`reproduce --json <path>`), so runs can be diffed,
//! plotted, and regression-gated without scraping the printed tables.
//!
//! The document is a single object with one key per figure; each
//! figure's value is the same point list the printed table renders,
//! as an array of objects keyed by the point-struct field names. A
//! `meta` object records the mode and workload knobs the run used.

use crate::{fig11, fig12, fig4, fig5, fig6, fig7, fig7a, fig8, fig9, table1};
use serde::Value;

/// Workload sizes for one report run (the `quick`/full split the
/// printed tables use, plus the fig12 A/B knobs).
#[derive(Debug, Clone)]
pub struct ReportConfig {
    /// `"quick"`, `"full"`, or `"smoke"` — recorded in `meta`.
    pub mode: &'static str,
    /// Iterations for table1/fig4/fig5/fig6.
    pub iters: u64,
    /// Packets per fig7 configuration.
    pub pkts: u64,
    /// Requests per fig8 cell.
    pub reqs: u64,
    /// Authorizations per fig7a mode.
    pub fig7a_auths: u64,
    /// Rounds for the fig4 associativity ablation.
    pub assoc_rounds: u64,
    /// Iterations for the fig9 scalability curve.
    pub fig9_iters: u64,
    /// Iterations for the fig9 hit-path A/B.
    pub hits_iters: u64,
    /// Measurement window for the fig9 back-pressure mode.
    pub bp_window_ms: u64,
    /// Iterations for the fig9 prover comparison.
    pub prover_iters: u64,
    /// Hits per fig12 rep.
    pub fig12_iters: u64,
    /// Interleaved fig12 reps per mode.
    pub fig12_reps: usize,
    /// Timed revocation rounds per fig11 cluster size.
    pub fig11_revocations: u64,
    /// Authorization calls per fig11 cluster size.
    pub fig11_authz: u64,
}

impl ReportConfig {
    /// The `reproduce quick` workload sizes.
    pub fn quick() -> Self {
        ReportConfig {
            mode: "quick",
            iters: 300,
            pkts: 2_000,
            reqs: 50,
            fig7a_auths: 300,
            assoc_rounds: 48,
            fig9_iters: 300,
            hits_iters: 20_000,
            bp_window_ms: 500,
            prover_iters: 100,
            fig12_iters: 20_000,
            fig12_reps: 3,
            fig11_revocations: 10,
            fig11_authz: 2_000,
        }
    }

    /// The full (no-argument `reproduce`) workload sizes.
    pub fn full() -> Self {
        ReportConfig {
            mode: "full",
            iters: 2_000,
            pkts: 20_000,
            reqs: 300,
            fig7a_auths: 1_000,
            assoc_rounds: 256,
            fig9_iters: 2_000,
            hits_iters: 200_000,
            bp_window_ms: 1_500,
            prover_iters: 600,
            fig12_iters: 100_000,
            fig12_reps: 5,
            fig11_revocations: 40,
            fig11_authz: 10_000,
        }
    }

    /// Minimal sizes for tests: every figure still runs, nothing is
    /// statistically meaningful.
    pub fn smoke() -> Self {
        ReportConfig {
            mode: "smoke",
            iters: 5,
            pkts: 50,
            reqs: 2,
            fig7a_auths: 5,
            assoc_rounds: 2,
            fig9_iters: 5,
            hits_iters: 200,
            bp_window_ms: 50,
            prover_iters: 4,
            fig12_iters: 200,
            fig12_reps: 1,
            fig11_revocations: 1,
            fig11_authz: 50,
        }
    }
}

fn key(k: &str) -> Value {
    Value::Str(k.to_string())
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(entries.into_iter().map(|(k, v)| (key(k), v)).collect())
}

fn s(x: &str) -> Value {
    Value::Str(x.to_string())
}

fn f(x: f64) -> Value {
    Value::F64(x)
}

fn u(x: u64) -> Value {
    Value::U64(x)
}

/// Every figure key `generate` emits, in document order.
pub const FIGURES: [&str; 14] = [
    "table1",
    "fig4",
    "fig4_assoc",
    "fig5",
    "fig6",
    "fig7",
    "fig7a",
    "fig8",
    "fig9",
    "fig9_hits",
    "fig9_bp",
    "fig9_prover",
    "fig11",
    "fig12",
];

fn meta(cfg: &ReportConfig) -> Value {
    obj(vec![
        ("mode", s(cfg.mode)),
        ("iters", u(cfg.iters)),
        ("pkts", u(cfg.pkts)),
        ("reqs", u(cfg.reqs)),
    ])
}

/// Run one figure at `cfg`'s sizes; `None` for an unknown key.
pub fn section(figure: &str, cfg: &ReportConfig) -> Option<Value> {
    let v = match figure {
        "table1" => Value::Seq(
            table1::run(cfg.iters)
                .iter()
                .map(|r| {
                    obj(vec![
                        ("call", s(r.call)),
                        ("bare_ns", f(r.bare_ns)),
                        ("nexus_ns", f(r.nexus_ns)),
                        ("direct_ns", f(r.direct_ns)),
                    ])
                })
                .collect(),
        ),
        "fig4" => Value::Seq(
            fig4::run(cfg.iters)
                .iter()
                .map(|p| {
                    obj(vec![
                        ("case", s(p.case)),
                        ("cached_ns", f(p.cached_ns)),
                        ("uncached_ns", f(p.uncached_ns)),
                    ])
                })
                .collect(),
        ),
        "fig4_assoc" => Value::Seq(
            fig4::associativity(cfg.assoc_rounds)
                .iter()
                .map(|p| {
                    obj(vec![
                        ("ways", u(p.ways as u64)),
                        ("hits", u(p.hits)),
                        ("misses", u(p.misses)),
                        ("hit_rate", f(p.hit_rate())),
                    ])
                })
                .collect(),
        ),
        "fig5" => Value::Seq(
            fig5::run(cfg.iters.min(500), 20)
                .iter()
                .map(|p| {
                    obj(vec![
                        ("family", s(p.family)),
                        ("rules", u(p.rules as u64)),
                        ("eval_ns", f(p.eval_ns)),
                        ("full_ns", f(p.full_ns)),
                    ])
                })
                .collect(),
        ),
        "fig6" => Value::Seq(
            fig6::run(cfg.iters)
                .iter()
                .map(|p| obj(vec![("op", s(p.op)), ("ns", f(p.ns))]))
                .collect(),
        ),
        "fig7" => Value::Seq(
            fig7::run(cfg.pkts)
                .iter()
                .map(|p| {
                    obj(vec![
                        ("config", s(p.config)),
                        ("pkt_size", u(p.pkt_size as u64)),
                        ("pps", f(p.pps)),
                    ])
                })
                .collect(),
        ),
        "fig7a" => Value::Seq(
            fig7a::run(cfg.fig7a_auths)
                .iter()
                .map(|p| {
                    obj(vec![
                        ("mode", s(p.mode)),
                        ("ns_per_auth", f(p.ns_per_auth)),
                        ("auths", u(p.auths)),
                        ("analyses", u(p.analyses)),
                        ("minted", u(p.minted)),
                    ])
                })
                .collect(),
        ),
        "fig8" => Value::Seq(
            fig8::run(cfg.reqs)
                .iter()
                .map(|p| {
                    obj(vec![
                        ("kind", s(p.kind)),
                        ("column", s(p.column)),
                        ("variant", s(p.variant)),
                        ("size", u(p.size as u64)),
                        ("rps", f(p.rps)),
                    ])
                })
                .collect(),
        ),
        "fig9" => Value::Seq(
            fig9::run(cfg.fig9_iters)
                .iter()
                .map(|p| {
                    obj(vec![
                        ("threads", u(p.threads as u64)),
                        ("sync_ops_per_s", f(p.sync_ops_per_s)),
                        ("async_ops_per_s", f(p.async_ops_per_s)),
                    ])
                })
                .collect(),
        ),
        "fig9_hits" => Value::Seq(
            fig9::run_hits(cfg.hits_iters)
                .iter()
                .map(|p| {
                    obj(vec![
                        ("threads", u(p.threads as u64)),
                        ("seqlock_ops_per_s", f(p.seqlock_ops_per_s)),
                        ("mutexed_ops_per_s", f(p.mutexed_ops_per_s)),
                        ("read_retries", u(p.read_retries)),
                        ("read_fallbacks", u(p.read_fallbacks)),
                    ])
                })
                .collect(),
        ),
        "fig9_bp" => Value::Seq(
            fig9::run_back_pressure(cfg.bp_window_ms)
                .iter()
                .map(|p| {
                    obj(vec![
                        ("mode", s(p.mode)),
                        ("embedded_ops_per_s", f(p.embedded_ops_per_s)),
                        ("external_submitted", u(p.external_submitted)),
                        ("rejected", u(p.rejected)),
                    ])
                })
                .collect(),
        ),
        "fig9_prover" => Value::Seq(
            fig9::run_prover(cfg.prover_iters)
                .iter()
                .map(|p| {
                    obj(vec![
                        ("mode", s(p.mode)),
                        ("ops_per_s", f(p.ops_per_s)),
                        ("memo_hits", u(p.memo_hits)),
                        ("memo_misses", u(p.memo_misses)),
                        ("proofs", u(p.proofs)),
                        ("groups", u(p.groups)),
                        ("avg_batch", f(p.avg_batch)),
                    ])
                })
                .collect(),
        ),
        "fig11" => Value::Seq(
            fig11::run(cfg.fig11_revocations, cfg.fig11_authz)
                .iter()
                .map(|p| {
                    obj(vec![
                        ("nodes", u(p.nodes as u64)),
                        ("revoke_latency_us", f(p.revoke_latency_us)),
                        ("msgs_per_revoke", f(p.msgs_per_revoke)),
                        ("authz_ops_per_s", f(p.authz_ops_per_s)),
                        ("revocations", u(p.revocations)),
                    ])
                })
                .collect(),
        ),
        "fig12" => {
            let r = fig12::run(cfg.fig12_iters, cfg.fig12_reps);
            obj(vec![
                ("disabled_ops_per_s", f(r.disabled_ops_per_s)),
                ("enabled_ops_per_s", f(r.enabled_ops_per_s)),
                ("overhead_pct", f(r.overhead_pct())),
                ("audit_recorded", u(r.audit_recorded)),
                ("reps", u(r.reps as u64)),
            ])
        }
        _ => return None,
    };
    Some(v)
}

/// Run every figure at `cfg`'s sizes and render the combined JSON
/// document.
pub fn generate(cfg: &ReportConfig) -> String {
    let mut doc: Vec<(Value, Value)> = vec![(key("meta"), meta(cfg))];
    for fig in FIGURES {
        doc.push((key(fig), section(fig, cfg).expect("known figure")));
    }

    serde_json::to_string(&Value::Map(doc)).expect("report serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every figure must appear in the emitted JSON, and the document
    /// must parse back with the workspace JSON parser.
    #[test]
    fn report_json_parses_and_covers_every_figure() {
        let _guard = crate::timing_guard();
        let json = generate(&ReportConfig::smoke());
        let doc: Value = serde_json::from_str(&json).expect("report must be valid JSON");
        let map = doc.as_map().expect("report must be one object");
        let keys: Vec<&str> = map.iter().filter_map(|(k, _)| k.as_str()).collect();
        for expected in [
            "meta",
            "table1",
            "fig4",
            "fig4_assoc",
            "fig5",
            "fig6",
            "fig7",
            "fig7a",
            "fig8",
            "fig9",
            "fig9_hits",
            "fig9_bp",
            "fig9_prover",
            "fig11",
            "fig12",
        ] {
            assert!(keys.contains(&expected), "report missing {expected}");
        }
        // Figure arrays are non-empty objects with the advertised keys.
        let fig4 = map
            .iter()
            .find(|(k, _)| k.as_str() == Some("fig4"))
            .and_then(|(_, v)| v.as_seq())
            .expect("fig4 must be an array");
        assert!(!fig4.is_empty());
        assert!(fig4[0]
            .as_map()
            .is_some_and(|m| m.iter().any(|(k, _)| k.as_str() == Some("cached_ns"))));
        // fig11 round-trips one row per cluster size.
        let fig11 = map
            .iter()
            .find(|(k, _)| k.as_str() == Some("fig11"))
            .and_then(|(_, v)| v.as_seq())
            .expect("fig11 must be an array");
        assert_eq!(fig11.len(), crate::fig11::NODE_COUNTS.len());
        for row in fig11 {
            let m = row.as_map().expect("fig11 row must be an object");
            for field in [
                "nodes",
                "revoke_latency_us",
                "msgs_per_revoke",
                "authz_ops_per_s",
                "revocations",
            ] {
                assert!(
                    m.iter().any(|(k, _)| k.as_str() == Some(field)),
                    "fig11 row missing {field}"
                );
            }
        }
        // fig12 carries the A/B summary.
        let fig12 = map
            .iter()
            .find(|(k, _)| k.as_str() == Some("fig12"))
            .and_then(|(_, v)| v.as_map())
            .expect("fig12 must be an object");
        assert!(fig12
            .iter()
            .any(|(k, _)| k.as_str() == Some("overhead_pct")));
    }
}
