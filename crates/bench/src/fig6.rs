//! Figure 6: authorization control-operation overhead — and the
//! three-orders-of-magnitude gap between system-backed and
//! cryptographic credentials.

use crate::{boot_with, time_ns};
use nexus_core::{AuthorityKind, FnAuthority, ResourceId};
use nexus_kernel::NexusConfig;
use nexus_nal::{parse, Principal, Proof};
use std::sync::Arc;

#[derive(Debug, Clone)]
pub struct Point {
    pub op: &'static str,
    pub ns: f64,
}

/// All control operations of Figure 6 (left panel plus the two
/// credential-insertion variants of the right panel).
pub fn run(iters: u64) -> Vec<Point> {
    let mut out = Vec::new();
    let cfg = NexusConfig::default();

    // auth add
    {
        let nexus = boot_with(cfg);
        out.push(Point {
            op: "auth add",
            ns: time_ns(iters, || {
                nexus.register_authority(
                    Principal::name("A"),
                    Arc::new(FnAuthority(|_| true)),
                    AuthorityKind::Embedded,
                );
            }),
        });
    }
    // goal set / clr
    {
        let nexus = boot_with(cfg);
        let pid = nexus.spawn("bench", b"img");
        let object = ResourceId::new("bench", "obj");
        nexus.grant_ownership(pid, &object).unwrap();
        let goal = parse("Owner says ok").unwrap();
        out.push(Point {
            op: "goal set",
            ns: time_ns(iters, || {
                nexus
                    .sys_setgoal(pid, object.clone(), "op", goal.clone())
                    .unwrap();
            }),
        });
        out.push(Point {
            op: "goal clr",
            ns: time_ns(iters, || {
                let _ = nexus.sys_clear_goal(pid, &object, "op");
            }),
        });
    }
    // proof set / clr
    {
        let nexus = boot_with(cfg);
        let pid = nexus.spawn("bench", b"img");
        let object = ResourceId::new("bench", "obj");
        let proof = Proof::assume(parse("Owner says ok").unwrap());
        out.push(Point {
            op: "proof set",
            ns: time_ns(iters, || {
                nexus
                    .sys_set_proof(pid, "op", &object, proof.clone())
                    .unwrap();
            }),
        });
        out.push(Point {
            op: "proof clr",
            ns: time_ns(iters, || {
                nexus.sys_clear_proof(pid, "op", &object).unwrap();
            }),
        });
    }
    // cred add (system-backed `say`: parse + attribution, no crypto)
    {
        let nexus = boot_with(cfg);
        let pid = nexus.spawn("bench", b"img");
        out.push(Point {
            op: "cred add (pid)",
            ns: time_ns(iters, || {
                nexus.sys_say(pid, "isTypeSafe(PGM)").unwrap();
            }),
        });
    }
    // cred add (cryptographic: externalize + import = sign + verify)
    {
        let nexus = boot_with(cfg);
        let pid = nexus.spawn("bench", b"img");
        let h = nexus.sys_say(pid, "isTypeSafe(PGM)").unwrap();
        let ek = nexus.tpm().ek_public();
        let crypto_iters = iters.min(200); // asymmetric crypto is slow
        out.push(Point {
            op: "cred add (key)",
            ns: time_ns(crypto_iters, || {
                let cert = nexus.externalize(pid, h).unwrap();
                nexus.import_cert(pid, &cert, &ek).unwrap();
            }),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crypto_is_orders_of_magnitude_slower() {
        let _serial = crate::timing_guard();
        let pts = run(300);
        let by = |n: &str| pts.iter().find(|p| p.op == n).unwrap().ns;
        let pid = by("cred add (pid)");
        let key = by("cred add (key)");
        // With real Ed25519 this gap is 50×+; the offline vendor
        // stand-in signs with a few SHA-256 passes, which compresses
        // the ratio to ~10×. The *direction* of the paper's result —
        // externalized credentials dwarf system-backed ones — is what
        // this asserts.
        assert!(
            key > pid * 4.0,
            "crypto credential ({key:.0}ns) should dwarf system-backed ({pid:.0}ns)"
        );
    }

    #[test]
    fn all_ops_measured() {
        let pts = run(100);
        assert_eq!(pts.len(), 7);
        assert!(pts.iter().all(|p| p.ns > 0.0));
    }
}
