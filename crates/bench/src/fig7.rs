//! Figure 7: interpositioning overhead on the UDP-echo packet path,
//! in packets per second, for 100 B and 1500 B packets.

use crate::boot_with;
use nexus_kernel::{EchoPath, EchoWorld, MonitorLevel, NexusConfig};

/// Configurations on the x-axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Config {
    KernInt,
    UserInt,
    KernDrv,
    UserDrv,
    /// Kernel reference monitor, verdict cache on.
    KRefMin,
    /// Kernel reference monitor, verdict cache off.
    KRefMax,
    /// User-level reference monitor, cache on.
    URefMin,
    /// User-level reference monitor, cache off.
    URefMax,
}

impl Config {
    pub fn name(self) -> &'static str {
        match self {
            Config::KernInt => "kern int",
            Config::UserInt => "user int",
            Config::KernDrv => "kern drv",
            Config::UserDrv => "user drv",
            Config::KRefMin => "kref min",
            Config::KRefMax => "kref max",
            Config::URefMin => "uref min",
            Config::URefMax => "uref max",
        }
    }

    pub const ALL: [Config; 8] = [
        Config::KernInt,
        Config::UserInt,
        Config::KernDrv,
        Config::UserDrv,
        Config::KRefMin,
        Config::KRefMax,
        Config::URefMin,
        Config::URefMax,
    ];
}

#[derive(Debug, Clone)]
pub struct Point {
    pub config: &'static str,
    pub pkt_size: usize,
    pub pps: f64,
}

/// Measure one configuration at one packet size.
pub fn measure(config: Config, pkt_size: usize, packets: u64) -> Point {
    let nexus = boot_with(NexusConfig::default());
    let (path, monitor, caching) = match config {
        Config::KernInt => (EchoPath::KernelInterrupt, None, true),
        Config::UserInt => (EchoPath::UserInterrupt, None, true),
        Config::KernDrv => (EchoPath::KernelDriver, None, true),
        Config::UserDrv => (EchoPath::UserDriver, None, true),
        Config::KRefMin => (EchoPath::UserDriver, Some(MonitorLevel::Kernel), true),
        Config::KRefMax => (EchoPath::UserDriver, Some(MonitorLevel::Kernel), false),
        Config::URefMin => (EchoPath::UserDriver, Some(MonitorLevel::User), true),
        Config::URefMax => (EchoPath::UserDriver, Some(MonitorLevel::User), false),
    };
    nexus.redirector().set_caching(caching);
    let mut world = EchoWorld::new(&nexus, path).expect("echo world");
    if let Some(level) = monitor {
        world.install_monitor(&nexus, level).expect("monitor");
    }
    let frame = vec![0x5au8; pkt_size];
    // Warm-up.
    for _ in 0..32 {
        world.echo(&nexus, &frame).expect("echo");
    }
    let start = std::time::Instant::now();
    for _ in 0..packets {
        world.echo(&nexus, &frame).expect("echo");
    }
    let secs = start.elapsed().as_secs_f64();
    Point {
        config: config.name(),
        pkt_size,
        pps: packets as f64 / secs,
    }
}

/// The full sweep (both packet sizes).
pub fn run(packets: u64) -> Vec<Point> {
    let mut out = Vec::new();
    for config in Config::ALL {
        for size in [100usize, 1500] {
            out.push(measure(config, size, packets));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pps(cfg: Config) -> f64 {
        measure(cfg, 100, 3000).pps
    }

    #[test]
    fn interrupt_paths_beat_ipc_paths() {
        let _serial = crate::timing_guard();
        let kern_int = pps(Config::KernInt);
        let user_drv = pps(Config::UserDrv);
        assert!(
            kern_int > user_drv,
            "in-interrupt echo ({kern_int:.0}pps) must beat user-driver IPC path ({user_drv:.0}pps)"
        );
    }

    #[test]
    fn caching_recovers_monitoring_overhead() {
        let _serial = crate::timing_guard();
        let min = pps(Config::URefMin);
        let max = pps(Config::URefMax);
        assert!(
            min > max,
            "cached monitoring ({min:.0}pps) must beat uncached ({max:.0}pps)"
        );
    }

    #[test]
    fn user_monitor_costs_more_than_kernel_monitor_uncached() {
        let _serial = crate::timing_guard();
        let kref = pps(Config::KRefMax);
        let uref = pps(Config::URefMax);
        assert!(
            kref > uref * 0.9,
            "kernel monitor ({kref:.0}pps) should be at least as fast as user monitor ({uref:.0}pps)"
        );
    }
}
