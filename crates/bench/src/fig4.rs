//! Figure 4: authorization cost per case, with and without the
//! kernel decision cache.

use crate::{boot_with, time_ns};
use nexus_core::{AuthorityKind, FnAuthority, ResourceId};
use nexus_kernel::{Nexus, NexusConfig, Syscall};
use nexus_nal::{parse, Formula, Principal, Proof};
use std::sync::Arc;

/// Cases on the x-axis of Figure 4.
pub const CASES: [&str; 8] = [
    "system call",
    "no goal",
    "no proof",
    "not sound",
    "pass",
    "no cred",
    "embed auth",
    "auth",
];

#[derive(Debug, Clone)]
pub struct Point {
    pub case: &'static str,
    pub cached_ns: f64,
    pub uncached_ns: f64,
}

fn setup(case: &str, cache: bool) -> (Nexus, u64, ResourceId) {
    // Set up with defaults (auto-prove lets the owner discharge the
    // setgoal default policy); switch to the measured configuration
    // at the end.
    let nexus = boot_with(NexusConfig::default());
    let pid = nexus.spawn("bench", b"img");
    let object = ResourceId::new("bench", "object");
    nexus.grant_ownership(pid, &object).unwrap();
    match case {
        "system call" => {}
        "no goal" => {
            // Default ALLOW goal.
            nexus
                .sys_setgoal(pid, object.clone(), "op", Formula::True)
                .unwrap();
        }
        "no proof" => {
            nexus
                .sys_setgoal(pid, object.clone(), "op", parse("Owner says ok").unwrap())
                .unwrap();
        }
        "not sound" => {
            nexus
                .sys_setgoal(pid, object.clone(), "op", parse("Owner says ok").unwrap())
                .unwrap();
            let bad = Proof::AndElimL(Box::new(Proof::assume(parse("Owner says ok").unwrap())));
            nexus.sys_set_proof(pid, "op", &object, bad).unwrap();
        }
        "pass" => {
            nexus
                .sys_setgoal(pid, object.clone(), "op", parse("Owner says ok").unwrap())
                .unwrap();
            nexus
                .kernel_label(pid, Principal::name("Owner"), parse("ok").unwrap())
                .unwrap();
            nexus
                .sys_set_proof(
                    pid,
                    "op",
                    &object,
                    Proof::assume(parse("Owner says ok").unwrap()),
                )
                .unwrap();
        }
        "no cred" => {
            nexus
                .sys_setgoal(pid, object.clone(), "op", parse("Owner says ok").unwrap())
                .unwrap();
            // Proof references a label the subject does not hold.
            nexus
                .sys_set_proof(
                    pid,
                    "op",
                    &object,
                    Proof::assume(parse("Owner says ok").unwrap()),
                )
                .unwrap();
        }
        "embed auth" | "auth" => {
            nexus
                .sys_setgoal(
                    pid,
                    object.clone(),
                    "op",
                    parse("Clock says TimeNow < 100").unwrap(),
                )
                .unwrap();
            nexus
                .sys_set_proof(
                    pid,
                    "op",
                    &object,
                    Proof::assume(parse("Clock says TimeNow < 100").unwrap()),
                )
                .unwrap();
            let external = case == "auth";
            nexus.register_authority(
                Principal::name("Clock"),
                Arc::new(FnAuthority(move |s: &Formula| {
                    if external {
                        // Model the IPC round trip to an external
                        // authority process: marshal the query and
                        // unmarshal the response.
                        let bytes = serde_json::to_vec(s).unwrap_or_default();
                        let _: Result<Formula, _> = serde_json::from_slice(&bytes);
                    }
                    s.to_string() == "TimeNow < 100"
                })),
                if external {
                    AuthorityKind::External
                } else {
                    AuthorityKind::Embedded
                },
            );
        }
        other => panic!("unknown case {other}"),
    }
    nexus.set_config(NexusConfig {
        decision_cache: cache,
        auto_prove: false,
        ..NexusConfig::default()
    });
    (nexus, pid, object)
}

fn measure_case(case: &'static str, cache: bool, iters: u64) -> f64 {
    let (nexus, pid, object) = setup(case, cache);
    if case == "system call" {
        return time_ns(iters, || {
            nexus.syscall(pid, Syscall::Null).unwrap();
        });
    }
    // Warm once (fills the decision cache where cacheable).
    let _ = nexus.authorize(pid, "op", &object);
    time_ns(iters, || {
        let _ = nexus.authorize(pid, "op", &object);
    })
}

/// Run all cases.
pub fn run(iters: u64) -> Vec<Point> {
    CASES
        .iter()
        .map(|case| Point {
            case,
            cached_ns: measure_case(case, true, iters),
            uncached_ns: measure_case(case, false, iters),
        })
        .collect()
}

/// One decision-cache configuration's outcome under the Fauxbook-
/// shaped workload.
#[derive(Debug, Clone)]
pub struct AssocPoint {
    /// Set associativity within a subregion.
    pub ways: usize,
    /// Decision-cache hits.
    pub hits: u64,
    /// Decision-cache misses.
    pub misses: u64,
}

impl AssocPoint {
    /// hits / (hits + misses).
    pub fn hit_rate(&self) -> f64 {
        self.hits as f64 / (self.hits + self.misses).max(1) as f64
    }
}

/// The Figure-4 hit-rate ablation (ROADMAP): does 2-way subregion
/// associativity move the decision-cache hit rate under a Fauxbook
/// workload? The access pattern mirrors friends polling walls: per
/// wall, two *hot* followers re-read every round while a cold tail
/// drops by occasionally. On a direct-mapped table a hot follower
/// colliding with anyone thrashes every round; a 2-way set with
/// least-recently-touched eviction keeps the hot pair resident.
pub fn associativity(rounds: u64) -> Vec<AssocPoint> {
    const WALLS: usize = 8;
    const HOT: usize = 2;
    const COLD: usize = 10;
    [1usize, 2]
        .into_iter()
        .map(|ways| {
            let nexus = boot_with(NexusConfig::default());
            // A deliberately small cache so the follower working set
            // conflicts, as Fauxbook's real table would under load.
            nexus.resize_decision_cache(nexus_core::DecisionCacheConfig {
                total_slots: 64,
                subregion_slots: 8,
                ways,
                ..Default::default()
            });
            let owner = nexus.spawn("fauxbook", b"img");
            let mut walls = Vec::new();
            for w in 0..WALLS {
                let path = format!("/fauxbook/user{w}/wall");
                nexus.fs_create(owner, &path).unwrap();
                let object = ResourceId::file(&path);
                nexus
                    .sys_setgoal(
                        owner,
                        object.clone(),
                        "read",
                        parse(&format!("$subject says read(file:{path})")).unwrap(),
                    )
                    .unwrap();
                let followers: Vec<u64> = (0..HOT + COLD)
                    .map(|f| nexus.spawn(&format!("friend-{w}-{f}"), b"img"))
                    .collect();
                walls.push((object, followers));
            }
            let before = nexus.decision_cache_stats();
            for round in 0..rounds {
                for (object, followers) in &walls {
                    for (f, &pid) in followers.iter().enumerate() {
                        // Hot followers poll every round; the cold
                        // tail shows up every eighth.
                        if f < HOT || round % 8 == f as u64 % 8 {
                            assert!(nexus.authorize(pid, "read", object).unwrap());
                        }
                    }
                }
            }
            let after = nexus.decision_cache_stats();
            AssocPoint {
                ways,
                hits: after.hits - before.hits,
                misses: after.misses - before.misses,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_helps_cacheable_cases_only() {
        let _serial = crate::timing_guard();
        let pts = run(300);
        let by = |n: &str| pts.iter().find(|p| p.case == n).unwrap().clone();
        // `pass` is cacheable: cached must be much cheaper.
        let pass = by("pass");
        assert!(
            pass.cached_ns * 3.0 < pass.uncached_ns,
            "pass: cached {:.0}ns vs uncached {:.0}ns",
            pass.cached_ns,
            pass.uncached_ns
        );
        // Authority cases are never cacheable: cached ≈ uncached.
        let auth = by("auth");
        assert!(
            auth.cached_ns > pass.cached_ns,
            "authority consultation must cost more than a cache hit"
        );
        // External authority costs more than embedded (uncached).
        let embed = by("embed auth");
        assert!(auth.uncached_ns > embed.uncached_ns * 0.8);
    }

    #[test]
    fn two_way_associativity_improves_fauxbook_hit_rate() {
        let pts = associativity(64);
        let one = pts.iter().find(|p| p.ways == 1).unwrap();
        let two = pts.iter().find(|p| p.ways == 2).unwrap();
        assert!(
            two.hit_rate() > one.hit_rate(),
            "2-way ({:.3}) must beat direct-mapped ({:.3}) on the hot-follower pattern",
            two.hit_rate(),
            one.hit_rate()
        );
    }

    #[test]
    fn decisions_are_correct_per_case() {
        for (case, expect) in [
            ("no goal", true),
            ("no proof", false),
            ("not sound", false),
            ("pass", true),
            ("no cred", false),
            ("embed auth", true),
            ("auth", true),
        ] {
            let (nexus, pid, object) = setup(case, true);
            assert_eq!(
                nexus.authorize(pid, "op", &object).unwrap(),
                expect,
                "case {case}"
            );
        }
    }
}
