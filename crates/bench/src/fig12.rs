//! Figure 12 (beyond the paper): telemetry overhead on the hot path.
//!
//! The telemetry layer (ISSUE 7) must be cheap enough to leave on: the
//! decision-cache hit path — the paper's "cached decisions are nearly
//! free" case, and the most overhead-sensitive point in the stack —
//! pays one relaxed load plus a striped sampler tick per hit. This
//! bench measures that cost directly: the fig9 hit workload (one
//! primed cached allow, hammered single-threaded so per-op overhead is
//! not hidden by contention) run A/B with telemetry enabled
//! ([`nexus_kernel::ObsConfig::default`]) versus fully disabled
//! ([`nexus_kernel::ObsConfig::disabled`]). Reps are interleaved and
//! the per-mode medians compared, so frequency drift hits both sides
//! alike.
//!
//! Acceptance bound: enabled throughput within 5% of disabled.

use crate::{boot_with, time_ns};
use nexus_core::ResourceId;
use nexus_kernel::{Nexus, NexusConfig, ObsConfig};
use nexus_nal::parse;

/// The A/B comparison's result.
#[derive(Debug, Clone)]
pub struct Fig12Result {
    /// Median hit throughput with telemetry fully disabled.
    pub disabled_ops_per_s: f64,
    /// Median hit throughput with default telemetry (stage timers,
    /// audit journal, 1-in-64 hit sampling) enabled.
    pub enabled_ops_per_s: f64,
    /// Audit events recorded during the last enabled rep (sampled
    /// cache hits — evidence the enabled side actually journaled).
    pub audit_recorded: u64,
    /// Interleaved reps per mode (medians taken over these).
    pub reps: usize,
}

impl Fig12Result {
    /// Telemetry overhead in percent: how much slower the enabled
    /// median is than the disabled one (negative ⇒ enabled measured
    /// faster, i.e. the difference is inside measurement noise).
    pub fn overhead_pct(&self) -> f64 {
        if self.disabled_ops_per_s == 0.0 {
            return 0.0;
        }
        100.0 * (1.0 - self.enabled_ops_per_s / self.disabled_ops_per_s)
    }
}

/// One primed cached-allow world under the given telemetry config.
fn setup(obs: ObsConfig) -> (Nexus, u64, ResourceId) {
    let nexus = boot_with(NexusConfig {
        obs,
        ..NexusConfig::default()
    });
    let owner = nexus.spawn("owner", b"img");
    nexus.fs_create(owner, "/fig12").unwrap();
    let object = ResourceId::file("/fig12");
    nexus
        .sys_setgoal(
            owner,
            object.clone(),
            "read",
            parse("$subject says read(file:/fig12)").unwrap(),
        )
        .unwrap();
    let pid = nexus.spawn("fig12", b"img");
    // Prime the one decision every measurement iteration will hit.
    assert!(nexus.authorize(pid, "read", &object).unwrap());
    (nexus, pid, object)
}

/// Hit throughput (ops/s) for one fresh kernel under `obs`; also
/// returns the audit events it journaled.
fn measure(obs: ObsConfig, iters: u64) -> (f64, u64) {
    let (nexus, pid, object) = setup(obs);
    let ns = time_ns(iters, || {
        assert!(nexus.authorize(pid, "read", &object).unwrap());
    });
    let recorded = nexus
        .audit_recent(usize::MAX)
        .iter()
        .filter(|e| e.pid == pid)
        .count() as u64;
    (1e9 / ns, recorded)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Run the A/B comparison: `reps` interleaved (enabled, disabled)
/// pairs of `iters` hits each, medians compared.
pub fn run(iters: u64, reps: usize) -> Fig12Result {
    let reps = reps.max(1);
    let mut enabled = Vec::with_capacity(reps);
    let mut disabled = Vec::with_capacity(reps);
    let mut audit_recorded = 0;
    for _ in 0..reps {
        let (ops, recorded) = measure(ObsConfig::default(), iters);
        enabled.push(ops);
        audit_recorded = recorded;
        let (ops, _) = measure(ObsConfig::disabled(), iters);
        disabled.push(ops);
    }
    Fig12Result {
        disabled_ops_per_s: median(disabled),
        enabled_ops_per_s: median(enabled),
        audit_recorded,
        reps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ab_comparison_runs_and_journals_only_when_enabled() {
        let _guard = crate::timing_guard();
        let r = run(500, 1);
        assert!(r.enabled_ops_per_s > 0.0);
        assert!(r.disabled_ops_per_s > 0.0);
        assert!(r.overhead_pct().is_finite());
        // shift 6 ⇒ ~500/64 sampled hits journaled on the enabled side.
        assert!(r.audit_recorded > 0, "enabled side must journal hits");
        let (_, recorded) = measure(ObsConfig::disabled(), 200);
        assert_eq!(recorded, 0, "disabled side must journal nothing");
    }
}
