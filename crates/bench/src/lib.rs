//! Benchmark workloads regenerating every table and figure of the
//! paper's evaluation (§5). The same workload functions back both the
//! Criterion benches (`benches/`) and the `reproduce` binary that
//! prints paper-style tables.

#![forbid(unsafe_code)]
#![allow(missing_docs)]

pub mod fig11;
pub mod fig12;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig7a;
pub mod fig8;
pub mod fig9;
pub mod report;
pub mod table1;

use nexus_kernel::{BootImages, Nexus, NexusConfig};
use nexus_storage::RamDisk;
use nexus_tpm::Tpm;

/// Boot a kernel with the given config for benchmarking.
pub fn boot_with(cfg: NexusConfig) -> Nexus {
    Nexus::boot(
        Tpm::new_with_seed(0xbe4c),
        RamDisk::new(),
        &BootImages::standard(),
        cfg,
    )
    .expect("boot")
}

/// Time `f` over `iters` iterations; returns nanoseconds per
/// iteration.
pub fn time_ns<F: FnMut()>(iters: u64, mut f: F) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Serializes the timing-sensitive unit tests in this crate: relative
/// performance assertions (and the fig9 multi-thread runs that would
/// perturb them) take this lock so the default parallel test harness
/// cannot run them on top of each other.
#[cfg(test)]
pub(crate) fn timing_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}
