//! Figure 11 (beyond the paper): distributed Nexus — cross-node
//! revocation latency and replicated authorization throughput vs
//! cluster size.
//!
//! Each point boots an in-process cluster of `n` kernels joined by
//! the BFT-reliable-broadcast layer (`nexus-dist`), replicates one
//! credential, then measures:
//!
//! * `revoke_latency_us` — wall time from a revocation broadcast at a
//!   rotating origin until the revocation has been *delivered and
//!   applied* (decision-cache flush and pipeline fence included) on
//!   every node, averaged over `revocations` cycles;
//! * `msgs_per_revoke` — network deliveries consumed per revocation
//!   round (the O(n²) echo/ready traffic made visible);
//! * `authz_ops_per_s` — round-robin authorization throughput against
//!   the replicated credential once every node holds it (the steady
//!   state: reads are node-local, only writes pay for agreement).
//!
//! The network is the deterministic simulator with a perfect
//! (random-delivery-order) schedule, so the numbers isolate protocol
//! and kernel cost from transport noise; the seed is fixed so runs
//! replay.

use nexus_core::ResourceId;
use nexus_dist::Cluster;

/// Cluster sizes measured, matching the paper-style scaling sweep.
pub const NODE_COUNTS: [usize; 4] = [3, 5, 7, 9];

/// One cluster size's measurements.
#[derive(Debug, Clone)]
pub struct Fig11Point {
    /// Cluster size.
    pub nodes: usize,
    /// Mean broadcast-to-applied-everywhere revocation latency (µs).
    pub revoke_latency_us: f64,
    /// Mean simulated-network deliveries per revocation round.
    pub msgs_per_revoke: f64,
    /// Round-robin replicated authorization throughput (ops/s).
    pub authz_ops_per_s: f64,
    /// Revocation rounds measured.
    pub revocations: u64,
}

/// Run the sweep: `revocations` timed revoke→re-mint cycles and
/// `authz_iters` authorization calls per cluster size.
pub fn run(revocations: u64, authz_iters: u64) -> Vec<Fig11Point> {
    NODE_COUNTS
        .iter()
        .map(|&n| run_one(n, revocations.max(1), authz_iters.max(1)))
        .collect()
}

fn run_one(n: usize, revocations: u64, authz_iters: u64) -> Fig11Point {
    let seed = 0xf160_1100 ^ n as u64;
    let mut cluster = Cluster::new(n, seed);
    let object = ResourceId::new("bench", "fig11");
    cluster.install_goal(&object, "op", "CA says ok");
    let mut rec = cluster.mint(0, "alice", "CA", "ok");
    assert!(
        cluster.run_until_converged(8),
        "fig11 setup convergence: n={n} seed={seed}"
    );

    // Timed revocation rounds: broadcast at a rotating origin, drive
    // the network until every replica has applied the revocation
    // (each application runs the full fence), then re-mint for the
    // next round outside the timed window.
    let mut latency_total = std::time::Duration::ZERO;
    let mut deliveries_total = 0u64;
    for round in 0..revocations {
        let origin = (round % n as u64) as u32;
        let before = cluster.net_counters().delivered;
        let start = std::time::Instant::now();
        assert!(
            cluster.revoke(origin, &rec),
            "fig11 revoke origin must see the record: n={n} seed={seed}"
        );
        while (0..n as u32).any(|i| cluster.has_label(i, &rec)) {
            if !cluster.step() {
                cluster.anti_entropy();
            }
        }
        latency_total += start.elapsed();
        deliveries_total += cluster.net_counters().delivered - before;
        cluster.run_to_quiescence(usize::MAX);
        rec = cluster.mint(origin, "alice", "CA", "ok");
        assert!(
            cluster.run_until_converged(8),
            "fig11 re-mint convergence: n={n} seed={seed}"
        );
    }

    // Steady-state authorization throughput against the replicated
    // credential, round-robin across nodes; prime each node's
    // decision cache first so this measures the replicated hit path.
    for i in 0..n as u32 {
        assert!(
            cluster.authorize(i, "alice", "op", &object),
            "fig11 replicated credential must allow at node {i}: n={n} seed={seed}"
        );
    }
    let start = std::time::Instant::now();
    let mut allows = 0u64;
    for k in 0..authz_iters {
        let i = (k % n as u64) as u32;
        if cluster.authorize(i, "alice", "op", &object) {
            allows += 1;
        }
    }
    let elapsed = start.elapsed();
    assert_eq!(
        allows, authz_iters,
        "fig11 authz must allow: n={n} seed={seed}"
    );

    Fig11Point {
        nodes: n,
        revoke_latency_us: latency_total.as_micros() as f64 / revocations as f64,
        msgs_per_revoke: deliveries_total as f64 / revocations as f64,
        authz_ops_per_s: authz_iters as f64 / elapsed.as_secs_f64(),
        revocations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke: every cluster size produces a sane point, and the
    /// broadcast traffic grows with n (quorums widen).
    #[test]
    fn fig11_smoke_produces_sane_points() {
        let _guard = crate::timing_guard();
        let pts = run(2, 50);
        assert_eq!(pts.len(), NODE_COUNTS.len());
        for (p, n) in pts.iter().zip(NODE_COUNTS) {
            assert_eq!(p.nodes, n);
            assert!(p.revoke_latency_us > 0.0, "n={n}");
            assert!(p.msgs_per_revoke >= n as f64, "n={n}");
            assert!(p.authz_ops_per_s > 0.0, "n={n}");
        }
        assert!(
            pts.last().unwrap().msgs_per_revoke > pts[0].msgs_per_revoke,
            "echo/ready traffic must widen with the cluster"
        );
    }
}
