//! Figure 5: proof evaluation cost as a function of proof length.
//!
//! Three rule families, each at lengths 1..=20, in two variants:
//! E — isolated proof checking; F — full guard evaluation including
//! credential matching (the paper's dashed lines add label-store and
//! authority lookup overhead).
//!
//! Rule families: `delegate` chains speaksfor-elimination; `negate`
//! chains double-negation introduction; `boolean` chains modus ponens
//! over implications (the paper's third family is disjunction
//! elimination — a connective-level rule of comparable per-step cost;
//! see EXPERIMENTS.md).

use nexus_core::{AccessRequest, AuthorityRegistry, Guard, OpName, ResourceId};
use nexus_nal::check::{check, Assumptions};
use nexus_nal::{parse, Formula, Principal, Proof};

use crate::time_ns;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    Delegate,
    Negate,
    Boolean,
}

impl Family {
    pub fn name(self) -> &'static str {
        match self {
            Family::Delegate => "delegate",
            Family::Negate => "negate",
            Family::Boolean => "boolean",
        }
    }
}

/// Build a proof with `n` rule applications plus its credential set
/// and conclusion.
pub fn build(family: Family, n: usize) -> (Proof, Vec<Formula>, Formula) {
    match family {
        Family::Delegate => {
            let mut creds = vec![parse("P0 says p").unwrap()];
            let mut proof = Proof::assume(creds[0].clone());
            for i in 0..n {
                let sf = parse(&format!("P{i} speaksfor P{}", i + 1)).unwrap();
                creds.push(sf.clone());
                proof = Proof::SpeaksForElim(Box::new(Proof::assume(sf)), Box::new(proof));
            }
            let goal = parse(&format!("P{n} says p")).unwrap();
            (proof, creds, goal)
        }
        Family::Negate => {
            let base = parse("p").unwrap();
            let creds = vec![base.clone()];
            let mut proof = Proof::assume(base.clone());
            let mut goal = base;
            for _ in 0..n {
                proof = Proof::DoubleNegIntro(Box::new(proof));
                goal = goal.not().not();
            }
            (proof, creds, goal)
        }
        Family::Boolean => {
            let mut creds = vec![parse("q0").unwrap()];
            let mut proof = Proof::assume(creds[0].clone());
            for i in 0..n {
                let imp = parse(&format!("q{i} -> q{}", i + 1)).unwrap();
                creds.push(imp.clone());
                proof = Proof::ImpliesElim(Box::new(Proof::assume(imp)), Box::new(proof));
            }
            let goal = parse(&format!("q{n}")).unwrap();
            (proof, creds, goal)
        }
    }
}

#[derive(Debug, Clone)]
pub struct Point {
    pub family: &'static str,
    pub rules: usize,
    pub eval_ns: f64,
    pub full_ns: f64,
}

/// Measure one (family, length) point.
pub fn measure(family: Family, n: usize, iters: u64) -> Point {
    let (proof, creds, goal) = build(family, n);
    let asm = Assumptions::from_iter(creds.iter());
    let eval_ns = time_ns(iters, || {
        check(&proof, &asm).expect("valid proof");
    });
    // Full path: fresh guard per batch so nothing is memoized, plus
    // credential matching against the label set.
    let subject = Principal::name("bench");
    let op = OpName::from("op");
    let object = ResourceId::new("bench", "obj");
    let full_ns = time_ns(iters, || {
        let guard = Guard::new();
        let req = AccessRequest {
            subject: &subject,
            operation: &op,
            object: &object,
            proof: Some(&proof),
            labels: &creds,
        };
        let d = guard.check(&req, &goal, &AuthorityRegistry::new());
        assert!(d.allow);
    });
    Point {
        family: family.name(),
        rules: proof.rule_count(),
        eval_ns,
        full_ns,
    }
}

/// The full sweep.
pub fn run(iters: u64, max_rules: usize) -> Vec<Point> {
    let mut out = Vec::new();
    for family in [Family::Delegate, Family::Negate, Family::Boolean] {
        for n in (2..=max_rules).step_by(2) {
            out.push(measure(family, n, iters));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proofs_check_at_all_lengths() {
        for family in [Family::Delegate, Family::Negate, Family::Boolean] {
            for n in [1usize, 5, 10, 20] {
                let (proof, creds, goal) = build(family, n);
                let asm = Assumptions::from_iter(creds.iter());
                let c = check(&proof, &asm).unwrap();
                assert_eq!(
                    nexus_nal::check::normalize(&c),
                    nexus_nal::check::normalize(&goal)
                );
                assert!(proof.rule_count() >= n);
            }
        }
    }

    #[test]
    fn cost_grows_with_length() {
        let _serial = crate::timing_guard();
        let short = measure(Family::Delegate, 2, 200);
        let long = measure(Family::Delegate, 20, 200);
        assert!(
            long.eval_ns > short.eval_ns,
            "20-rule proof ({:.0}ns) should cost more than 2-rule ({:.0}ns)",
            long.eval_ns,
            short.eval_ns
        );
    }

    #[test]
    fn full_costs_more_than_eval() {
        let _serial = crate::timing_guard();
        let p = measure(Family::Boolean, 10, 200);
        assert!(p.full_ns > p.eval_ns);
    }

    #[test]
    fn practical_proofs_check_fast() {
        let _serial = crate::timing_guard();
        // Paper: "the proof checker executes all proofs shorter than
        // 15 steps in less than 1ms".
        let p = measure(Family::Delegate, 15, 100);
        assert!(
            p.eval_ns < 1_000_000.0,
            "15-step proof took {:.0}ns",
            p.eval_ns
        );
    }
}
