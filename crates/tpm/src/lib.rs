//! # Software Trusted Platform Module
//!
//! A functional model of the secure coprocessor the Nexus runs on
//! (§2.4, §3.3, §3.4 of the paper). The original evaluation used an
//! Atmel v1.2-compatible TPM; here the device is simulated in software
//! so the rest of the stack — measured boot, PCR-bound keys, sealed
//! storage, DIR-based replay protection, quotes, and credential chains
//! rooted in the EK — exercises the same interfaces and failure modes
//! (wrong PCRs ⇒ unseal fails; re-imaged disk ⇒ DIR mismatch ⇒ boot
//! abort) without hardware.
//!
//! Substitutions relative to the physical part (documented in
//! DESIGN.md): SHA-256 instead of SHA-1, Ed25519 instead of RSA, and
//! 32-byte instead of 20-byte integrity registers.
//!
//! ## Layout
//!
//! * [`pcr`] — platform configuration registers and composites,
//! * [`device`] — the [`Tpm`] itself: ownership, EK/SRK/AIK, DIRs,
//!   NVRAM, monotonic counters,
//! * [`seal`] — sealing storage to PCR state,
//! * [`quote`] — remote attestation quotes and key certification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod error;
pub mod pcr;
pub mod quote;
pub mod seal;

pub use device::{Tpm, DIR_COUNT, NVRAM_CAPACITY};
pub use error::TpmError;
pub use pcr::{Digest, PcrBank, PcrSelection, DIGEST_LEN, PCR_COUNT};
pub use quote::{AikCert, KeyAttestation, Quote};
pub use seal::SealedBlob;

/// Convenience: SHA-256 of a byte string as a [`Digest`].
pub fn hash(data: &[u8]) -> Digest {
    use sha2::{Digest as _, Sha256};
    let mut h = Sha256::new();
    h.update(data);
    let out = h.finalize();
    let mut d = [0u8; DIGEST_LEN];
    d.copy_from_slice(&out);
    Digest(d)
}

/// SHA-256 over the concatenation of several byte strings, with
/// length framing so `("ab","c")` and `("a","bc")` differ.
pub fn hash_concat(parts: &[&[u8]]) -> Digest {
    use sha2::{Digest as _, Sha256};
    let mut h = Sha256::new();
    for p in parts {
        h.update((p.len() as u64).to_le_bytes());
        h.update(p);
    }
    let out = h.finalize();
    let mut d = [0u8; DIGEST_LEN];
    d.copy_from_slice(&out);
    Digest(d)
}
