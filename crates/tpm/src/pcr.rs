//! Platform configuration registers.
//!
//! PCRs accumulate measurements of the boot chain: each `extend`
//! replaces the register with `H(old ‖ H(data))`, so a register value
//! commits to the entire sequence of measurements. Keys and storage
//! can be bound to a *composite* digest over a selection of PCRs;
//! booting different software yields a different composite, and the
//! bound resources become inaccessible (§3.4).

use serde::{Deserialize, Serialize};
use sha2::{Digest as Sha2Digest, Sha256};
use std::fmt;

/// Digest length in bytes (SHA-256; the original TPM v1.1 used
/// 20-byte SHA-1, see DESIGN.md for the substitution rationale).
pub const DIGEST_LEN: usize = 32;

/// Number of PCRs (per TPM v1.2).
pub const PCR_COUNT: usize = 24;

/// A SHA-256 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Digest(pub [u8; DIGEST_LEN]);

impl Digest {
    /// The all-zero digest (PCR reset value for indices 0–15).
    pub const ZERO: Digest = Digest([0u8; DIGEST_LEN]);

    /// The all-ones digest (reset value for the resettable range).
    pub const ONES: Digest = Digest([0xffu8; DIGEST_LEN]);

    /// Hex rendering.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Parse from hex; `None` if malformed.
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != DIGEST_LEN * 2 {
            return None;
        }
        let mut out = [0u8; DIGEST_LEN];
        for i in 0..DIGEST_LEN {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok()?;
        }
        Some(Digest(out))
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", &self.to_hex()[..16])
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", &self.to_hex()[..16])
    }
}

/// A subset of PCR indices, e.g. "PCRs 0–7" for the boot chain.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PcrSelection {
    mask: u32,
}

impl PcrSelection {
    /// Empty selection.
    pub fn none() -> Self {
        PcrSelection { mask: 0 }
    }

    /// All PCRs.
    pub fn all() -> Self {
        PcrSelection {
            mask: (1u32 << PCR_COUNT) - 1,
        }
    }

    /// Selection of the given indices (out-of-range indices ignored).
    pub fn of(indices: &[usize]) -> Self {
        let mut mask = 0;
        for &i in indices {
            if i < PCR_COUNT {
                mask |= 1 << i;
            }
        }
        PcrSelection { mask }
    }

    /// The boot-chain registers (0–7) the Nexus measures firmware,
    /// boot loader, and kernel into.
    pub fn boot_chain() -> Self {
        PcrSelection::of(&[0, 1, 2, 3, 4, 5, 6, 7])
    }

    /// Is index `i` selected?
    pub fn contains(&self, i: usize) -> bool {
        i < PCR_COUNT && (self.mask >> i) & 1 == 1
    }

    /// Iterate over selected indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..PCR_COUNT).filter(move |&i| self.contains(i))
    }

    /// Number of selected registers.
    pub fn len(&self) -> usize {
        self.mask.count_ones() as usize
    }

    /// True if nothing selected.
    pub fn is_empty(&self) -> bool {
        self.mask == 0
    }
}

/// The bank of PCR registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcrBank {
    regs: [Digest; PCR_COUNT],
}

impl Default for PcrBank {
    fn default() -> Self {
        Self::new()
    }
}

impl PcrBank {
    /// A bank in power-on state: 0–15 zeroed, 16–23 all-ones (the
    /// resettable range).
    pub fn new() -> Self {
        let mut regs = [Digest::ZERO; PCR_COUNT];
        for r in regs.iter_mut().skip(16) {
            *r = Digest::ONES;
        }
        PcrBank { regs }
    }

    /// Read a register.
    pub fn read(&self, i: usize) -> Option<Digest> {
        self.regs.get(i).copied()
    }

    /// Extend register `i` with an already-computed digest:
    /// `PCR[i] ← H(PCR[i] ‖ digest)`.
    pub fn extend_digest(&mut self, i: usize, digest: &Digest) -> Option<Digest> {
        let reg = self.regs.get_mut(i)?;
        let mut h = Sha256::new();
        h.update(reg.0);
        h.update(digest.0);
        let out = h.finalize();
        reg.0.copy_from_slice(&out);
        Some(*reg)
    }

    /// Measure raw data into register `i` (hashes the data first).
    pub fn extend(&mut self, i: usize, data: &[u8]) -> Option<Digest> {
        let d = crate::hash(data);
        self.extend_digest(i, &d)
    }

    /// The composite digest over a selection: commits to both which
    /// registers are selected and their values.
    pub fn composite(&self, sel: &PcrSelection) -> Digest {
        let mut h = Sha256::new();
        h.update(b"pcr-composite");
        for i in sel.iter() {
            h.update((i as u32).to_le_bytes());
            h.update(self.regs[i].0);
        }
        let out = h.finalize();
        let mut d = [0u8; DIGEST_LEN];
        d.copy_from_slice(&out);
        Digest(d)
    }

    /// Reset a resettable register (16–23) to ones; lower registers
    /// only reset with the platform.
    pub fn reset(&mut self, i: usize) -> bool {
        if (16..PCR_COUNT).contains(&i) {
            self.regs[i] = Digest::ONES;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_on_state() {
        let bank = PcrBank::new();
        assert_eq!(bank.read(0), Some(Digest::ZERO));
        assert_eq!(bank.read(23), Some(Digest::ONES));
        assert_eq!(bank.read(24), None);
    }

    #[test]
    fn extend_changes_register_and_is_order_sensitive() {
        let mut a = PcrBank::new();
        let mut b = PcrBank::new();
        a.extend(0, b"bios");
        a.extend(0, b"loader");
        b.extend(0, b"loader");
        b.extend(0, b"bios");
        assert_ne!(a.read(0), b.read(0), "extension order must matter");
    }

    #[test]
    fn extend_is_deterministic() {
        let mut a = PcrBank::new();
        let mut b = PcrBank::new();
        a.extend(4, b"kernel-image");
        b.extend(4, b"kernel-image");
        assert_eq!(a.read(4), b.read(4));
    }

    #[test]
    fn composite_depends_on_selection_and_values() {
        let mut bank = PcrBank::new();
        bank.extend(0, b"x");
        let c1 = bank.composite(&PcrSelection::of(&[0]));
        let c2 = bank.composite(&PcrSelection::of(&[0, 1]));
        assert_ne!(c1, c2);
        bank.extend(0, b"y");
        let c3 = bank.composite(&PcrSelection::of(&[0]));
        assert_ne!(c1, c3);
    }

    #[test]
    fn selection_iteration() {
        let sel = PcrSelection::of(&[3, 1, 7, 99]);
        let v: Vec<usize> = sel.iter().collect();
        assert_eq!(v, vec![1, 3, 7]);
        assert_eq!(sel.len(), 3);
        assert!(PcrSelection::none().is_empty());
        assert_eq!(PcrSelection::all().len(), PCR_COUNT);
    }

    #[test]
    fn resettable_range() {
        let mut bank = PcrBank::new();
        bank.extend(16, b"app");
        assert!(bank.reset(16));
        assert_eq!(bank.read(16), Some(Digest::ONES));
        assert!(!bank.reset(0), "boot-chain PCRs are not resettable");
    }

    #[test]
    fn hex_round_trip() {
        let d = crate::hash(b"hello");
        let h = d.to_hex();
        assert_eq!(Digest::from_hex(&h), Some(d));
        assert_eq!(Digest::from_hex("zz"), None);
    }
}
