//! The TPM device: ownership, keys, DIRs, NVRAM, counters.

use crate::error::TpmError;
use crate::pcr::{Digest, PcrBank, PcrSelection};
use crate::quote::{AikCert, KeyAttestation, Quote};
use crate::seal::{seal_with_key, unseal_with_key, SealedBlob};
use ed25519_dalek::{Signer, SigningKey, VerifyingKey};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::HashMap;

/// Number of data integrity registers. TPM v1.1 provides exactly two
/// (the paper's DIRcur / DIRnew), which is what forces the
/// Merkle-tree virtualization in `nexus-storage`.
pub const DIR_COUNT: usize = 2;

/// Total NVRAM capacity in bytes (TPM v1.2 provides "only a finite
/// amount of secure NVRAM", §3.3 — small enough that secure storage
/// must be virtualized in software).
pub const NVRAM_CAPACITY: usize = 2048;

#[derive(Debug, Clone)]
struct NvArea {
    data: Vec<u8>,
    policy: Option<(PcrSelection, Digest)>,
}

/// The software TPM.
///
/// One `Tpm` models one motherboard-soldered chip: the endorsement key
/// is fixed at construction ("manufacture"); everything else is state
/// that accumulates across [`Tpm::take_ownership`] and power cycles
/// (PCRs reset on [`Tpm::power_cycle`], owned state persists).
pub struct Tpm {
    rng: StdRng,
    pcrs: PcrBank,
    ek: SigningKey,
    owned: Option<Owned>,
    dirs: [Digest; DIR_COUNT],
    /// Policy gating DIR access: set at take_ownership to the then-
    /// current boot-chain composite, so only the same measured kernel
    /// can read or write DIRs.
    dir_policy: Option<(PcrSelection, Digest)>,
    nvram: HashMap<u32, NvArea>,
    counters: HashMap<u32, u64>,
}

struct Owned {
    /// Storage root key seed: all sealing keys derive from this.
    srk_seed: [u8; 32],
    aik: SigningKey,
    aik_cert: AikCert,
}

impl Tpm {
    /// A freshly manufactured TPM with an OS-provided entropy seed.
    pub fn new() -> Self {
        Self::new_from_rng(&mut rand::thread_rng())
    }

    /// A freshly manufactured TPM drawing its entropy from the given
    /// RNG — inject a seeded generator to make boot measurements,
    /// key generation, and nonces fully deterministic in tests and
    /// benchmarks.
    pub fn new_from_rng<R: RngCore>(rng: &mut R) -> Self {
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        Self::from_seed_bytes(seed)
    }

    /// Deterministic TPM for tests and reproducible benchmarks
    /// (shorthand for [`Tpm::new_from_rng`] over a seeded `StdRng`).
    pub fn new_with_seed(seed: u64) -> Self {
        let mut bytes = [0u8; 32];
        bytes[..8].copy_from_slice(&seed.to_le_bytes());
        Self::from_seed_bytes(bytes)
    }

    fn from_seed_bytes(seed: [u8; 32]) -> Self {
        let mut rng = StdRng::from_seed(seed);
        let ek = SigningKey::generate(&mut rng);
        Tpm {
            rng,
            pcrs: PcrBank::new(),
            ek,
            owned: None,
            dirs: [Digest::ZERO; DIR_COUNT],
            dir_policy: None,
            nvram: HashMap::new(),
            counters: HashMap::new(),
        }
    }

    /// The PCR bank (read-only).
    pub fn pcrs(&self) -> &PcrBank {
        &self.pcrs
    }

    /// The PCR bank (mutable — the platform extends measurements
    /// through this during boot).
    pub fn pcrs_mut(&mut self) -> &mut PcrBank {
        &mut self.pcrs
    }

    /// Endorsement public key (identifies the chip; privacy-sensitive,
    /// see the Nexus Privacy Authority discussion in §3.4).
    pub fn ek_public(&self) -> VerifyingKey {
        self.ek.verifying_key()
    }

    /// Has ownership been taken?
    pub fn is_owned(&self) -> bool {
        self.owned.is_some()
    }

    /// Take ownership: generate the storage root key and an AIK
    /// certified by the EK, and bind DIR access to the current
    /// boot-chain composite. Performed by the Nexus on first boot
    /// (§3.4).
    pub fn take_ownership(&mut self) -> Result<(), TpmError> {
        if self.owned.is_some() {
            return Err(TpmError::AlreadyOwned);
        }
        let mut srk_seed = [0u8; 32];
        self.rng.fill_bytes(&mut srk_seed);
        let aik = SigningKey::generate(&mut self.rng);
        let aik_cert = AikCert::sign(&self.ek, aik.verifying_key().to_bytes());
        self.owned = Some(Owned {
            srk_seed,
            aik,
            aik_cert,
        });
        let sel = PcrSelection::boot_chain();
        let comp = self.pcrs.composite(&sel);
        self.dir_policy = Some((sel, comp));
        Ok(())
    }

    /// Clear ownership (TPM_ForceClear): wipes SRK-derived secrets,
    /// DIRs, NVRAM, and counters. Sealed blobs become permanently
    /// undecryptable.
    pub fn force_clear(&mut self) {
        self.owned = None;
        self.dirs = [Digest::ZERO; DIR_COUNT];
        self.dir_policy = None;
        self.nvram.clear();
        self.counters.clear();
    }

    /// Power cycle: PCRs reset to power-on values; owned state, DIRs,
    /// NVRAM, and counters persist (they are non-volatile).
    pub fn power_cycle(&mut self) {
        self.pcrs = PcrBank::new();
    }

    fn owned(&self) -> Result<&Owned, TpmError> {
        self.owned.as_ref().ok_or(TpmError::NotOwned)
    }

    // ---- sealing ----

    /// Seal `data` to the current values of `selection`.
    pub fn seal(&mut self, selection: &PcrSelection, data: &[u8]) -> Result<SealedBlob, TpmError> {
        let composite = self.pcrs.composite(selection);
        let mut nonce = [0u8; 16];
        self.rng.fill_bytes(&mut nonce);
        let owned = self.owned()?;
        Ok(seal_with_key(
            &owned.srk_seed,
            selection.clone(),
            composite,
            nonce,
            data,
        ))
    }

    /// Unseal a blob; fails unless the current PCR state matches the
    /// state at seal time.
    pub fn unseal(&self, blob: &SealedBlob) -> Result<Vec<u8>, TpmError> {
        let owned = self.owned()?;
        let current = self.pcrs.composite(&blob.selection);
        unseal_with_key(&owned.srk_seed, &current, blob)
    }

    // ---- DIRs ----

    fn check_dir_policy(&self) -> Result<(), TpmError> {
        match &self.dir_policy {
            None => Ok(()),
            Some((sel, expect)) => {
                if &self.pcrs.composite(sel) == expect {
                    Ok(())
                } else {
                    Err(TpmError::PcrMismatch)
                }
            }
        }
    }

    /// Write data integrity register `idx`. Requires ownership and a
    /// PCR state matching the policy established at take-ownership.
    pub fn write_dir(&mut self, idx: usize, value: Digest) -> Result<(), TpmError> {
        self.owned()?;
        self.check_dir_policy()?;
        let slot = self.dirs.get_mut(idx).ok_or(TpmError::BadIndex(idx))?;
        *slot = value;
        Ok(())
    }

    /// Read data integrity register `idx` under the same policy.
    pub fn read_dir(&self, idx: usize) -> Result<Digest, TpmError> {
        self.owned()?;
        self.check_dir_policy()?;
        self.dirs.get(idx).copied().ok_or(TpmError::BadIndex(idx))
    }

    // ---- NVRAM ----

    fn nvram_used(&self) -> usize {
        self.nvram.values().map(|a| a.data.len()).sum()
    }

    /// Define an NVRAM area of `size` bytes, optionally gated on the
    /// current composite of a PCR selection.
    pub fn nv_define(
        &mut self,
        index: u32,
        size: usize,
        policy_selection: Option<&PcrSelection>,
    ) -> Result<(), TpmError> {
        self.owned()?;
        if self.nvram.contains_key(&index) {
            return Err(TpmError::NvAreaExists(index));
        }
        let used = self.nvram_used();
        if used + size > NVRAM_CAPACITY {
            return Err(TpmError::NvCapacityExceeded {
                requested: size,
                available: NVRAM_CAPACITY - used,
            });
        }
        let policy = policy_selection.map(|sel| (sel.clone(), self.pcrs.composite(sel)));
        self.nvram.insert(
            index,
            NvArea {
                data: vec![0u8; size],
                policy,
            },
        );
        Ok(())
    }

    fn nv_check(&self, area: &NvArea) -> Result<(), TpmError> {
        if let Some((sel, expect)) = &area.policy {
            if &self.pcrs.composite(sel) != expect {
                return Err(TpmError::PcrMismatch);
            }
        }
        Ok(())
    }

    /// Write an NVRAM area (whole-area writes only, like TPM 1.2's
    /// fixed-size areas).
    pub fn nv_write(&mut self, index: u32, data: &[u8]) -> Result<(), TpmError> {
        self.owned()?;
        let area = self
            .nvram
            .get(&index)
            .ok_or(TpmError::NvAreaMissing(index))?;
        self.nv_check(area)?;
        if area.data.len() != data.len() {
            return Err(TpmError::NvSizeMismatch);
        }
        self.nvram
            .get_mut(&index)
            .expect("checked")
            .data
            .copy_from_slice(data);
        Ok(())
    }

    /// Read an NVRAM area.
    pub fn nv_read(&self, index: u32) -> Result<Vec<u8>, TpmError> {
        self.owned()?;
        let area = self
            .nvram
            .get(&index)
            .ok_or(TpmError::NvAreaMissing(index))?;
        self.nv_check(area)?;
        Ok(area.data.clone())
    }

    /// Remove an NVRAM area.
    pub fn nv_undefine(&mut self, index: u32) -> Result<(), TpmError> {
        self.owned()?;
        self.nvram
            .remove(&index)
            .map(|_| ())
            .ok_or(TpmError::NvAreaMissing(index))
    }

    // ---- monotonic counters ----

    /// Create a monotonic counter starting at 0.
    pub fn counter_create(&mut self, id: u32) -> Result<(), TpmError> {
        self.owned()?;
        self.counters.entry(id).or_insert(0);
        Ok(())
    }

    /// Increment and return the new value. Monotonicity is the whole
    /// contract: there is no decrement or reset short of force-clear.
    pub fn counter_increment(&mut self, id: u32) -> Result<u64, TpmError> {
        self.owned()?;
        let c = self
            .counters
            .get_mut(&id)
            .ok_or(TpmError::CounterMissing(id))?;
        *c += 1;
        Ok(*c)
    }

    /// Read a counter.
    pub fn counter_read(&self, id: u32) -> Result<u64, TpmError> {
        self.owned()?;
        self.counters
            .get(&id)
            .copied()
            .ok_or(TpmError::CounterMissing(id))
    }

    // ---- attestation ----

    /// Produce a quote over `selection`, freshened with `nonce`.
    pub fn quote(&self, selection: &PcrSelection, nonce: [u8; 16]) -> Result<Quote, TpmError> {
        let owned = self.owned()?;
        let composite = self.pcrs.composite(selection);
        let msg = Quote::message(selection, &composite, &nonce);
        let signature = owned.aik.sign(&msg).to_bytes().to_vec();
        Ok(Quote {
            selection: selection.clone(),
            composite,
            nonce,
            signature,
        })
    }

    /// The AIK certificate chaining to the EK.
    pub fn aik_cert(&self) -> Result<AikCert, TpmError> {
        Ok(self.owned()?.aik_cert.clone())
    }

    /// Certify that `subject_pub` was presented on this platform under
    /// the current composite of `selection` — used to bind the Nexus
    /// key NK to a measured kernel.
    pub fn certify_key(
        &self,
        subject_pub: [u8; 32],
        selection: &PcrSelection,
    ) -> Result<KeyAttestation, TpmError> {
        let owned = self.owned()?;
        let composite = self.pcrs.composite(selection);
        let msg = KeyAttestation::message(&subject_pub, &composite, selection);
        let signature = owned.aik.sign(&msg).to_bytes().to_vec();
        Ok(KeyAttestation {
            subject_pub,
            composite,
            selection: selection.clone(),
            signature,
        })
    }

    /// Deterministic randomness source rooted in the device (for
    /// callers that need nonces).
    pub fn get_random(&mut self, out: &mut [u8]) {
        self.rng.fill_bytes(out);
    }
}

impl Default for Tpm {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owned_tpm(seed: u64) -> Tpm {
        let mut t = Tpm::new_with_seed(seed);
        t.pcrs_mut().extend(0, b"bios");
        t.pcrs_mut().extend(4, b"kernel");
        t.take_ownership().unwrap();
        t
    }

    #[test]
    fn ownership_lifecycle() {
        let mut t = Tpm::new_with_seed(1);
        assert!(!t.is_owned());
        assert_eq!(t.read_dir(0), Err(TpmError::NotOwned));
        t.take_ownership().unwrap();
        assert!(t.is_owned());
        assert_eq!(t.take_ownership(), Err(TpmError::AlreadyOwned));
        t.force_clear();
        assert!(!t.is_owned());
        t.take_ownership().unwrap();
    }

    #[test]
    fn seal_bound_to_pcrs_across_power_cycle() {
        let mut t = owned_tpm(1);
        let sel = PcrSelection::boot_chain();
        let blob = t.seal(&sel, b"vdir-state").unwrap();
        assert_eq!(t.unseal(&blob).unwrap(), b"vdir-state");

        // Reboot with the same measurements: unseal works.
        t.power_cycle();
        t.pcrs_mut().extend(0, b"bios");
        t.pcrs_mut().extend(4, b"kernel");
        assert_eq!(t.unseal(&blob).unwrap(), b"vdir-state");

        // Reboot with a modified kernel: unseal fails.
        t.power_cycle();
        t.pcrs_mut().extend(0, b"bios");
        t.pcrs_mut().extend(4, b"evil-kernel");
        assert_eq!(t.unseal(&blob), Err(TpmError::PcrMismatch));
    }

    #[test]
    fn dirs_write_read_and_policy() {
        let mut t = owned_tpm(2);
        let d = crate::hash(b"root-hash");
        t.write_dir(0, d).unwrap();
        t.write_dir(1, d).unwrap();
        assert_eq!(t.read_dir(0).unwrap(), d);
        assert_eq!(t.write_dir(5, d), Err(TpmError::BadIndex(5)));

        // A differently-measured boot cannot touch the DIRs.
        t.power_cycle();
        t.pcrs_mut().extend(0, b"bios");
        t.pcrs_mut().extend(4, b"evil-kernel");
        assert_eq!(t.read_dir(0), Err(TpmError::PcrMismatch));
        assert_eq!(t.write_dir(0, Digest::ZERO), Err(TpmError::PcrMismatch));

        // The right kernel regains access.
        t.power_cycle();
        t.pcrs_mut().extend(0, b"bios");
        t.pcrs_mut().extend(4, b"kernel");
        assert_eq!(t.read_dir(0).unwrap(), d);
    }

    #[test]
    fn nvram_define_write_read() {
        let mut t = owned_tpm(3);
        t.nv_define(1, 64, None).unwrap();
        assert_eq!(t.nv_define(1, 64, None), Err(TpmError::NvAreaExists(1)));
        let data = vec![0xabu8; 64];
        t.nv_write(1, &data).unwrap();
        assert_eq!(t.nv_read(1).unwrap(), data);
        assert_eq!(t.nv_write(1, &[0u8; 32]), Err(TpmError::NvSizeMismatch));
        t.nv_undefine(1).unwrap();
        assert_eq!(t.nv_read(1), Err(TpmError::NvAreaMissing(1)));
    }

    #[test]
    fn nvram_capacity_is_finite() {
        let mut t = owned_tpm(4);
        t.nv_define(1, NVRAM_CAPACITY, None).unwrap();
        let err = t.nv_define(2, 1, None);
        assert!(matches!(err, Err(TpmError::NvCapacityExceeded { .. })));
    }

    #[test]
    fn nvram_pcr_policy_enforced() {
        let mut t = owned_tpm(5);
        let sel = PcrSelection::of(&[4]);
        t.nv_define(7, 16, Some(&sel)).unwrap();
        t.nv_write(7, &[1u8; 16]).unwrap();
        t.pcrs_mut().extend(4, b"more-measurements");
        assert_eq!(t.nv_read(7), Err(TpmError::PcrMismatch));
    }

    #[test]
    fn monotonic_counters() {
        let mut t = owned_tpm(6);
        t.counter_create(9).unwrap();
        assert_eq!(t.counter_read(9).unwrap(), 0);
        assert_eq!(t.counter_increment(9).unwrap(), 1);
        assert_eq!(t.counter_increment(9).unwrap(), 2);
        assert_eq!(t.counter_read(9).unwrap(), 2);
        assert_eq!(t.counter_increment(42), Err(TpmError::CounterMissing(42)));
    }

    #[test]
    fn deterministic_seeding() {
        let a = Tpm::new_with_seed(7);
        let b = Tpm::new_with_seed(7);
        assert_eq!(a.ek_public(), b.ek_public());
        let c = Tpm::new_with_seed(8);
        assert_ne!(a.ek_public(), c.ek_public());
    }

    #[test]
    fn injected_rng_is_deterministic_end_to_end() {
        use rand::{rngs::StdRng, SeedableRng};
        let mk = || {
            let mut rng = StdRng::seed_from_u64(99);
            let mut t = Tpm::new_from_rng(&mut rng);
            t.pcrs_mut().extend(0, b"bios");
            t.take_ownership().unwrap();
            let mut nonce = [0u8; 16];
            t.get_random(&mut nonce);
            (t.ek_public(), nonce)
        };
        let (ek1, n1) = mk();
        let (ek2, n2) = mk();
        assert_eq!(ek1, ek2, "same injected RNG must yield the same EK");
        assert_eq!(n1, n2, "device randomness must be reproducible too");
    }

    #[test]
    fn dirs_survive_power_cycle() {
        let mut t = owned_tpm(9);
        let d = crate::hash(b"x");
        t.write_dir(0, d).unwrap();
        t.power_cycle();
        t.pcrs_mut().extend(0, b"bios");
        t.pcrs_mut().extend(4, b"kernel");
        assert_eq!(t.read_dir(0).unwrap(), d);
    }
}
