//! Sealing: encrypting data so it can only be recovered on the same
//! platform in the same (PCR-measured) software configuration.
//!
//! The Nexus seals its VDIR/VKEY state to the boot-time PCR values;
//! an attacker who boots a modified kernel gets different PCRs and the
//! unseal fails (§3.4).

use crate::error::TpmError;
use crate::pcr::{Digest, PcrSelection, DIGEST_LEN};
use aes::cipher::{KeyIvInit, StreamCipher};
use serde::{Deserialize, Serialize};
use sha2::{Digest as Sha2Digest, Sha256};

type Aes256Ctr = ctr::Ctr64BE<aes::Aes256>;

/// A blob produced by [`crate::Tpm::seal`]. Contains everything needed
/// to unseal *except* the SRK secret and the matching PCR state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SealedBlob {
    /// PCR selection the data is bound to.
    pub selection: PcrSelection,
    /// Composite digest the selection must evaluate to at unseal time.
    pub composite: Digest,
    /// Random nonce (CTR IV).
    pub nonce: [u8; 16],
    /// Ciphertext.
    pub ciphertext: Vec<u8>,
    /// Integrity tag over (key, nonce, composite, ciphertext).
    pub tag: Digest,
}

/// Derive the sealing key from the SRK seed and the composite the
/// blob is bound to. Binding the key itself to the composite means a
/// mismatched platform cannot even derive the right key.
pub(crate) fn derive_seal_key(srk_seed: &[u8; 32], composite: &Digest) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"nexus-tpm-seal-key");
    h.update(srk_seed);
    h.update(composite.0);
    let out = h.finalize();
    let mut k = [0u8; 32];
    k.copy_from_slice(&out);
    k
}

pub(crate) fn compute_tag(
    key: &[u8; 32],
    nonce: &[u8; 16],
    composite: &Digest,
    ciphertext: &[u8],
) -> Digest {
    let mut h = Sha256::new();
    h.update(b"nexus-tpm-seal-tag");
    h.update(key);
    h.update(nonce);
    h.update(composite.0);
    h.update((ciphertext.len() as u64).to_le_bytes());
    h.update(ciphertext);
    let out = h.finalize();
    let mut d = [0u8; DIGEST_LEN];
    d.copy_from_slice(&out);
    Digest(d)
}

pub(crate) fn seal_with_key(
    srk_seed: &[u8; 32],
    selection: PcrSelection,
    composite: Digest,
    nonce: [u8; 16],
    plaintext: &[u8],
) -> SealedBlob {
    let key = derive_seal_key(srk_seed, &composite);
    let mut ciphertext = plaintext.to_vec();
    let mut cipher = Aes256Ctr::new(&key, &nonce);
    cipher.apply_keystream(&mut ciphertext);
    let tag = compute_tag(&key, &nonce, &composite, &ciphertext);
    SealedBlob {
        selection,
        composite,
        nonce,
        ciphertext,
        tag,
    }
}

pub(crate) fn unseal_with_key(
    srk_seed: &[u8; 32],
    current_composite: &Digest,
    blob: &SealedBlob,
) -> Result<Vec<u8>, TpmError> {
    if current_composite != &blob.composite {
        return Err(TpmError::PcrMismatch);
    }
    let key = derive_seal_key(srk_seed, &blob.composite);
    let expect = compute_tag(&key, &blob.nonce, &blob.composite, &blob.ciphertext);
    if expect != blob.tag {
        return Err(TpmError::IntegrityFailure);
    }
    let mut plaintext = blob.ciphertext.clone();
    let mut cipher = Aes256Ctr::new(&key, &blob.nonce);
    cipher.apply_keystream(&mut plaintext);
    Ok(plaintext)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn composite_of(byte: u8) -> Digest {
        Digest([byte; DIGEST_LEN])
    }

    #[test]
    fn seal_unseal_round_trip() {
        let seed = [7u8; 32];
        let comp = composite_of(1);
        let blob = seal_with_key(
            &seed,
            PcrSelection::boot_chain(),
            comp,
            [9u8; 16],
            b"secret",
        );
        let out = unseal_with_key(&seed, &comp, &blob).unwrap();
        assert_eq!(out, b"secret");
    }

    #[test]
    fn unseal_fails_on_wrong_composite() {
        let seed = [7u8; 32];
        let blob = seal_with_key(
            &seed,
            PcrSelection::boot_chain(),
            composite_of(1),
            [9u8; 16],
            b"secret",
        );
        assert_eq!(
            unseal_with_key(&seed, &composite_of(2), &blob),
            Err(TpmError::PcrMismatch)
        );
    }

    #[test]
    fn unseal_fails_on_tampered_ciphertext() {
        let seed = [7u8; 32];
        let comp = composite_of(1);
        let mut blob = seal_with_key(
            &seed,
            PcrSelection::boot_chain(),
            comp,
            [9u8; 16],
            b"secret",
        );
        blob.ciphertext[0] ^= 1;
        assert_eq!(
            unseal_with_key(&seed, &comp, &blob),
            Err(TpmError::IntegrityFailure)
        );
    }

    #[test]
    fn unseal_fails_on_forged_composite_field() {
        // Attacker rewrites the blob's composite to match a hostile
        // platform: the key derivation differs, so the tag check fails.
        let seed = [7u8; 32];
        let comp = composite_of(1);
        let mut blob = seal_with_key(
            &seed,
            PcrSelection::boot_chain(),
            comp,
            [9u8; 16],
            b"secret",
        );
        blob.composite = composite_of(2);
        assert_eq!(
            unseal_with_key(&seed, &composite_of(2), &blob),
            Err(TpmError::IntegrityFailure)
        );
    }

    #[test]
    fn different_seeds_cannot_unseal() {
        let comp = composite_of(1);
        let blob = seal_with_key(
            &[7u8; 32],
            PcrSelection::boot_chain(),
            comp,
            [9u8; 16],
            b"s",
        );
        assert!(unseal_with_key(&[8u8; 32], &comp, &blob).is_err());
    }

    #[test]
    fn empty_plaintext_round_trips() {
        let seed = [0u8; 32];
        let comp = composite_of(0);
        let blob = seal_with_key(&seed, PcrSelection::none(), comp, [0u8; 16], b"");
        assert_eq!(unseal_with_key(&seed, &comp, &blob).unwrap(), b"");
    }
}
