//! Quotes and key certification: the TPM as the root of credential
//! chains.
//!
//! Externalized Nexus labels are signed by the kernel's Nexus key
//! (NK), which is certified by the TPM's attestation identity key
//! (AIK) together with the PCR composite current when NK was created;
//! the AIK in turn carries a certificate from the endorsement key
//! (EK) burned in at manufacture (§2.4). Verifying the chain
//! establishes, informally, "TPM says kernel says …".

use crate::pcr::{Digest, PcrSelection};
use ed25519_dalek::{Signature, Signer, SigningKey, Verifier, VerifyingKey};
use serde::{Deserialize, Serialize};

/// A TPM quote: a signed statement of the current PCR composite,
/// freshened by a caller-supplied nonce.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quote {
    /// The selection quoted over.
    pub selection: PcrSelection,
    /// The composite digest at quote time.
    pub composite: Digest,
    /// Anti-replay nonce supplied by the verifier.
    pub nonce: [u8; 16],
    /// AIK signature over the above.
    pub signature: Vec<u8>,
}

impl Quote {
    pub(crate) fn message(
        selection: &PcrSelection,
        composite: &Digest,
        nonce: &[u8; 16],
    ) -> Vec<u8> {
        let mut m = b"nexus-tpm-quote".to_vec();
        m.push(selection.len() as u8);
        for i in selection.iter() {
            m.push(i as u8);
        }
        m.extend_from_slice(&composite.0);
        m.extend_from_slice(nonce);
        m
    }

    /// Verify against the AIK public key.
    pub fn verify(&self, aik: &VerifyingKey) -> bool {
        let msg = Self::message(&self.selection, &self.composite, &self.nonce);
        Signature::from_slice(&self.signature)
            .map(|sig| aik.verify(&msg, &sig).is_ok())
            .unwrap_or(false)
    }
}

/// Certificate binding an AIK to the device's endorsement key.
/// (In deployments where TPM identity must stay private, a privacy
/// authority / trust broker would sit between EK and AIK — §3.4.)
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AikCert {
    /// The AIK public key bytes.
    pub aik_pub: [u8; 32],
    /// EK signature over the AIK public key.
    pub signature: Vec<u8>,
}

impl AikCert {
    pub(crate) fn message(aik_pub: &[u8; 32]) -> Vec<u8> {
        let mut m = b"nexus-tpm-aik-cert".to_vec();
        m.extend_from_slice(aik_pub);
        m
    }

    pub(crate) fn sign(ek: &SigningKey, aik_pub: [u8; 32]) -> AikCert {
        let sig = ek.sign(&Self::message(&aik_pub));
        AikCert {
            aik_pub,
            signature: sig.to_bytes().to_vec(),
        }
    }

    /// Verify against the endorsement public key.
    pub fn verify(&self, ek: &VerifyingKey) -> bool {
        Signature::from_slice(&self.signature)
            .map(|sig| ek.verify(&Self::message(&self.aik_pub), &sig).is_ok())
            .unwrap_or(false)
    }

    /// The certified AIK as a verifying key.
    pub fn aik(&self) -> Option<VerifyingKey> {
        VerifyingKey::from_bytes(&self.aik_pub).ok()
    }
}

/// Attestation that a (software-held) key was created on this platform
/// under a particular PCR composite — how the Nexus key NK is bound to
/// a specific kernel image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyAttestation {
    /// The certified public key bytes.
    pub subject_pub: [u8; 32],
    /// Composite at certification time.
    pub composite: Digest,
    /// Selection the composite covers.
    pub selection: PcrSelection,
    /// AIK signature.
    pub signature: Vec<u8>,
}

impl KeyAttestation {
    pub(crate) fn message(
        subject_pub: &[u8; 32],
        composite: &Digest,
        selection: &PcrSelection,
    ) -> Vec<u8> {
        let mut m = b"nexus-tpm-key-attest".to_vec();
        m.extend_from_slice(subject_pub);
        m.extend_from_slice(&composite.0);
        m.push(selection.len() as u8);
        for i in selection.iter() {
            m.push(i as u8);
        }
        m
    }

    /// Verify against the AIK.
    pub fn verify(&self, aik: &VerifyingKey) -> bool {
        let msg = Self::message(&self.subject_pub, &self.composite, &self.selection);
        Signature::from_slice(&self.signature)
            .map(|sig| aik.verify(&msg, &sig).is_ok())
            .unwrap_or(false)
    }

    /// The certified subject key.
    pub fn subject(&self) -> Option<VerifyingKey> {
        VerifyingKey::from_bytes(&self.subject_pub).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Tpm;

    #[test]
    fn quote_verifies_and_detects_tamper() {
        let mut tpm = Tpm::new_with_seed(1);
        tpm.pcrs_mut().extend(0, b"bios");
        tpm.take_ownership().unwrap();
        let nonce = [5u8; 16];
        let q = tpm.quote(&PcrSelection::boot_chain(), nonce).unwrap();
        let aik = tpm.aik_cert().unwrap().aik().unwrap();
        assert!(q.verify(&aik));

        let mut forged = q.clone();
        forged.composite = Digest([1u8; 32]);
        assert!(!forged.verify(&aik));

        let mut replayed = q;
        replayed.nonce = [6u8; 16];
        assert!(!replayed.verify(&aik));
    }

    #[test]
    fn aik_cert_chains_to_ek() {
        let mut tpm = Tpm::new_with_seed(2);
        tpm.take_ownership().unwrap();
        let cert = tpm.aik_cert().unwrap();
        assert!(cert.verify(&tpm.ek_public()));
        // Wrong EK rejects.
        let other = Tpm::new_with_seed(3);
        assert!(!cert.verify(&other.ek_public()));
    }

    #[test]
    fn key_attestation_binds_composite() {
        let mut tpm = Tpm::new_with_seed(4);
        tpm.pcrs_mut().extend(0, b"kernel");
        tpm.take_ownership().unwrap();
        let subject = [9u8; 32];
        // Use a real key so VerifyingKey::from_bytes succeeds.
        let sk = ed25519_dalek::SigningKey::from_bytes(&subject);
        let att = tpm
            .certify_key(sk.verifying_key().to_bytes(), &PcrSelection::boot_chain())
            .unwrap();
        let aik = tpm.aik_cert().unwrap().aik().unwrap();
        assert!(att.verify(&aik));
        let mut forged = att;
        forged.composite = Digest([0u8; 32]);
        assert!(!forged.verify(&aik));
    }
}
