//! TPM error type.

use std::fmt;

/// Errors returned by TPM operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TpmError {
    /// Operation requires ownership to have been taken.
    NotOwned,
    /// `take_ownership` called twice.
    AlreadyOwned,
    /// PCR / DIR / NVRAM / counter index out of range.
    BadIndex(usize),
    /// Current PCR state does not satisfy the policy bound to the
    /// resource (sealed blob, DIR, NVRAM area).
    PcrMismatch,
    /// Sealed blob failed its integrity check (tampered or truncated).
    IntegrityFailure,
    /// Malformed blob.
    BadBlob(String),
    /// NVRAM index already defined.
    NvAreaExists(u32),
    /// NVRAM index not defined.
    NvAreaMissing(u32),
    /// NVRAM capacity exhausted — the motivation for virtualizing
    /// secure storage in software (§3.3).
    NvCapacityExceeded {
        /// Bytes requested.
        requested: usize,
        /// Bytes remaining.
        available: usize,
    },
    /// Write exceeds the defined NVRAM area size.
    NvSizeMismatch,
    /// Monotonic counter not found.
    CounterMissing(u32),
    /// Signature verification failed.
    BadSignature,
}

impl fmt::Display for TpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TpmError::NotOwned => write!(f, "TPM ownership has not been taken"),
            TpmError::AlreadyOwned => write!(f, "TPM ownership already taken"),
            TpmError::BadIndex(i) => write!(f, "index {i} out of range"),
            TpmError::PcrMismatch => write!(f, "PCR state does not satisfy policy"),
            TpmError::IntegrityFailure => write!(f, "integrity check failed"),
            TpmError::BadBlob(m) => write!(f, "malformed blob: {m}"),
            TpmError::NvAreaExists(i) => write!(f, "NVRAM area {i} already defined"),
            TpmError::NvAreaMissing(i) => write!(f, "NVRAM area {i} not defined"),
            TpmError::NvCapacityExceeded {
                requested,
                available,
            } => write!(
                f,
                "NVRAM capacity exceeded: requested {requested}, available {available}"
            ),
            TpmError::NvSizeMismatch => write!(f, "write size does not match NVRAM area"),
            TpmError::CounterMissing(i) => write!(f, "monotonic counter {i} not found"),
            TpmError::BadSignature => write!(f, "signature verification failed"),
        }
    }
}

impl std::error::Error for TpmError {}
