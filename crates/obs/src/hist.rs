//! Lock-free log-linear latency histograms.
//!
//! The bucket layout is HdrHistogram-style log-linear: values below
//! `SUB_BUCKETS` (16) get exact unit buckets; above that, each
//! power-of-2 octave is split into `SUB_BUCKETS` linear sub-buckets, so
//! relative error is bounded by `1/SUB_BUCKETS` (≈6%) at every
//! magnitude while the whole `u64` range fits in under a thousand
//! buckets.
//!
//! Recording is wait-free: one relaxed `fetch_add` on a striped bucket
//! counter. Stripes are cache-line-padded per-thread lanes (a thread
//! picks its stripe once, from a round-robin assignment) so concurrent
//! recorders do not bounce one counter line between cores. Snapshots
//! sum the stripes.
//!
//! ## Memory-ordering recipe
//!
//! Every counter update and read uses `Ordering::Relaxed`. That is
//! sufficient because the histogram carries no cross-field invariant a
//! stronger ordering would protect: each bucket is an independent
//! monotone counter, and a snapshot is explicitly a *statistical*
//! observation — it may interleave with in-flight recordings and the
//! per-bucket sums may momentarily disagree with a concurrently
//! bumped total. Exactness is still guaranteed at synchronization
//! points the *caller* establishes: joining the recording threads (or
//! any other happens-before edge) makes every prior `fetch_add`
//! visible, so a quiesced snapshot reconciles to the exact count (the
//! concurrency test in this module asserts precisely that).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Linear sub-buckets per octave (and the width of the exact range).
const SUB_BUCKETS: usize = 16;
/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 4;
/// Octaves above the exact range: values with a top bit in
/// `SUB_BITS..=63` land in octaves `1..=60`.
const OCTAVES: usize = 64 - SUB_BITS as usize;
/// Total bucket count covering the whole `u64` range.
pub(crate) const NUM_BUCKETS: usize = (OCTAVES + 1) * SUB_BUCKETS;

/// Concurrent recorder stripes. Each stripe is a full bucket array;
/// recording threads spread across stripes round-robin so concurrent
/// `fetch_add`s land on different cache lines.
const STRIPES: usize = 8;

/// Bucket index of a recorded value.
fn bucket_of(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let top = 63 - v.leading_zeros(); // >= SUB_BITS
    let octave = (top - SUB_BITS + 1) as usize;
    let sub = (v >> (top - SUB_BITS)) as usize & (SUB_BUCKETS - 1);
    octave * SUB_BUCKETS + sub
}

/// Lowest value mapping to bucket `i`.
fn bucket_low(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return i as u64;
    }
    let octave = i / SUB_BUCKETS;
    let sub = i % SUB_BUCKETS;
    ((SUB_BUCKETS + sub) as u64) << (octave - 1)
}

/// Highest value mapping to bucket `i` (the reported representative:
/// "at most this much", the conservative side for a latency bound).
fn bucket_high(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return i as u64;
    }
    let octave = i / SUB_BUCKETS;
    let width = 1u64 << (octave - 1);
    bucket_low(i).saturating_add(width - 1)
}

/// One stripe: a padded, independently summed bucket array.
struct Stripe {
    buckets: Vec<AtomicU64>,
    /// Running sum of recorded values (for the mean).
    sum: AtomicU64,
    /// Pad the stripe tail so adjacent stripes' hot heads do not share
    /// a line. (The `Vec` contents are separate allocations already;
    /// this guards the `sum` words.)
    _pad: [u64; 6],
}

impl Stripe {
    fn new() -> Self {
        Stripe {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            _pad: [0; 6],
        }
    }
}

/// Round-robin stripe assignment, cached per thread.
fn my_stripe() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
    }
    STRIPE.with(|s| *s)
}

/// A lock-free log-linear histogram of `u64` samples (nanoseconds, by
/// convention on the authorize path).
///
/// ```
/// use nexus_obs::Histogram;
///
/// let h = Histogram::new();
/// for v in [10, 10, 1000, 100_000] {
///     h.record(v);
/// }
/// let s = h.snapshot();
/// assert_eq!(s.count, 4);
/// assert_eq!(s.quantile(0.5), 10); // exact below 16
/// ```
pub struct Histogram {
    stripes: Vec<Stripe>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            stripes: (0..STRIPES).map(|_| Stripe::new()).collect(),
        }
    }

    /// Record one sample. Wait-free: one relaxed `fetch_add` on this
    /// thread's stripe (plus one for the running sum).
    pub fn record(&self, value: u64) {
        let stripe = &self.stripes[my_stripe()];
        stripe.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        stripe.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Sum the stripes into an owned, mergeable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; NUM_BUCKETS];
        let mut sum = 0u64;
        for stripe in &self.stripes {
            for (acc, b) in buckets.iter_mut().zip(&stripe.buckets) {
                *acc += b.load(Ordering::Relaxed);
            }
            sum = sum.wrapping_add(stripe.sum.load(Ordering::Relaxed));
        }
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum,
        }
    }

    /// Reset every bucket to zero. Not atomic with respect to
    /// concurrent recorders: samples recorded while the reset sweeps
    /// may survive or vanish — callers quiesce first when exactness
    /// matters (benchmark A/B phases do).
    pub fn reset(&self) {
        for stripe in &self.stripes {
            for b in &stripe.buckets {
                b.store(0, Ordering::Relaxed);
            }
            stripe.sum.store(0, Ordering::Relaxed);
        }
    }
}

/// An owned point-in-time summation of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (log-linear layout; see module docs).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all recorded values (wrapping; for the mean).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (merge identity).
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Fold another snapshot into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// The value at quantile `q` in `[0, 1]`: the representative
    /// (upper bound) of the bucket holding the `ceil(q·count)`-th
    /// sample. Exact for values below 16; within one sub-bucket
    /// (≈6% relative error) above. Returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(i);
            }
        }
        bucket_high(NUM_BUCKETS - 1)
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Largest recorded value's bucket representative (upper bound),
    /// 0 when empty.
    pub fn max(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&c| c > 0)
            .map(bucket_high)
            .unwrap_or(0)
    }

    /// Arithmetic mean of the recorded values, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_boundaries_are_monotone_and_exhaustive() {
        // Every bucket's [low, high] range maps back to that bucket,
        // and consecutive buckets tile the line without gaps.
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = (bucket_low(i), bucket_high(i));
            assert!(lo <= hi, "bucket {i}");
            assert_eq!(bucket_of(lo), i, "low edge of bucket {i}");
            assert_eq!(bucket_of(hi), i, "high edge of bucket {i}");
            if i + 1 < NUM_BUCKETS && hi < u64::MAX {
                assert_eq!(bucket_of(hi + 1), i + 1, "seam after bucket {i}");
            }
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(15), 15);
        assert_eq!(bucket_of(16), 16);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn exact_below_sixteen_and_bounded_error_above() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        let s = h.snapshot();
        for v in 0..16u64 {
            assert_eq!(s.buckets[v as usize], 1);
        }
        // Above the exact range the representative overestimates by
        // at most one sub-bucket width (1/16 relative).
        let h = Histogram::new();
        h.record(1_000_000);
        let q = h.snapshot().quantile(1.0);
        assert!(q >= 1_000_000);
        assert!((q as f64) < 1_000_000.0 * (1.0 + 1.0 / 16.0) + 1.0);
    }

    #[test]
    fn concurrent_recording_reconciles_to_exact_count() {
        let h = Arc::new(Histogram::new());
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        // Spread across magnitudes.
                        h.record((i % 20) * (t as u64 + 1) * 97 + 1);
                    }
                })
            })
            .collect();
        for hnd in handles {
            hnd.join().unwrap();
        }
        // Joins established happens-before: the quiesced snapshot is
        // exact despite every fetch_add being Relaxed.
        let s = h.snapshot();
        assert_eq!(s.count, THREADS as u64 * PER_THREAD);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let (a, b) = (Histogram::new(), Histogram::new());
        for v in [1u64, 5, 300, 7_000] {
            a.record(v);
        }
        for v in [2u64, 5, 300, 1_000_000] {
            b.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let reference = Histogram::new();
        for v in [1u64, 5, 300, 7_000, 2, 5, 300, 1_000_000] {
            reference.record(v);
        }
        assert_eq!(merged, reference.snapshot());
        assert_eq!(merged.count, 8);
    }

    #[test]
    fn quantiles_land_on_recorded_magnitudes() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..9 {
            h.record(1_000);
        }
        h.record(100_000);
        let s = h.snapshot();
        assert_eq!(s.p50(), 10);
        assert_eq!(s.p90(), 10);
        assert!(s.p99() >= 1_000 && (s.p99() as f64) < 1_000.0 * 1.07);
        assert!(s.p999() >= 100_000);
        assert!(s.max() >= 100_000);
        assert_eq!(s.quantile(0.0), 10); // rank clamps to the 1st sample
        assert_eq!(HistogramSnapshot::empty().p99(), 0);
    }
}
