//! The decision audit journal: a bounded ring of per-verdict events.
//!
//! The journal makes the logical-attestation story *observable*: every
//! recorded event says who asked, what they asked for, what the answer
//! was, under which epoch triple it was decided — and, for a denial,
//! which subgoal the prover refuted. It is diagnostics, not an audit
//! *log*: bounded, lossy under overload, and never on the hot path's
//! critical section.
//!
//! ## Torn-write safety
//!
//! Slots are claimed lock-free (one `fetch_add` on the head counter);
//! the slot *payload* sits behind a per-slot mutex that is uncontended
//! except when a writer laps the ring onto a slot another writer or
//! reader currently holds. Both sides use `try_lock`:
//!
//! * a writer that loses the race **drops its event** (counted in
//!   `dropped`) rather than blocking the authorize path;
//! * a reader that loses skips the slot — it sees a coherent older
//!   ring, never a half-written event.
//!
//! This is the safe-Rust analog of the decision cache's seqlock
//! discipline (torn read ⇒ miss): a torn *write* becomes a dropped
//! event, a torn *read* becomes a skipped slot, and no observer can
//! ever see interleaved halves of two events. Wraparound order is
//! recovered from the monotone per-event sequence number, not from
//! slot position.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The verdict an audit event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditVerdict {
    /// The request was allowed.
    Allow,
    /// The request was denied.
    Deny,
    /// Evaluation faulted (pool shutdown, unstable epoch, bad pid).
    Fault,
    /// An analyzer minted a credential into a labelstore.
    Mint,
    /// An analyzer refused to mint (the analysis found a witness;
    /// the event's `refuted` field carries it).
    Refuse,
    /// A previously minted credential was revoked (re-analysis after
    /// a binary change).
    Revoke,
}

impl AuditVerdict {
    /// Stable lowercase name (for rendering).
    pub fn name(&self) -> &'static str {
        match self {
            AuditVerdict::Allow => "allow",
            AuditVerdict::Deny => "deny",
            AuditVerdict::Fault => "fault",
            AuditVerdict::Mint => "mint",
            AuditVerdict::Refuse => "refuse",
            AuditVerdict::Revoke => "revoke",
        }
    }
}

/// Which authorization path produced the event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditPath {
    /// Decision-cache hit (sampled; see the kernel's `ObsConfig`).
    CacheHit,
    /// Inline (caller-thread) guard evaluation.
    Inline,
    /// Batched evaluation on the authzd pipeline.
    Pipeline,
    /// A labeling-function (analyzer) credential event — mint,
    /// refuse, or revoke — rather than an authorization verdict.
    Analyzer,
    /// A label change applied from a remotely agreed broadcast op
    /// (the distributed credential layer), not a local system call.
    Replication,
}

impl AuditPath {
    /// Stable lowercase name (for rendering).
    pub fn name(&self) -> &'static str {
        match self {
            AuditPath::CacheHit => "cache-hit",
            AuditPath::Inline => "inline",
            AuditPath::Pipeline => "pipeline",
            AuditPath::Analyzer => "analyzer",
            AuditPath::Replication => "replication",
        }
    }
}

/// Per-stage spans (nanoseconds) known at the recording site. Stages
/// a path does not traverse stay `None` — a cache hit has only
/// `complete`; a pipeline event carries the spans its evaluator
/// measured, while full queue-wait distributions live in the stage
/// histograms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageSpans {
    /// Submission (admission into the pipeline queue).
    pub submit_ns: Option<u64>,
    /// Time spent queued before a worker popped the request (for
    /// pipeline events: measured submit→evaluation-start).
    pub queue_wait_ns: Option<u64>,
    /// Batch assembly (coalescing scan) span.
    pub batch_assembly_ns: Option<u64>,
    /// Proof construction (auto-prove) span.
    pub prove_ns: Option<u64>,
    /// Proof checking (guard) span.
    pub verify_ns: Option<u64>,
    /// End-to-end span observed by the recording site.
    pub complete_ns: Option<u64>,
}

/// One recorded authorization verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEvent {
    /// Monotone sequence number (journal-global claim order).
    pub seq: u64,
    /// Requesting process.
    pub pid: u64,
    /// Operation attempted.
    pub op: String,
    /// Object operated on.
    pub object: String,
    /// The verdict.
    pub verdict: AuditVerdict,
    /// The path that produced it.
    pub path: AuditPath,
    /// Did the decision come from the kernel decision cache?
    pub cache_hit: bool,
    /// The (goal, proof, label-removal) epoch triple the decision was
    /// evaluated under.
    pub epochs: [u64; 3],
    /// Cumulative prover-memo hit counter at event time (a snapshot of
    /// the guard's session counter, not a per-request delta).
    pub memo_hits: u64,
    /// Per-stage spans known at the recording site.
    pub stages: StageSpans,
    /// For denials: the subgoal the prover refuted (or the deny
    /// reason's blocking formula), rendered as NAL text.
    pub refuted: Option<String>,
}

/// A bounded ring of [`AuditEvent`]s. See the module docs for the
/// concurrency discipline.
pub struct AuditJournal {
    head: AtomicU64,
    dropped: AtomicU64,
    slots: Vec<Mutex<Option<AuditEvent>>>,
}

impl AuditJournal {
    /// A journal holding the last `capacity` events (rounded up to 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        AuditJournal {
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events recorded since creation (claims, including any that were
    /// subsequently dropped in a slot race).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events dropped because their slot was held by a concurrent
    /// writer or reader at write time.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Record an event. Never blocks: the slot claim is one
    /// `fetch_add`; if the claimed slot is momentarily held (a lapping
    /// writer or a reader mid-scan), the event is dropped and counted.
    pub fn push(&self, mut event: AuditEvent) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        event.seq = seq;
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        match slot.try_lock() {
            Ok(mut guard) => {
                // A slower writer lapped by a faster one must not
                // clobber the newer event with its older one.
                let stale = matches!(&*guard, Some(existing) if existing.seq > seq);
                if stale {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                } else {
                    *guard = Some(event);
                }
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The most recent `n` events, newest first. Slots held by
    /// concurrent writers are skipped (never torn); ordering is by
    /// sequence number, so wraparound cannot interleave old and new.
    pub fn recent(&self, n: usize) -> Vec<AuditEvent> {
        let mut events: Vec<AuditEvent> = self
            .slots
            .iter()
            .filter_map(|slot| match slot.try_lock() {
                Ok(guard) => guard.clone(),
                Err(_) => None,
            })
            .collect();
        events.sort_by_key(|e| std::cmp::Reverse(e.seq));
        events.truncate(n);
        events
    }
}

/// A blank event for a given (pid, op, object, verdict, path);
/// recording sites fill in the rest. `seq` is assigned by
/// [`AuditJournal::push`].
pub fn event(
    pid: u64,
    op: impl Into<String>,
    object: impl Into<String>,
    verdict: AuditVerdict,
    path: AuditPath,
) -> AuditEvent {
    AuditEvent {
        seq: 0,
        pid,
        op: op.into(),
        object: object.into(),
        verdict,
        path,
        cache_hit: matches!(path, AuditPath::CacheHit),
        epochs: [0; 3],
        memo_hits: 0,
        stages: StageSpans::default(),
        refuted: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ev(pid: u64) -> AuditEvent {
        event(pid, "op", "obj", AuditVerdict::Allow, AuditPath::Inline)
    }

    #[test]
    fn wraparound_keeps_newest_in_sequence_order() {
        let j = AuditJournal::new(4);
        for pid in 0..10 {
            j.push(ev(pid));
        }
        let recent = j.recent(10);
        // Capacity 4: only the last four survive, newest first.
        assert_eq!(recent.len(), 4);
        let pids: Vec<u64> = recent.iter().map(|e| e.pid).collect();
        assert_eq!(pids, vec![9, 8, 7, 6]);
        let seqs: Vec<u64> = recent.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![9, 8, 7, 6]);
        assert_eq!(j.recorded(), 10);
        // `recent(n)` truncates.
        assert_eq!(j.recent(2).len(), 2);
        assert_eq!(j.recent(2)[0].pid, 9);
    }

    #[test]
    fn concurrent_pushes_never_tear_and_account_for_every_claim() {
        let j = Arc::new(AuditJournal::new(8));
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 2_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let j = Arc::clone(&j);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        let mut e = ev(t);
                        // A recognizable cross-field invariant: op and
                        // object both derive from (t, i), so a torn
                        // write would be visible as a mismatched pair.
                        e.op = format!("op-{t}-{i}");
                        e.object = format!("obj-{t}-{i}");
                        j.push(e);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(j.recorded(), THREADS * PER_THREAD);
        for e in j.recent(usize::MAX) {
            let op_tail = e.op.strip_prefix("op-").unwrap();
            let obj_tail = e.object.strip_prefix("obj-").unwrap();
            assert_eq!(op_tail, obj_tail, "torn event: {e:?}");
        }
    }

    #[test]
    fn readers_skip_slots_held_by_writers() {
        let j = AuditJournal::new(2);
        j.push(ev(1));
        j.push(ev(2));
        // Hold slot 0 (seq 0's slot) as if a writer were mid-flight.
        let _held = j.slots[0].try_lock().unwrap();
        let recent = j.recent(10);
        assert_eq!(recent.len(), 1, "held slot must be skipped, not torn");
        assert_eq!(recent[0].pid, 2);
        // A push that lands on the held slot is dropped, not blocked.
        j.push(ev(3));
        assert_eq!(j.dropped(), 1);
    }

    #[test]
    fn denial_events_carry_the_refuted_subgoal() {
        let j = AuditJournal::new(8);
        let mut e = event(
            9,
            "write",
            "/secret",
            AuditVerdict::Deny,
            AuditPath::Pipeline,
        );
        e.refuted = Some("Owner says ok".to_string());
        j.push(e);
        let got = &j.recent(1)[0];
        assert_eq!(got.verdict, AuditVerdict::Deny);
        assert_eq!(got.refuted.as_deref(), Some("Owner says ok"));
    }
}
