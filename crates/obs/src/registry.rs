//! The unified metrics registry and its export formats.
//!
//! Every stats surface in the stack (`DecisionCacheStats`,
//! `GuardStats`, `ProverStats`, `SearchStats`, `PoolStats`, the
//! interpose counters, the stage histograms) reports through one
//! [`MetricsRegistry`]: the holder registers each quantity under a
//! stable name and the registry renders them all as one
//! [`TelemetrySnapshot`] — Prometheus-style text exposition or JSON,
//! both hand-rolled (this crate is dependency-free).
//!
//! The registry is a *collection* surface, not a recording one: hot
//! paths keep bumping their own striped atomics and histograms; a
//! snapshot call polls those sources once and freezes the values.

use crate::hist::HistogramSnapshot;

/// One sampled metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Monotone counter.
    Counter(u64),
    /// Point-in-time level (may go down).
    Gauge(i64),
    /// Distribution summary.
    Histogram(HistogramSnapshot),
}

/// One named, sampled metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Stable exposition name (`snake_case`, `nexus_` prefix by
    /// convention).
    pub name: String,
    /// One-line human description.
    pub help: String,
    /// The sampled value.
    pub value: SampleValue,
}

/// Collects named metric samples and freezes them into a
/// [`TelemetrySnapshot`].
///
/// ```
/// use nexus_obs::{Histogram, MetricsRegistry};
///
/// let h = Histogram::new();
/// h.record(250);
///
/// let mut reg = MetricsRegistry::new();
/// reg.counter("nexus_demo_hits_total", "demo hits", 3);
/// reg.gauge("nexus_demo_depth", "demo backlog", 2);
/// reg.histogram("nexus_demo_latency_ns", "demo latency", h.snapshot());
/// let snap = reg.finish();
/// assert!(snap.render_text().contains("nexus_demo_hits_total 3"));
/// assert!(snap.render_json().contains("\"nexus_demo_depth\""));
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Vec<MetricSample>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Register a counter sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) -> &mut Self {
        self.metrics.push(MetricSample {
            name: name.to_string(),
            help: help.to_string(),
            value: SampleValue::Counter(value),
        });
        self
    }

    /// Register a gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: i64) -> &mut Self {
        self.metrics.push(MetricSample {
            name: name.to_string(),
            help: help.to_string(),
            value: SampleValue::Gauge(value),
        });
        self
    }

    /// Register a histogram sample.
    pub fn histogram(&mut self, name: &str, help: &str, snapshot: HistogramSnapshot) -> &mut Self {
        self.metrics.push(MetricSample {
            name: name.to_string(),
            help: help.to_string(),
            value: SampleValue::Histogram(snapshot),
        });
        self
    }

    /// Freeze into a snapshot.
    pub fn finish(self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            metrics: self.metrics,
        }
    }
}

/// A frozen set of metric samples with text and JSON renderers.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// The samples, in registration order.
    pub metrics: Vec<MetricSample>,
}

impl TelemetrySnapshot {
    /// Look up a sample by name.
    pub fn get(&self, name: &str) -> Option<&MetricSample> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Prometheus-style text exposition: `# HELP` / `# TYPE` preamble
    /// per metric; histograms render as summaries (quantile series
    /// plus `_sum` and `_count`).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            out.push_str(&format!("# HELP {} {}\n", m.name, m.help));
            match &m.value {
                SampleValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {} counter\n{} {}\n", m.name, m.name, v));
                }
                SampleValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {} gauge\n{} {}\n", m.name, m.name, v));
                }
                SampleValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {} summary\n", m.name));
                    for (q, v) in [
                        ("0.5", h.p50()),
                        ("0.9", h.p90()),
                        ("0.99", h.p99()),
                        ("0.999", h.p999()),
                    ] {
                        out.push_str(&format!("{}{{quantile=\"{}\"}} {}\n", m.name, q, v));
                    }
                    out.push_str(&format!("{}_sum {}\n", m.name, h.sum));
                    out.push_str(&format!("{}_count {}\n", m.name, h.count));
                }
            }
        }
        out
    }

    /// JSON object keyed by metric name. Counters and gauges render
    /// as numbers; histograms as
    /// `{"count", "sum", "mean", "p50", "p90", "p99", "p999", "max"}`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(&m.name));
            out.push(':');
            match &m.value {
                SampleValue::Counter(v) => out.push_str(&v.to_string()),
                SampleValue::Gauge(v) => out.push_str(&v.to_string()),
                SampleValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"count\":{},\"sum\":{},\"mean\":{:.1},\"p50\":{},\"p90\":{},\
                         \"p99\":{},\"p999\":{},\"max\":{}}}",
                        h.count,
                        h.sum,
                        h.mean(),
                        h.p50(),
                        h.p90(),
                        h.p99(),
                        h.p999(),
                        h.max()
                    ));
                }
            }
        }
        out.push('}');
        out
    }
}

/// Render `s` as a JSON string literal (quoted, escaped).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn sample() -> TelemetrySnapshot {
        let h = Histogram::new();
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        let mut reg = MetricsRegistry::new();
        reg.counter("nexus_hits_total", "cache hits", 42)
            .gauge("nexus_queue_depth", "backlog", -1)
            .histogram("nexus_lat_ns", "latency", h.snapshot());
        reg.finish()
    }

    #[test]
    fn text_exposition_has_help_type_and_quantiles() {
        let text = sample().render_text();
        assert!(text.contains("# HELP nexus_hits_total cache hits"));
        assert!(text.contains("# TYPE nexus_hits_total counter"));
        assert!(text.contains("nexus_hits_total 42"));
        assert!(text.contains("nexus_queue_depth -1"));
        assert!(text.contains("# TYPE nexus_lat_ns summary"));
        assert!(text.contains("nexus_lat_ns{quantile=\"0.99\"}"));
        assert!(text.contains("nexus_lat_ns_count 3"));
        assert!(text.contains("nexus_lat_ns_sum 600"));
    }

    #[test]
    fn json_is_well_formed_and_keyed_by_name() {
        let snap = sample();
        let json = snap.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"nexus_hits_total\":42"));
        assert!(json.contains("\"nexus_queue_depth\":-1"));
        assert!(json.contains("\"count\":3"));
        assert!(snap.get("nexus_lat_ns").is_some());
        assert!(snap.get("nope").is_none());
    }

    #[test]
    fn json_string_escapes_control_characters() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
