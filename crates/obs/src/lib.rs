//! # `nexus-obs` — dependency-free telemetry for the authorization stack
//!
//! The paper's central claim is that logical attestation makes every
//! authorization verdict *explainable*; this crate makes the stack
//! *observable* to match. Three pieces, all hand-rolled on `std`:
//!
//! * **[`Histogram`]** — lock-free log-linear latency histograms
//!   (striped atomic buckets, p50/p90/p99/p999, mergeable snapshots)
//!   behind per-stage timers ([`StageTimers`]) for the authorize path:
//!   submit → queue-wait → batch-assembly → prove → verify → complete.
//! * **[`MetricsRegistry`]** — unifies every stats surface behind
//!   named counter/gauge/histogram samples, frozen into one
//!   [`TelemetrySnapshot`] with Prometheus-style text and JSON
//!   renderers.
//! * **[`AuditJournal`]** — a bounded, torn-write-safe ring of
//!   per-verdict [`AuditEvent`]s: who asked, what the answer was,
//!   under which epochs, and (for denials) which subgoal the prover
//!   refuted.
//!
//! The kernel owns the composite and exposes it as
//! `Nexus::telemetry_snapshot()` / `Nexus::audit_recent()`;
//! [`ObsConfig`] gates everything behind one atomic flag so the
//! disabled baseline costs a single load on the hot path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod hist;
pub mod registry;

pub use audit::{event, AuditEvent, AuditJournal, AuditPath, AuditVerdict, StageSpans};
pub use hist::{Histogram, HistogramSnapshot};
pub use registry::{json_string, MetricSample, MetricsRegistry, SampleValue, TelemetrySnapshot};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Telemetry configuration. Carried inside the kernel's `NexusConfig`
/// (hence `Copy`); `enabled` may be toggled at runtime, the other
/// knobs take effect at boot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Master switch. Off, the hot path pays one atomic load and the
    /// stage timers/journal record nothing — the A/B baseline the
    /// `fig12` overhead bench compares against.
    pub enabled: bool,
    /// Cache-hit audit sampling: one hit in `2^hit_sample_shift` is
    /// journaled (with its end-to-end span). Misses, denials, and
    /// faults are always journaled — they are µs-scale and rare, and
    /// denials must always carry their refutation. `0` samples every
    /// hit (tests); the default 6 (1 in 64) keeps the ~ns hit path
    /// within the fig12 overhead bound.
    pub hit_sample_shift: u32,
    /// Audit journal capacity (events). Applied at boot.
    pub audit_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: true,
            hit_sample_shift: 6,
            audit_capacity: 1024,
        }
    }
}

/// The disabled A/B baseline.
impl ObsConfig {
    /// Telemetry fully off (the `fig12` comparison baseline).
    pub fn disabled() -> Self {
        ObsConfig {
            enabled: false,
            ..ObsConfig::default()
        }
    }
}

/// Stages of the authorize path, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Admission into the pipeline queue (submitter thread).
    Submit = 0,
    /// Queued, waiting for a worker to pop.
    QueueWait = 1,
    /// Coalescing scan assembling the batch (queue mutex held).
    BatchAssembly = 2,
    /// Proof construction (auto-prove) for the batch.
    Prove = 3,
    /// Proof checking (guard) for the batch.
    Verify = 4,
    /// End-to-end: submit (or inline entry) to verdict delivery.
    Complete = 5,
}

impl Stage {
    /// Every stage, in order.
    pub const ALL: [Stage; 6] = [
        Stage::Submit,
        Stage::QueueWait,
        Stage::BatchAssembly,
        Stage::Prove,
        Stage::Verify,
        Stage::Complete,
    ];

    /// Stable snake_case name (metric suffixes).
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Submit => "submit",
            Stage::QueueWait => "queue_wait",
            Stage::BatchAssembly => "batch_assembly",
            Stage::Prove => "prove",
            Stage::Verify => "verify",
            Stage::Complete => "complete",
        }
    }
}

/// Per-stage latency histograms for the authorize path, shared (one
/// `Arc`) between the kernel and the authzd pool so both record into
/// the same distributions. The `enabled` flag is the telemetry master
/// switch: every recording site checks it first, so disabling
/// telemetry reduces the whole layer to one atomic load per probe.
pub struct StageTimers {
    enabled: AtomicBool,
    hists: [Histogram; 6],
}

impl StageTimers {
    /// Fresh timers; `enabled` per config.
    pub fn new(enabled: bool) -> Self {
        StageTimers {
            enabled: AtomicBool::new(enabled),
            hists: Default::default(),
        }
    }

    /// Is telemetry on? One relaxed load — the only cost a disabled
    /// stack pays.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip the master switch (runtime config changes).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Record `ns` into `stage`'s histogram (no-op while disabled).
    #[inline]
    pub fn record(&self, stage: Stage, ns: u64) {
        if self.enabled() {
            self.hists[stage as usize].record(ns);
        }
    }

    /// Record a [`std::time::Duration`] into `stage`.
    #[inline]
    pub fn record_duration(&self, stage: Stage, d: std::time::Duration) {
        self.record(stage, d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Snapshot one stage's distribution.
    pub fn snapshot(&self, stage: Stage) -> HistogramSnapshot {
        self.hists[stage as usize].snapshot()
    }

    /// Reset every stage histogram (benchmark A/B phases).
    pub fn reset(&self) {
        for h in &self.hists {
            h.reset();
        }
    }
}

/// A striped 1-in-`2^shift` sampler for hit-path auditing: `tick`
/// costs one relaxed `fetch_add` on a cache-line-spread stripe and
/// returns `true` once per `2^shift` calls *per stripe* — a uniform
/// sample without any shared hot counter.
pub struct Sampler {
    mask: u64,
    stripes: [CachePadded; 8],
}

#[repr(align(64))]
#[derive(Default)]
struct CachePadded {
    n: AtomicU64,
}

impl Sampler {
    /// Sample 1 in `2^shift` ticks (shift 0 ⇒ every tick).
    pub fn new(shift: u32) -> Self {
        Sampler {
            mask: (1u64 << shift.min(63)) - 1,
            stripes: Default::default(),
        }
    }

    /// Count one event; `true` when this one is sampled.
    #[inline]
    pub fn tick(&self) -> bool {
        let stripe = &self.stripes[crate::hist_stripe_hint() & 7];
        stripe.n.fetch_add(1, Ordering::Relaxed) & self.mask == 0
    }
}

/// Cheap per-thread stripe hint shared by [`Sampler`] (and usable by
/// other striped structures): a small integer stable for the thread's
/// lifetime.
fn hist_stripe_hint() -> usize {
    use std::sync::atomic::AtomicUsize;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static HINT: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    HINT.with(|h| *h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_timers_gate_on_the_enabled_flag() {
        let t = StageTimers::new(false);
        t.record(Stage::Prove, 100);
        assert_eq!(t.snapshot(Stage::Prove).count, 0);
        t.set_enabled(true);
        t.record(Stage::Prove, 100);
        t.record_duration(Stage::Verify, std::time::Duration::from_nanos(250));
        assert_eq!(t.snapshot(Stage::Prove).count, 1);
        assert_eq!(t.snapshot(Stage::Verify).count, 1);
        t.reset();
        assert_eq!(t.snapshot(Stage::Prove).count, 0);
    }

    #[test]
    fn sampler_rate_matches_shift() {
        let s = Sampler::new(3); // 1 in 8 per stripe
        let sampled = (0..8_000).filter(|_| s.tick()).count();
        // Single-threaded: exactly one stripe, exact rate.
        assert_eq!(sampled, 1_000);
        let every = Sampler::new(0);
        assert!((0..100).all(|_| every.tick()));
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "submit",
                "queue_wait",
                "batch_assembly",
                "prove",
                "verify",
                "complete"
            ]
        );
    }

    #[test]
    fn obs_config_defaults() {
        let cfg = ObsConfig::default();
        assert!(cfg.enabled);
        assert_eq!(cfg.hit_sample_shift, 6);
        assert!(!ObsConfig::disabled().enabled);
    }
}
