//! Property tests for the or-set label CRDT: the strong-eventual-
//! consistency obligations (Gomes et al.) under arbitrary seeded op
//! interleavings, duplicated deliveries, and reordering. Every
//! failure message carries the generating seed — rerunning with that
//! seed replays the exact schedule.

use nexus_dist::{Dot, LabelOp, LabelRecord, OrSetLabels};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

const SUBJECTS: [&str; 4] = ["alice", "bob", "carol", "dave"];

/// Generate a plausible op history: mints with globally unique dots,
/// revocations and transfers that reference previously minted dots
/// (as a real replica would — revoking what it has observed).
fn gen_ops(seed: u64, count: usize) -> Vec<LabelOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counter = 0u64;
    let mut minted: Vec<(Dot, LabelRecord)> = Vec::new();
    let mut ops = Vec::new();
    while ops.len() < count {
        let roll = rng.next_u64() % 100;
        if minted.is_empty() || roll < 55 {
            counter += 1;
            let dot = Dot::new((rng.next_u64() % 4) as u32, counter);
            let rec = LabelRecord::new(
                SUBJECTS[(rng.next_u64() as usize) % SUBJECTS.len()],
                "CA",
                &format!("claim{}", rng.next_u64() % 6),
            );
            minted.push((dot, rec.clone()));
            ops.push(LabelOp::Mint { dot, label: rec });
        } else if roll < 85 {
            let (_, rec) = minted[(rng.next_u64() as usize) % minted.len()].clone();
            let dots: Vec<Dot> = minted
                .iter()
                .filter(|(_, r)| r == &rec)
                .filter(|_| rng.next_u64() % 2 == 0)
                .map(|(d, _)| *d)
                .collect();
            if dots.is_empty() {
                continue;
            }
            ops.push(LabelOp::Revoke { label: rec, dots });
        } else {
            let (_, rec) = minted[(rng.next_u64() as usize) % minted.len()].clone();
            let dots: Vec<Dot> = minted
                .iter()
                .filter(|(_, r)| r == &rec)
                .map(|(d, _)| *d)
                .collect();
            counter += 1;
            let dot = Dot::new((rng.next_u64() % 4) as u32, counter);
            let to = SUBJECTS[(rng.next_u64() as usize) % SUBJECTS.len()];
            minted.push((dot, LabelRecord::new(to, &rec.speaker, &rec.statement)));
            ops.push(LabelOp::Transfer {
                label: rec,
                dots,
                to_subject: to.to_string(),
                dot,
            });
        }
    }
    ops
}

fn apply_all(ops: &[LabelOp]) -> OrSetLabels {
    let mut s = OrSetLabels::new();
    for op in ops {
        s.apply(op);
    }
    s
}

fn shuffled(ops: &[LabelOp], rng: &mut StdRng) -> Vec<LabelOp> {
    let mut v: Vec<LabelOp> = ops.to_vec();
    for i in (1..v.len()).rev() {
        let j = (rng.next_u64() as usize) % (i + 1);
        v.swap(i, j);
    }
    v
}

#[test]
fn converges_under_arbitrary_reorder_and_duplication() {
    for seed in 0..24u64 {
        let ops = gen_ops(seed, 48);
        let reference = apply_all(&ops);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        for round in 0..6 {
            // Reorder the whole history, then duplicate ~30% of ops
            // in place (a retransmitting network).
            let mut schedule = shuffled(&ops, &mut rng);
            let dups: Vec<LabelOp> = schedule
                .iter()
                .filter(|_| rng.next_u64() % 100 < 30)
                .cloned()
                .collect();
            schedule.extend(dups);
            let schedule = shuffled(&schedule, &mut rng);
            let replica = apply_all(&schedule);
            assert!(
                replica.agrees_with(&reference),
                "divergence: seed={seed} round={round} (replay with this seed)"
            );
            assert_eq!(
                replica.state_digest(),
                reference.state_digest(),
                "digest mismatch: seed={seed} round={round}"
            );
        }
    }
}

#[test]
fn apply_is_idempotent_over_whole_histories() {
    for seed in 100..112u64 {
        let ops = gen_ops(seed, 40);
        let once = apply_all(&ops);
        let twice: Vec<LabelOp> = ops.iter().flat_map(|op| [op.clone(), op.clone()]).collect();
        let doubled = apply_all(&twice);
        assert!(
            doubled.agrees_with(&once),
            "double-apply diverged: seed={seed}"
        );
    }
}

#[test]
fn apply_is_commutative_pairwise() {
    // The algebraic core of convergence: any adjacent transposition
    // leaves the final state unchanged, for every position.
    for seed in 200..206u64 {
        let ops = gen_ops(seed, 24);
        let reference = apply_all(&ops);
        for i in 0..ops.len() - 1 {
            let mut swapped = ops.clone();
            swapped.swap(i, i + 1);
            assert!(
                apply_all(&swapped).agrees_with(&reference),
                "transposition at {i} diverged: seed={seed}"
            );
        }
    }
}

#[test]
fn effects_fire_exactly_once_per_presence_flip() {
    // However the schedule is permuted or duplicated, the *net* flip
    // count the kernel would see for any record is bounded by the
    // schedule's structure: a record present in the final state was
    // minted exactly once more than it was revoked (n+1 mints, n
    // revokes net n+1 flips... net: minted_flips - revoked_flips = 1),
    // and an absent one balances. This is what keeps labelstores in
    // lock-step with the or-set.
    for seed in 300..312u64 {
        let ops = gen_ops(seed, 40);
        let mut rng = StdRng::seed_from_u64(seed);
        let schedule = shuffled(&ops, &mut rng);
        let mut replica = OrSetLabels::new();
        let mut net: std::collections::HashMap<LabelRecord, i64> = std::collections::HashMap::new();
        for op in &schedule {
            let eff = replica.apply(op);
            for r in eff.minted {
                *net.entry(r).or_default() += 1;
            }
            for r in eff.revoked {
                *net.entry(r).or_default() -= 1;
            }
        }
        for (rec, delta) in net {
            let expected = i64::from(replica.contains(&rec));
            assert_eq!(
                delta, expected,
                "flip imbalance for {rec:?}: seed={seed} (kernel would desync)"
            );
        }
    }
}
