//! Fault-injection tests: Byzantine members (equivocation, forgery,
//! replay storms), lossy networks, and partitions. The invariants: a
//! Byzantine peer never corrupts an honest node's label state or
//! mints a credential on it; honest replicas converge once the
//! network lets a quorum through. All schedules are seeded — every
//! assertion message prints the seed that replays it.

use nexus_core::ResourceId;
use nexus_dist::{Cluster, Partition, SimConfig};
use nexus_nal::{parse, Principal};

/// Clusters that must tolerate one Byzantine member need n >= 4
/// (f = (n-1)/3 >= 1); we use 5 to keep quorums honest-majority even
/// with one compromised key.
const BYZ_N: usize = 5;

#[test]
fn happy_path_replicates_across_cluster_sizes() {
    for n in [3usize, 5, 7] {
        let seed = 0xabc0 + n as u64;
        let mut cluster = Cluster::new(n, seed);
        let rec = cluster.mint(0, "alice", "CA", "ok");
        assert!(
            cluster.run_until_converged(4),
            "no convergence: n={n} seed={seed}"
        );
        for i in 0..n as u32 {
            assert!(
                cluster.has_label(i, &rec),
                "label missing at node {i}: n={n} seed={seed}"
            );
            let stats = cluster.node(i).stats();
            assert_eq!(stats.applied_mints, 1, "node {i}: n={n} seed={seed}");
            assert_eq!(stats.apply_errors, 0, "node {i}: n={n} seed={seed}");
            assert_eq!(
                cluster.nexus(i).dist_stats().remote_mints,
                1,
                "kernel counter desync at node {i}: n={n} seed={seed}"
            );
        }
    }
}

#[test]
fn forged_ops_never_mint_anywhere() {
    for seed in [1u64, 7, 42] {
        let mut cluster = Cluster::new(BYZ_N, seed);
        // Node 4 forges an op in node 1's name (it lacks node 1's key).
        let forged = cluster.inject_forged(4, 1, "mallory");
        cluster.run_to_quiescence(usize::MAX);
        for i in 0..BYZ_N as u32 {
            assert!(
                !cluster.has_label(i, &forged),
                "forged label visible at node {i}: seed={seed}"
            );
            assert_eq!(
                cluster.nexus(i).dist_stats().remote_mints,
                0,
                "forged op reached a kernel at node {i}: seed={seed}"
            );
            assert!(
                cluster.node(i).stats().brb.rejected_sigs > 0,
                "node {i} never saw (and rejected) the forgery: seed={seed}"
            );
        }
    }
}

#[test]
fn equivocation_never_splits_honest_state() {
    for seed in [3u64, 11, 99] {
        let mut cluster = Cluster::new(BYZ_N, seed);
        let (rec_a, rec_b) = cluster.inject_equivocation(4, 0, "alice", "bob");
        cluster.run_to_quiescence(usize::MAX);
        // Agreement: at most one of the conflicting ops may be
        // delivered, and whichever it is, every honest node agrees.
        for rec in [&rec_a, &rec_b] {
            let views: Vec<bool> = (0..BYZ_N as u32)
                .map(|i| cluster.has_label(i, rec))
                .collect();
            assert!(
                views.iter().all(|&v| v == views[0]),
                "honest nodes split on {rec:?}: views={views:?} seed={seed}"
            );
        }
        assert!(
            !((0..BYZ_N as u32).all(|i| cluster.has_label(i, &rec_a))
                && (0..BYZ_N as u32).all(|i| cluster.has_label(i, &rec_b))),
            "both equivocating ops delivered for one slot: seed={seed}"
        );
        let observed: u64 = (0..BYZ_N as u32)
            .map(|i| cluster.node(i).stats().brb.equivocations)
            .sum();
        assert!(observed > 0, "equivocation went unobserved: seed={seed}");
    }
}

#[test]
fn shared_dot_attack_converges_and_never_splits_authorization() {
    // REVIEW finding 1: a Byzantine member signs two mints of
    // different labels sharing one dot, plus a revoke of one of them,
    // all racing through the network. Replicas apply the three ops in
    // schedule-dependent orders; keyed tombstones must make every
    // order converge — the revoked label dead everywhere, the
    // dot-sharing label alive (and authorizing) everywhere.
    for seed in [9u64, 41, 137, 2718] {
        let mut cluster = Cluster::with_config(BYZ_N, SimConfig::lossy(seed, 0, 10, 6));
        let object = ResourceId::new("bench", "shared-dot");
        cluster.install_goal(&object, "op", "CA says ok");
        let (revoked, survivor) = cluster.inject_shared_dot_attack(4, "alice", "bob");
        assert!(
            cluster.run_until_converged(16),
            "shared-dot schedule diverged: seed={seed}"
        );
        for i in 0..BYZ_N as u32 {
            assert!(
                !cluster.has_label(i, &revoked),
                "revoked label alive at node {i}: seed={seed}"
            );
            assert!(
                cluster.has_label(i, &survivor),
                "dot-sharing label suppressed at node {i}: seed={seed}"
            );
            assert!(
                !cluster.authorize(i, "alice", "op", &object),
                "revoked credential authorized at node {i}: seed={seed}"
            );
            assert!(
                cluster.authorize(i, "bob", "op", &object),
                "surviving credential denied at node {i}: seed={seed}"
            );
        }
    }
}

#[test]
fn foreign_dot_mint_is_rejected_on_every_honest_node() {
    // A Byzantine member mints with a dot in a victim's actor
    // namespace. The broadcast layer delivers it (the envelope is
    // genuinely signed by the attacker), but the application layer
    // rejects the origin-unbound dot everywhere — and the victim's
    // own future mint with that same counter is unaffected.
    for seed in [12u64, 55] {
        let mut cluster = Cluster::new(BYZ_N, seed);
        // Node 4 pre-collides with victim node 1's first dot (1, 1).
        let foreign = cluster.inject_foreign_dot_mint(4, 1, 1, "mallory");
        cluster.run_to_quiescence(usize::MAX);
        for i in 0..BYZ_N as u32 {
            let stats = cluster.node(i).stats();
            assert!(
                !cluster.has_label(i, &foreign),
                "foreign-dot label visible at node {i}: seed={seed}"
            );
            assert_eq!(
                stats.rejected_ops, 1,
                "origin-unbound mint not rejected at node {i}: seed={seed}"
            );
            assert_eq!(
                cluster.nexus(i).dist_stats().remote_mints,
                0,
                "foreign-dot op reached a kernel at node {i}: seed={seed}"
            );
        }
        // The victim's honest mint under its own (1, 1) dot works and
        // a revoke of it cannot be confused with the rejected op.
        let honest = cluster.mint(1, "alice", "CA", "ok");
        assert!(cluster.run_until_converged(4), "honest mint: seed={seed}");
        for i in 0..BYZ_N as u32 {
            assert!(
                cluster.has_label(i, &honest),
                "victim's honest mint missing at node {i}: seed={seed}"
            );
        }
    }
}

#[test]
fn crashed_origin_cannot_block_totality_after_partition_heals() {
    // REVIEW finding 2: the origin broadcasts while node 4 is
    // partitioned, every other node delivers, then the origin
    // crashes. The healed node must still deliver — survivors'
    // anti-entropy re-announces their own Echo/Ready votes, so
    // totality does not depend on the origin retransmitting.
    for seed in [8u64, 21] {
        let mut cfg = SimConfig::perfect(seed);
        // Node 4 is cut off until tick 300; from tick 300 the origin
        // (node 0) is cut off forever — a network-level crash, so its
        // re-announcements can never reach the healed node.
        cfg.partitions = vec![
            Partition::new(&[4], 0, 300),
            Partition::new(&[0], 300, u64::MAX),
        ];
        let mut cluster = Cluster::with_config(BYZ_N, cfg);
        let rec = cluster.mint(0, "alice", "CA", "ok");
        cluster.run_to_quiescence(usize::MAX);
        for i in 0..4u32 {
            assert!(
                cluster.has_label(i, &rec),
                "majority node {i} must deliver: seed={seed}"
            );
        }
        assert!(
            !cluster.has_label(4, &rec),
            "partitioned node delivered without quorum: seed={seed}"
        );
        // Origin 0 crashes for good; only the survivors retransmit.
        let mut rounds = 0;
        while !cluster.has_label(4, &rec) {
            assert!(
                rounds < 64,
                "healed node never delivered without the origin: seed={seed}"
            );
            cluster.anti_entropy_without(0);
            cluster.run_to_quiescence(usize::MAX);
            rounds += 1;
        }
        assert_eq!(
            cluster.node(4).stats().applied_mints,
            1,
            "healed node's kernel must see the mint: seed={seed}"
        );
    }
}

#[test]
fn remote_revocation_deletes_the_replicated_handle_not_a_local_twin() {
    // REVIEW finding 4: a subject holds a locally-granted label and
    // an identically-worded replicated one. The replicated layer
    // tracks the handle it minted, so a delivered revocation removes
    // exactly that handle — the node-local credential survives and
    // keeps authorizing on that node only.
    let seed = 77u64;
    let mut cluster = Cluster::new(3, seed);
    let object = ResourceId::new("bench", "local-twin");
    cluster.install_goal(&object, "op", "CA says ok");
    // Node 1 grants alice the label locally FIRST, so the local twin
    // gets the lower handle — the case content-based resolution got
    // wrong (lowest handle wins).
    let pid = cluster.node_mut(1).subject_pid("alice");
    cluster
        .nexus(1)
        .kernel_label(pid, Principal::name("CA"), parse("ok").unwrap())
        .expect("local grant");
    let rec = cluster.mint(0, "alice", "CA", "ok");
    assert!(cluster.run_until_converged(4), "mint: seed={seed}");
    assert!(
        cluster.revoke(0, &rec),
        "origin must see the record: seed={seed}"
    );
    assert!(cluster.run_until_converged(4), "revoke: seed={seed}");
    for i in 0..3u32 {
        assert!(
            !cluster.has_label(i, &rec),
            "replicated label alive at node {i}: seed={seed}"
        );
        assert_eq!(
            cluster.node(i).stats().apply_errors,
            0,
            "apply error at node {i}: seed={seed}"
        );
    }
    // The locally-granted credential survives on node 1 alone.
    assert!(
        cluster.authorize(1, "alice", "op", &object),
        "local credential must survive the remote revocation: seed={seed}"
    );
    for i in [0u32, 2] {
        assert!(
            !cluster.authorize(i, "alice", "op", &object),
            "node {i} has no local grant and must deny: seed={seed}"
        );
    }
}

#[test]
fn replay_storm_does_not_move_state_or_recount_kernel_effects() {
    for seed in [5u64, 23] {
        let mut cluster = Cluster::new(BYZ_N, seed);
        let rec = cluster.mint(0, "alice", "CA", "ok");
        assert!(cluster.run_until_converged(4), "setup: seed={seed}");
        let digests: Vec<u64> = (0..BYZ_N as u32)
            .map(|i| cluster.node(i).state_digest())
            .collect();
        let mints: Vec<u64> = (0..BYZ_N as u32)
            .map(|i| cluster.nexus(i).dist_stats().remote_mints)
            .collect();
        // Node 4 replays everything it knows, five times over.
        cluster.inject_replay(4, 5);
        cluster.run_to_quiescence(usize::MAX);
        for i in 0..BYZ_N as u32 {
            assert!(cluster.has_label(i, &rec), "node {i}: seed={seed}");
            assert_eq!(
                cluster.node(i).state_digest(),
                digests[i as usize],
                "replay moved node {i}'s state: seed={seed}"
            );
            assert_eq!(
                cluster.nexus(i).dist_stats().remote_mints,
                mints[i as usize],
                "replay re-minted on node {i}'s kernel: seed={seed}"
            );
        }
    }
}

#[test]
fn lossy_duplicating_delaying_network_still_converges() {
    for seed in [2u64, 13, 77, 1234] {
        let mut cluster = Cluster::with_config(BYZ_N, SimConfig::lossy(seed, 10, 15, 4));
        let rec = cluster.mint(0, "alice", "CA", "ok");
        let rec2 = cluster.mint(2, "bob", "CA", "ok");
        assert!(
            cluster.run_until_converged(32),
            "no convergence on lossy net: seed={seed}"
        );
        for i in 0..BYZ_N as u32 {
            assert!(cluster.has_label(i, &rec), "node {i}: seed={seed}");
            assert!(cluster.has_label(i, &rec2), "node {i}: seed={seed}");
            assert_eq!(
                cluster.node(i).stats().apply_errors,
                0,
                "apply error at node {i}: seed={seed}"
            );
        }
        assert!(
            cluster.net_counters().dropped > 0,
            "schedule never exercised loss: seed={seed}"
        );
    }
}

#[test]
fn minority_partition_stalls_then_heals_to_convergence() {
    for seed in [4u64, 19] {
        // Node 4 is cut off from tick 0 until tick 300. With n=5 the
        // echo quorum is n - f = 4, so the connected side {0,1,2,3}
        // is exactly quorate and delivers; node 4 cannot. (Ticks
        // advance one per delivery, so the anti-entropy rounds below
        // also pump the clock toward the healing point.)
        let mut cfg = SimConfig::perfect(seed);
        cfg.partitions = vec![Partition::new(&[4], 0, 300)];
        let mut cluster = Cluster::with_config(BYZ_N, cfg);
        let rec = cluster.mint(0, "alice", "CA", "ok");
        cluster.run_to_quiescence(usize::MAX);
        for i in 0..4u32 {
            assert!(
                cluster.has_label(i, &rec),
                "majority node {i} must deliver: seed={seed}"
            );
        }
        assert!(
            !cluster.has_label(4, &rec),
            "partitioned node delivered without quorum: seed={seed}"
        );
        assert!(
            cluster.run_until_converged(64),
            "no convergence after heal: seed={seed}"
        );
        for i in 0..BYZ_N as u32 {
            assert!(
                cluster.has_label(i, &rec),
                "node {i} missing label after heal: seed={seed}"
            );
        }
    }
}

#[test]
fn transfer_is_atomic_on_every_replica() {
    for seed in [6u64, 31] {
        let mut cluster = Cluster::new(BYZ_N, seed);
        let rec = cluster.mint(0, "alice", "CA", "ok");
        assert!(cluster.run_until_converged(4), "setup: seed={seed}");
        let moved = cluster.transfer(1, &rec, "bob").expect("visible at node 1");
        assert!(cluster.run_until_converged(4), "transfer: seed={seed}");
        for i in 0..BYZ_N as u32 {
            assert!(
                !cluster.has_label(i, &rec),
                "source label survived transfer at node {i}: seed={seed}"
            );
            assert!(
                cluster.has_label(i, &moved),
                "destination label missing at node {i}: seed={seed}"
            );
            let ds = cluster.nexus(i).dist_stats();
            assert_eq!(
                (ds.remote_mints, ds.remote_revocations),
                (2, 1),
                "kernel effect counts off at node {i}: seed={seed}"
            );
        }
    }
}
