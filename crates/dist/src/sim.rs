//! Deterministic in-process network simulator.
//!
//! Everything the transport does — delivery order, message drops,
//! duplication, delays, partitions — is a pure function of the seed
//! and the schedule configuration, so any interleaving a test explores
//! is replayable by printing one `u64`. The simulator holds a bag of
//! in-flight messages; each [`SimNet::step`] picks a *random eligible*
//! flight (this is where reordering comes from) and hands it to the
//! destination. Time is a logical tick, advanced only when no flight
//! is eligible yet, so delay and partition windows compose with the
//! random scheduler instead of fighting it.
//!
//! Fault policy:
//! - **drop/duplicate** are Bernoulli per send (`drop_pct`, `dup_pct`);
//! - **delay** is uniform in `0..=max_delay` ticks per flight;
//! - **partitions** are tick ranges during which messages crossing the
//!   configured node-set boundary are discarded;
//! - messages a node addresses to itself are exempt from drop and
//!   partition (a kernel never loses a message to itself), keeping
//!   BRB's self-echo path honest without special cases elsewhere.

use crate::wire::{Message, NodeId};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::BTreeSet;

/// One scheduled network split: nodes in `side` cannot exchange
/// messages with nodes outside it while `from_tick <= tick < until_tick`.
#[derive(Debug, Clone)]
pub struct Partition {
    /// One side of the split.
    pub side: BTreeSet<NodeId>,
    /// First tick the split is in effect.
    pub from_tick: u64,
    /// First tick after healing.
    pub until_tick: u64,
}

impl Partition {
    /// A partition isolating `side` during `[from_tick, until_tick)`.
    pub fn new(side: &[NodeId], from_tick: u64, until_tick: u64) -> Partition {
        Partition {
            side: side.iter().copied().collect(),
            from_tick,
            until_tick,
        }
    }

    fn severs(&self, tick: u64, from: NodeId, to: NodeId) -> bool {
        tick >= self.from_tick
            && tick < self.until_tick
            && self.side.contains(&from) != self.side.contains(&to)
    }
}

/// The fault schedule. Default: perfect network (deliver everything,
/// random order, no delay).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed — print this on any failure; it replays the run.
    pub seed: u64,
    /// Percent (0..=100) of sends silently dropped.
    pub drop_pct: u8,
    /// Percent (0..=100) of sends duplicated.
    pub dup_pct: u8,
    /// Max extra delivery delay, in ticks (each flight gets a uniform
    /// draw from `0..=max_delay`).
    pub max_delay: u64,
    /// Scheduled splits.
    pub partitions: Vec<Partition>,
}

impl SimConfig {
    /// A perfect network driven by `seed` (random order only).
    pub fn perfect(seed: u64) -> SimConfig {
        SimConfig {
            seed,
            drop_pct: 0,
            dup_pct: 0,
            max_delay: 0,
            partitions: Vec::new(),
        }
    }

    /// A lossy, delaying, duplicating network driven by `seed`.
    pub fn lossy(seed: u64, drop_pct: u8, dup_pct: u8, max_delay: u64) -> SimConfig {
        SimConfig {
            seed,
            drop_pct,
            dup_pct,
            max_delay,
            partitions: Vec::new(),
        }
    }
}

#[derive(Debug)]
struct Flight {
    to: NodeId,
    msg: Message,
    ready_at: u64,
}

/// Transport-level counters (per cluster, surfaced by telemetry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Messages handed to destinations.
    pub delivered: u64,
    /// Messages dropped by the loss schedule.
    pub dropped: u64,
    /// Extra copies injected by the duplication schedule.
    pub duplicated: u64,
    /// Messages discarded at a partition boundary.
    pub partitioned: u64,
}

/// The simulated network: a seeded bag of in-flight messages.
pub struct SimNet {
    cfg: SimConfig,
    rng: StdRng,
    in_flight: Vec<Flight>,
    tick: u64,
    counters: NetCounters,
}

impl SimNet {
    /// Build from a schedule.
    pub fn new(cfg: SimConfig) -> SimNet {
        let rng = StdRng::seed_from_u64(cfg.seed);
        SimNet {
            cfg,
            rng,
            in_flight: Vec::new(),
            tick: 0,
            counters: NetCounters::default(),
        }
    }

    /// The current logical tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Counter snapshot.
    pub fn counters(&self) -> NetCounters {
        self.counters
    }

    /// Messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    fn pct(&mut self) -> u8 {
        (self.rng.next_u32() % 100) as u8
    }

    /// Submit one message. Loss, duplication, and delay are decided
    /// here (per send); partitions are enforced at delivery time so a
    /// flight delayed into a split window is severed too.
    pub fn send(&mut self, from: NodeId, to: NodeId, msg: Message) {
        let is_self = from == to;
        if !is_self && self.cfg.drop_pct > 0 && self.pct() < self.cfg.drop_pct {
            self.counters.dropped += 1;
            return;
        }
        let copies = if !is_self && self.cfg.dup_pct > 0 && self.pct() < self.cfg.dup_pct {
            self.counters.duplicated += 1;
            2
        } else {
            1
        };
        for _ in 0..copies {
            let delay = if self.cfg.max_delay > 0 {
                self.rng.next_u64() % (self.cfg.max_delay + 1)
            } else {
                0
            };
            self.in_flight.push(Flight {
                to,
                msg: msg.clone(),
                ready_at: self.tick + delay,
            });
        }
    }

    /// Deliver one random eligible flight, or advance the tick if
    /// every flight is still delayed. Returns the `(destination,
    /// message)` to process, or `None` when nothing is in flight.
    pub fn step(&mut self) -> Option<(NodeId, Message)> {
        loop {
            if self.in_flight.is_empty() {
                return None;
            }
            // Discard flights crossing an active partition boundary.
            let tick = self.tick;
            let cfg = &self.cfg;
            let mut cut = 0u64;
            self.in_flight.retain(|f| {
                let sever = f.ready_at <= tick
                    && f.msg.from != f.to
                    && cfg
                        .partitions
                        .iter()
                        .any(|p| p.severs(tick, f.msg.from, f.to));
                if sever {
                    cut += 1;
                }
                !sever
            });
            self.counters.partitioned += cut;

            let eligible: Vec<usize> = self
                .in_flight
                .iter()
                .enumerate()
                .filter(|(_, f)| f.ready_at <= self.tick)
                .map(|(i, _)| i)
                .collect();
            if eligible.is_empty() {
                self.tick += 1;
                continue;
            }
            let pick = eligible[(self.rng.next_u64() as usize) % eligible.len()];
            let flight = self.in_flight.swap_remove(pick);
            self.tick += 1;
            self.counters.delivered += 1;
            return Some((flight.to, flight.msg));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orset::{Dot, LabelOp, LabelRecord};
    use crate::wire::{Message, OpEnvelope, Payload, SimEd25519};

    fn msg(from: NodeId, seq: u64) -> Message {
        let signer = SimEd25519::from_seed(7, from);
        let env = OpEnvelope::sign(
            from,
            seq,
            LabelOp::Mint {
                dot: Dot::new(from, seq),
                label: LabelRecord::new("a", "CA", "ok"),
            },
            &signer,
        );
        Message::sign(from, Payload::Send(env), &signer)
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed| {
            let mut net = SimNet::new(SimConfig::lossy(seed, 10, 10, 3));
            for s in 0..20 {
                net.send(0, 1 + (s % 3) as NodeId, msg(0, s));
            }
            let mut order = Vec::new();
            while let Some((to, m)) = net.step() {
                order.push((to, m.payload.envelope().seq));
            }
            (order, net.counters())
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99).0, run(100).0, "different seeds must reorder");
    }

    #[test]
    fn drops_and_dups_are_counted_and_bounded() {
        let mut net = SimNet::new(SimConfig::lossy(5, 30, 30, 0));
        for s in 0..200 {
            net.send(0, 1, msg(0, s));
        }
        let mut got = 0;
        while net.step().is_some() {
            got += 1;
        }
        let c = net.counters();
        assert_eq!(c.delivered, got as u64);
        assert_eq!(got as u64, 200 - c.dropped + c.duplicated);
        assert!(
            c.dropped > 0 && c.duplicated > 0,
            "30% rates must fire in 200 sends"
        );
    }

    #[test]
    fn self_sends_survive_drop_and_partition() {
        let mut cfg = SimConfig::lossy(11, 100, 0, 0);
        cfg.partitions = vec![Partition::new(&[0], 0, u64::MAX)];
        let mut net = SimNet::new(cfg);
        net.send(0, 0, msg(0, 1));
        net.send(0, 1, msg(0, 2));
        let mut seen = Vec::new();
        while let Some((to, _)) = net.step() {
            seen.push(to);
        }
        assert_eq!(seen, vec![0], "only the self-send survives");
    }

    #[test]
    fn partition_severs_then_heals() {
        let mut cfg = SimConfig::perfect(3);
        cfg.partitions = vec![Partition::new(&[2], 0, 10)];
        let mut net = SimNet::new(cfg);
        net.send(0, 2, msg(0, 1));
        assert!(net.step().is_none(), "flight severed at the boundary");
        assert_eq!(net.counters().partitioned, 1);
        // After the window, the path works again.
        while net.tick() < 10 {
            assert!(net.step().is_none());
            if net.in_flight() == 0 {
                break;
            }
        }
        let mut net2 = SimNet::new(SimConfig {
            partitions: vec![Partition::new(&[2], 0, 0)],
            ..SimConfig::perfect(3)
        });
        net2.send(0, 2, msg(0, 1));
        assert!(net2.step().is_some());
    }

    #[test]
    fn delayed_flights_wait_their_tick() {
        let mut net = SimNet::new(SimConfig::lossy(8, 0, 0, 5));
        net.send(0, 1, msg(0, 1));
        let before = net.tick();
        let (to, _) = net.step().expect("must deliver");
        assert_eq!(to, 1);
        assert!(net.tick() > before || net.tick() == before + 1);
    }
}
